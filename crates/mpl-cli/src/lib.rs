//! # mpl-cli — the `mpl` command-line tool
//!
//! ```text
//! mpl analyze <file> [--client simple|cartesian] [--min-np N] [--trace]
//! mpl run     <file> --np N [--seed S] [--rendezvous] [--set var=val]...
//! mpl check   <file>                  # diagnostics; exit 1 on findings
//! mpl dot     <file>                  # Graphviz CFG
//! mpl flow    <file> --source v[,v]   # information-flow leak report
//! mpl mpicfg  <file>                  # MPI-CFG baseline comparison
//! mpl rewrite <file>                  # broadcast -> binomial tree
//! ```
//!
//! All command logic lives here (returning the rendered output and an
//! exit code) so it is unit-testable; `main.rs` only forwards.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt::Write as _;

use mpl_cfg::Cfg;
use mpl_core::diagnostics::diagnose;
use mpl_core::{
    analyze_cfg, classify, info_flow, mpi_cfg_topology, AnalysisConfig, Client, StaticTopology,
    Verdict,
};
use mpl_lang::parse_program;
use mpl_sim::{Schedule, SendMode, SimConfig, Simulator};

/// A rendered command outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text to print on stdout.
    pub text: String,
    /// Process exit code.
    pub code: i32,
}

fn ok(text: String) -> CmdOutput {
    CmdOutput { text, code: 0 }
}

/// Runs a full command line (without the leading program name) against
/// `source` (the contents of the program file named in `args[1]` — the
/// caller resolves the path so this stays testable).
///
/// # Errors
///
/// Returns a description of invalid usage or a parse failure.
pub fn run_command(args: &[String], source: &str) -> Result<CmdOutput, Box<dyn Error>> {
    let Some(cmd) = args.first() else {
        return Err(usage().into());
    };
    let program = parse_program(source)?;
    let cfg = Cfg::build(&program);
    let rest = &args[2.min(args.len())..];
    match cmd.as_str() {
        "analyze" => cmd_analyze(&cfg, rest),
        "run" => cmd_run(&cfg, rest),
        "check" => cmd_check(&cfg),
        "dot" => Ok(ok(mpl_cfg::dot::to_dot(&cfg, "mpl"))),
        "flow" => cmd_flow(&cfg, rest),
        "mpicfg" => cmd_mpicfg(&cfg),
        "rewrite" => cmd_rewrite(&program, &cfg),
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

/// The usage string.
#[must_use]
pub fn usage() -> &'static str {
    "usage:\n  \
     mpl analyze <file> [--client simple|cartesian] [--min-np N] [--trace] [--stats]\n  \
     mpl run     <file> --np N [--seed S] [--rendezvous] [--set var=val]...\n  \
     mpl check   <file>\n  \
     mpl dot     <file>\n  \
     mpl flow    <file> --source var[,var...]\n  \
     mpl mpicfg  <file>\n  \
     mpl rewrite <file>"
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_analyze(cfg: &Cfg, args: &[String]) -> Result<CmdOutput, Box<dyn Error>> {
    let client = match flag_value(args, "--client") {
        Some("simple") => Client::Simple,
        Some("cartesian") | None => Client::Cartesian,
        Some(other) => return Err(format!("unknown client `{other}`").into()),
    };
    let min_np = match flag_value(args, "--min-np") {
        Some(v) => v.parse()?,
        None => AnalysisConfig::default().min_np,
    };
    let trace = args.iter().any(|a| a == "--trace");
    let stats = args.iter().any(|a| a == "--stats");
    let config = AnalysisConfig {
        client,
        min_np,
        trace,
        ..AnalysisConfig::default()
    };
    let result = analyze_cfg(cfg, &config);

    let mut out = String::new();
    if trace {
        for line in &result.trace {
            let _ = writeln!(out, "{line}");
        }
    }
    let _ = writeln!(out, "verdict: {:?}", result.verdict);
    let topo = StaticTopology::from_result(&result);
    let _ = write!(out, "{topo}");
    let pattern = classify(&result);
    let _ = writeln!(out, "pattern: {pattern}");
    if let Some(hint) = pattern.collective_hint() {
        let _ = writeln!(out, "hint: {hint}");
    }
    for p in &result.prints {
        if let Some(v) = p.value {
            let _ = writeln!(
                out,
                "print at {} for ranks {}: constant {v}",
                p.node, p.range
            );
        }
    }
    for d in diagnose(cfg, &result) {
        let _ = writeln!(out, "diagnostic: {d}");
    }
    if stats {
        let cs = &result.closure_stats;
        let _ = writeln!(
            out,
            "closure stats: {} full (avg {:.1} vars), {} incremental (avg {:.1} vars), {:?} in closure",
            cs.full_closures,
            cs.avg_full_vars(),
            cs.incremental_closures,
            cs.avg_incremental_vars(),
            cs.closure_time(),
        );
    }
    let code = i32::from(!result.is_exact());
    Ok(CmdOutput { text: out, code })
}

fn cmd_run(cfg: &Cfg, args: &[String]) -> Result<CmdOutput, Box<dyn Error>> {
    let np: u64 = flag_value(args, "--np").ok_or("missing --np")?.parse()?;
    let mut config = SimConfig::default();
    if let Some(seed) = flag_value(args, "--seed") {
        config.schedule = Schedule::Random {
            seed: seed.parse()?,
        };
    }
    if args.iter().any(|a| a == "--rendezvous") {
        config.send_mode = SendMode::Rendezvous;
    }
    let mut initial: BTreeMap<String, i64> = BTreeMap::new();
    for (i, a) in args.iter().enumerate() {
        if a == "--set" {
            let kv = args.get(i + 1).ok_or("missing value after --set")?;
            let (k, v) = kv.split_once('=').ok_or("expected --set var=val")?;
            initial.insert(k.to_owned(), v.parse()?);
        }
    }
    config.initial_vars = initial;

    let outcome = Simulator::from_cfg(cfg.clone(), np)
        .with_config(config)
        .run()?;
    let mut out = String::new();
    let _ = writeln!(out, "status: {:?}", outcome.status);
    for (rank, prints) in outcome.prints.iter().enumerate() {
        if !prints.is_empty() {
            let _ = writeln!(out, "rank {rank} printed: {prints:?}");
        }
    }
    let _ = writeln!(out, "messages delivered: {}", outcome.topology.len());
    for leak in &outcome.leaks {
        let _ = writeln!(
            out,
            "leak: message from rank {} to rank {} (send {})",
            leak.sender, leak.receiver, leak.send_node
        );
    }
    let code = i32::from(!outcome.is_complete() || !outcome.leaks.is_empty());
    Ok(CmdOutput { text: out, code })
}

fn cmd_check(cfg: &Cfg) -> Result<CmdOutput, Box<dyn Error>> {
    let result = analyze_cfg(cfg, &AnalysisConfig::default());
    let diags = diagnose(cfg, &result);
    let mut out = String::new();
    if diags.is_empty() {
        let _ = writeln!(
            out,
            "ok: communication matched exactly, no leaks, no deadlock"
        );
        return Ok(ok(out));
    }
    for d in &diags {
        let _ = writeln!(out, "{d}");
    }
    Ok(CmdOutput { text: out, code: 1 })
}

fn cmd_flow(cfg: &Cfg, args: &[String]) -> Result<CmdOutput, Box<dyn Error>> {
    let sources: Vec<&str> = flag_value(args, "--source")
        .ok_or("missing --source")?
        .split(',')
        .collect();
    let result = analyze_cfg(cfg, &AnalysisConfig::default());
    let mut out = String::new();
    if !result.is_exact() {
        let _ = writeln!(
            out,
            "warning: verdict {:?}; falling back to the MPI-CFG over-approximation",
            result.verdict
        );
        let baseline = mpi_cfg_topology(cfg);
        let flow = mpl_core::info_flow_with_pairs(cfg, baseline.pairs());
        render_flow(&mut out, &flow, &sources);
        return Ok(CmdOutput { text: out, code: 2 });
    }
    let flow = info_flow(cfg, &result);
    render_flow(&mut out, &flow, &sources);
    Ok(ok(out))
}

fn render_flow(out: &mut String, flow: &mpl_core::InfoFlow, sources: &[&str]) {
    let tainted = flow.tainted_from(sources);
    let _ = writeln!(
        out,
        "tainted variables: {}",
        tainted.into_iter().collect::<Vec<_>>().join(", ")
    );
    let leaks = flow.leaking_prints(sources);
    if leaks.is_empty() {
        let _ = writeln!(out, "no print statement can output the sources");
    } else {
        for node in leaks {
            let _ = writeln!(out, "possible leak at print {node}");
        }
    }
}

fn cmd_rewrite(program: &mpl_lang::ast::Program, cfg: &Cfg) -> Result<CmdOutput, Box<dyn Error>> {
    let result = analyze_cfg(cfg, &AnalysisConfig::default());
    match mpl_core::rewrite_broadcast(program, cfg, &result) {
        Ok(tree) => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "// fan-out broadcast detected; rewritten to a binomial tree:"
            );
            let _ = write!(out, "{tree}");
            Ok(ok(out))
        }
        Err(e) => Ok(CmdOutput {
            text: format!("no rewrite: {e}\n"),
            code: 1,
        }),
    }
}

fn cmd_mpicfg(cfg: &Cfg) -> Result<CmdOutput, Box<dyn Error>> {
    let baseline = mpi_cfg_topology(cfg);
    let result = analyze_cfg(cfg, &AnalysisConfig::default());
    let mut out = String::new();
    let _ = write!(out, "{baseline}");
    match &result.verdict {
        Verdict::Exact => {
            let _ = writeln!(
                out,
                "pCFG analysis: exact with {} statement pairs ({} fewer than MPI-CFG)",
                result.matches.len(),
                baseline.pairs().len().saturating_sub(result.matches.len())
            );
        }
        other => {
            let _ = writeln!(out, "pCFG analysis verdict: {other:?}");
        }
    }
    Ok(ok(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::corpus;

    fn run(args: &[&str], source: &str) -> CmdOutput {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run_command(&args, source).expect("command runs")
    }

    #[test]
    fn analyze_reports_verdict_pattern_and_constants() {
        let prog = corpus::fig2_exchange();
        let out = run(&["analyze", "f.mpl", "--client", "simple"], &prog.source);
        assert_eq!(out.code, 0);
        assert!(out.text.contains("verdict: Exact"));
        assert!(out.text.contains("pattern: pair-exchange"));
        assert!(out.text.contains("constant 5"));
    }

    #[test]
    fn analyze_stats_flag_reports_closure_counts() {
        let prog = corpus::fig2_exchange();
        let out = run(
            &["analyze", "f.mpl", "--client", "simple", "--stats"],
            &prog.source,
        );
        assert_eq!(out.code, 0);
        assert!(out.text.contains("closure stats:"));
        assert!(out.text.contains("full"));
        assert!(out.text.contains("incremental"));
    }

    #[test]
    fn analyze_nonexact_exits_nonzero() {
        let prog = corpus::ring_uniform();
        let out = run(&["analyze", "f.mpl"], &prog.source);
        assert_eq!(out.code, 1);
        assert!(out.text.contains("Top"));
    }

    #[test]
    fn run_simulates_and_reports_prints() {
        let prog = corpus::fig2_exchange();
        let out = run(&["run", "f.mpl", "--np", "4"], &prog.source);
        assert_eq!(out.code, 0);
        assert!(out.text.contains("rank 0 printed: [5]"));
        assert!(out.text.contains("rank 1 printed: [5]"));
    }

    #[test]
    fn run_with_seed_and_set() {
        let prog = corpus::stencil_2d_vertical(corpus::GridDims::Symbolic);
        let out = run(
            &[
                "run", "f.mpl", "--np", "9", "--seed", "7", "--set", "nrows=3", "--set", "ncols=3",
            ],
            &prog.source,
        );
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(out.text.contains("messages delivered: 6"));
    }

    #[test]
    fn run_flags_leaks_with_nonzero_exit() {
        let prog = corpus::message_leak();
        let out = run(&["run", "f.mpl", "--np", "3"], &prog.source);
        assert_eq!(out.code, 1);
        assert!(out.text.contains("leak: message from rank 0 to rank 1"));
    }

    #[test]
    fn check_clean_and_dirty() {
        let clean = run(&["check", "f.mpl"], &corpus::exchange_with_root().source);
        assert_eq!(clean.code, 0);
        assert!(clean.text.contains("ok:"));
        let dirty = run(&["check", "f.mpl"], &corpus::deadlock_pair().source);
        assert_eq!(dirty.code, 1);
        assert!(dirty.text.contains("deadlock"));
    }

    #[test]
    fn dot_emits_graphviz() {
        let out = run(&["dot", "f.mpl"], "x := 1;");
        assert!(out.text.starts_with("digraph mpl"));
    }

    #[test]
    fn flow_reports_leaking_prints() {
        let out = run(
            &["flow", "f.mpl", "--source", "x"],
            &corpus::fig2_exchange().source,
        );
        assert_eq!(out.code, 0);
        assert!(out.text.contains("possible leak at print"));
    }

    #[test]
    fn mpicfg_compares_against_pcfg() {
        let out = run(&["mpicfg", "f.mpl"], &corpus::mdcask_full().source);
        assert!(out.text.contains("MPI-CFG topology"));
        assert!(out.text.contains("pCFG analysis: exact"));
    }

    #[test]
    fn unknown_command_and_bad_flags_error() {
        let args = vec!["frobnicate".to_owned()];
        assert!(run_command(&args, "x := 1;").is_err());
        let args: Vec<String> = ["run", "f.mpl"].iter().map(|s| (*s).to_owned()).collect();
        assert!(run_command(&args, "x := 1;").is_err()); // missing --np
        let args: Vec<String> = ["analyze", "f.mpl", "--client", "quantum"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert!(run_command(&args, "x := 1;").is_err());
    }

    #[test]
    fn rewrite_emits_tree_broadcast() {
        let out = run(&["rewrite", "f.mpl"], &corpus::fanout_broadcast().source);
        assert_eq!(out.code, 0);
        assert!(out.text.contains("binomial tree"));
        assert!(out.text.contains("while (mpl_k < np)"));
        // The emitted program is valid MPL.
        let body = out.text.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(mpl_lang::parse_program(&body).is_ok());
        // Non-broadcasts are refused.
        let no = run(
            &["rewrite", "f.mpl"],
            &corpus::nearest_neighbor_shift().source,
        );
        assert_eq!(no.code, 1);
    }

    #[test]
    fn parse_errors_surface() {
        let args: Vec<String> = ["check", "f.mpl"].iter().map(|s| (*s).to_owned()).collect();
        let err = run_command(&args, "x := ;").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }
}
