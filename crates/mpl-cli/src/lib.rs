//! # mpl-cli — the `mpl` command-line tool
//!
//! ```text
//! mpl analyze <file> [--client simple|cartesian] [--min-np N] [--par N] [--trace]
//! mpl analyze-corpus  [--dir D] [--jobs N] [--client C] [--min-np N] [--par N]
//!                     [--timeout-ms T] [--retries R] [--keep-going] [--json] [--timing]
//! mpl run     <file> --np N [--seed S] [--rendezvous] [--set var=val]...
//! mpl check   <file>                  # diagnostics; exit 1 on findings
//! mpl dot     <file>                  # Graphviz CFG
//! mpl flow    <file> --source v[,v]   # information-flow leak report
//! mpl mpicfg  <file>                  # MPI-CFG baseline comparison
//! mpl rewrite <file>                  # broadcast -> binomial tree
//! ```
//!
//! All command logic lives here (returning the rendered output and an
//! exit code) so it is unit-testable; `main.rs` only forwards.
//!
//! Flag parsing is strict: every command declares the flags it accepts,
//! and an unknown flag or malformed value is an error (exit code 2 from
//! the binary) rather than being silently ignored.

pub mod serve;

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt::Write as _;
use std::str::FromStr;
use std::time::Duration;

use mpl_cfg::Cfg;
use mpl_core::diagnostics::diagnose;
use mpl_core::{
    analyze_cfg, analyze_cfg_with, classify, info_flow, mpi_cfg_topology, summary_json_line,
    AnalysisConfig, AnalysisRequest, BatchResponse, Client, ObserverStack, RequestBatch,
    ScheduleOrder, StaticTopology, StatsObserver, TraceObserver, Verdict,
};
use mpl_lang::{corpus, parse_program};
use mpl_sim::{Schedule, SendMode, SimConfig, Simulator};

/// A rendered command outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdOutput {
    /// Text to print on stdout.
    pub text: String,
    /// Process exit code.
    pub code: i32,
}

fn ok(text: String) -> CmdOutput {
    CmdOutput { text, code: 0 }
}

/// Parsed command-line flags, validated against a per-command spec.
///
/// Value flags may repeat (`--set a=1 --set b=2`); [`Flags::value`]
/// returns the last occurrence, [`Flags::values`] all of them.
#[derive(Debug, Default)]
pub(crate) struct Flags {
    values: BTreeMap<String, Vec<String>>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `args` strictly: every argument must be a flag named in
    /// `value_flags` (consumes the following argument) or `switch_flags`.
    pub(crate) fn parse(
        args: &[String],
        value_flags: &[&str],
        switch_flags: &[&str],
    ) -> Result<Flags, String> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if value_flags.contains(&arg) {
                let Some(value) = args.get(i + 1) else {
                    return Err(format!("missing value for `{arg}`"));
                };
                flags
                    .values
                    .entry(arg.to_owned())
                    .or_default()
                    .push(value.clone());
                i += 2;
            } else if switch_flags.contains(&arg) {
                flags.switches.push(arg.to_owned());
                i += 1;
            } else {
                return Err(format!("unknown argument `{arg}`"));
            }
        }
        Ok(flags)
    }

    /// The last value given for `name`, if any.
    pub(crate) fn value(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// Every value given for `name`, in order.
    fn values(&self, name: &str) -> &[String] {
        self.values.get(name).map_or(&[], Vec::as_slice)
    }

    /// True if the switch `name` was given.
    pub(crate) fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Parses the value of `name` as `T`, or returns `default` when the
    /// flag is absent. Malformed values report the flag they came from.
    pub(crate) fn parse_value<T: FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for `{name}`")),
        }
    }
}

/// Runs a full command line (without the leading program name) against
/// `source` (the contents of the program file named in `args[1]` — the
/// caller resolves the path so this stays testable). `analyze-corpus`
/// takes no file; its `source` is ignored.
///
/// # Errors
///
/// Returns a description of invalid usage or a parse failure.
pub fn run_command(args: &[String], source: &str) -> Result<CmdOutput, Box<dyn Error>> {
    let Some(cmd) = args.first() else {
        return Err(usage().into());
    };
    if cmd == "analyze-corpus" {
        return cmd_analyze_corpus(&args[1..]).map_err(Into::into);
    }
    if cmd == "serve" {
        return serve::cmd_serve(&args[1..]).map_err(Into::into);
    }
    if cmd == "client" {
        return serve::cmd_client(&args[1..]).map_err(Into::into);
    }
    let program = parse_program(source)?;
    let cfg = Cfg::build(&program);
    let rest = &args[2.min(args.len())..];
    match cmd.as_str() {
        "analyze" => cmd_analyze(&program, &cfg, rest),
        "run" => cmd_run(&cfg, rest),
        "check" => cmd_check(&cfg, rest),
        "dot" => {
            Flags::parse(rest, &[], &[])?;
            Ok(ok(mpl_cfg::dot::to_dot(&cfg, "mpl")))
        }
        "flow" => cmd_flow(&cfg, rest),
        "mpicfg" => {
            Flags::parse(rest, &[], &[])?;
            cmd_mpicfg(&cfg)
        }
        "rewrite" => {
            Flags::parse(rest, &[], &[])?;
            cmd_rewrite(&program, &cfg)
        }
        other => Err(format!("unknown command `{other}`\n{}", usage()).into()),
    }
}

/// The usage string.
#[must_use]
pub fn usage() -> &'static str {
    "usage:\n  \
     mpl analyze <file> [--client simple|cartesian] [--min-np N] [--par N]\n              \
     [--order fifo|priority] [--trace] [--stats] [--json]\n  \
     mpl analyze-corpus  [--dir D] [--jobs N] [--client simple|cartesian] [--min-np N]\n              \
     [--par N] [--order fifo|priority]\n              \
     [--timeout-ms T] [--retries R] [--keep-going] [--json] [--timing]\n  \
     mpl serve   (--socket PATH | --tcp ADDR) [--cache N] [--cache-dir D] [--compact-every N]\n              \
     [--max-in-flight N] [--max-line-bytes N] [--drain-timeout-ms T]\n              \
     [--quota-rps N] [--quota-burst N]\n              \
     [--client simple|cartesian] [--min-np N] [--timeout-ms T] [--retries R] [--par N]\n  \
     mpl client  (--socket PATH | --tcp ADDR) [--op analyze|stats|ping|shutdown]\n              \
     [--mode drain|abort] [--file F] [--name N] [--client C] [--client-id ID]\n              \
     [--min-np N] [--timeout-ms T] [--retries R] [--par N]\n  \
     mpl run     <file> --np N [--seed S] [--rendezvous] [--set var=val]...\n  \
     mpl check   <file>\n  \
     mpl dot     <file>\n  \
     mpl flow    <file> --source var[,var...]\n  \
     mpl mpicfg  <file>\n  \
     mpl rewrite <file>"
}

pub(crate) fn parse_client(flags: &Flags) -> Result<Client, String> {
    match flags.value("--client") {
        None => Ok(Client::default()),
        Some(tag) => Client::from_tag(tag).ok_or_else(|| format!("unknown client `{tag}`")),
    }
}

/// Parses `--order fifo|priority`; `None` means "builder default".
fn parse_order(flags: &Flags) -> Result<Option<ScheduleOrder>, String> {
    match flags.value("--order") {
        None => Ok(None),
        Some("fifo") => Ok(Some(ScheduleOrder::Fifo)),
        Some("priority") => Ok(Some(ScheduleOrder::Priority)),
        Some(other) => Err(format!("invalid value `{other}` for `--order`")),
    }
}

fn cmd_analyze(
    program: &mpl_lang::ast::Program,
    cfg: &Cfg,
    args: &[String],
) -> Result<CmdOutput, Box<dyn Error>> {
    let flags = Flags::parse(
        args,
        &["--client", "--min-np", "--par", "--order"],
        &["--trace", "--stats", "--json"],
    )?;
    let client = parse_client(&flags)?;
    let min_np = flags.parse_value("--min-np", AnalysisConfig::default().min_np)?;
    let par: usize = flags.parse_value("--par", 1)?;
    if par == 0 {
        return Err("invalid value `0` for `--par`".into());
    }
    let order = parse_order(&flags)?;
    let trace = flags.switch("--trace");
    let stats = flags.switch("--stats");
    let json = flags.switch("--json");
    if json && (trace || stats) {
        return Err("`--json` cannot be combined with `--trace`/`--stats`".into());
    }
    // Every analysis goes through the unified request API; `--trace` /
    // `--stats` re-run the same validated configuration under an
    // observer stack (observers are out-of-band instrumentation, not
    // part of the request/response wire contract).
    let mut builder = AnalysisRequest::builder()
        .program(program.clone())
        .client(client)
        .min_np(min_np)
        .par(par);
    if let Some(order) = order {
        builder = builder.order(order);
    }
    let request = builder.build()?;
    if json {
        // The exact bytes the daemon serves (and caches) for this
        // program/config — the byte-identity contract of `mpl serve`.
        let response = request.execute();
        let exact = response.result.as_ref().is_some_and(|r| r.is_exact());
        return Ok(CmdOutput {
            text: format!("{}\n", response.json_line(false)),
            code: i32::from(!exact),
        });
    }

    let mut tracer = TraceObserver::new();
    let mut stats_obs = StatsObserver::new();
    let result = if trace || stats {
        let mut stack = ObserverStack::new();
        if trace {
            stack.push(&mut tracer);
        }
        if stats {
            stack.push(&mut stats_obs);
        }
        analyze_cfg_with(cfg, &request.config, &mut stack)
    } else {
        let response = request.execute();
        match response.result {
            Some(result) => result,
            // Only reachable if the engine itself panicked; the request
            // layer isolated it — report instead of crashing.
            None => {
                return Ok(CmdOutput {
                    text: format!("analysis failed: {}\n", response.outcome),
                    code: 1,
                });
            }
        }
    };

    let mut out = String::new();
    if trace {
        for line in tracer.lines() {
            let _ = writeln!(out, "{line}");
        }
    }
    let _ = writeln!(out, "verdict: {:?}", result.verdict);
    let topo = StaticTopology::from_result(&result);
    let _ = write!(out, "{topo}");
    let pattern = classify(&result);
    let _ = writeln!(out, "pattern: {pattern}");
    if let Some(hint) = pattern.collective_hint() {
        let _ = writeln!(out, "hint: {hint}");
    }
    for p in &result.prints {
        if let Some(v) = p.value {
            let _ = writeln!(
                out,
                "print at {} for ranks {}: constant {v}",
                p.node, p.range
            );
        }
    }
    for d in diagnose(cfg, &result) {
        let _ = writeln!(out, "diagnostic: {d}");
    }
    if stats {
        let cs = &result.closure_stats;
        let _ = writeln!(
            out,
            "closure stats: {} full (avg {:.1} vars), {} incremental (avg {:.1} vars), {:?} in closure",
            cs.full_closures,
            cs.avg_full_vars(),
            cs.incremental_closures,
            cs.avg_incremental_vars(),
            cs.closure_time(),
        );
        let _ = writeln!(out, "engine events: {}", stats_obs.stats());
        if let Some(profile) = stats_obs.profile() {
            let _ = writeln!(out, "engine phases: {profile}");
            let _ = writeln!(
                out,
                "stored states: {} locations, ~{} bytes (shared substructure deduplicated)",
                profile.stored.locations, profile.stored.approx_bytes,
            );
        }
    }
    let code = i32::from(!result.is_exact());
    Ok(CmdOutput { text: out, code })
}

/// Runs a corpus — the built-in one, or every `.mpl` file under `--dir`
/// — through [`BatchAnalyzer`].
///
/// Output is deterministic for any `--jobs` value; only the `--timing`
/// fields (wall times, panic worker ids) vary between runs, so
/// reproducibility checks must omit that switch. A non-exact verdict is
/// not a CLI failure here (unlike `mpl analyze`) — the corpus
/// intentionally contains deadlocking and inconclusive programs — but a
/// job that *fails to produce an analysis* (panicked, timed out, or
/// unparseable) exits 1 unless `--keep-going` is given.
fn cmd_analyze_corpus(args: &[String]) -> Result<CmdOutput, String> {
    let flags = Flags::parse(
        args,
        &[
            "--jobs",
            "--client",
            "--min-np",
            "--dir",
            "--timeout-ms",
            "--retries",
            "--par",
            "--order",
        ],
        &["--json", "--timing", "--keep-going"],
    )?;
    let jobs: usize = flags.parse_value("--jobs", 1)?;
    if jobs == 0 {
        return Err("invalid value `0` for `--jobs`".to_owned());
    }
    let client = parse_client(&flags)?;
    let min_np: i64 = flags.parse_value("--min-np", AnalysisConfig::default().min_np)?;
    let par: usize = flags.parse_value("--par", 1)?;
    if par == 0 {
        return Err("invalid value `0` for `--par`".to_owned());
    }
    let order = parse_order(&flags)?;
    let timeout_ms: u64 = flags.parse_value("--timeout-ms", 0)?;
    let retries: u32 = flags.parse_value("--retries", 0)?;
    let keep_going = flags.switch("--keep-going");
    let json = flags.switch("--json");
    let timing = flags.switch("--timing");

    let mut batch = RequestBatch::new().workers(jobs).retries(retries);
    if timeout_ms > 0 {
        batch = batch.timeout(Duration::from_millis(timeout_ms));
    }
    if let Some(dir) = flags.value("--dir") {
        push_corpus_dir(&mut batch, dir, client, min_np, par, order)?;
    } else {
        for prog in corpus::all() {
            let mut builder = AnalysisRequest::builder()
                .name(prog.name)
                .program(prog.program)
                .client(client)
                .min_np(min_np.max(i64::try_from(prog.min_procs).unwrap_or(i64::MAX)))
                .par(par);
            if let Some(order) = order {
                builder = builder.order(order);
            }
            let request = builder.build().map_err(|e| e.to_string())?;
            batch.push(request);
        }
    }
    let done = batch.run();

    let text = if json {
        render_corpus_json(&done, timing)
    } else {
        render_corpus_text(&done, timing)
    };
    let code = i32::from(!keep_going && done.summary.failures() > 0);
    Ok(CmdOutput { text, code })
}

/// Queues every `.mpl` file under `dir` (sorted by file name, so job
/// order — and hence the report — is independent of directory
/// enumeration order). A file that fails to read or parse becomes a
/// [`JobOutcome::Error`] record in its slot instead of aborting the run;
/// `// mpl:fault=...` directives in the source are honored.
fn push_corpus_dir(
    batch: &mut RequestBatch,
    dir: &str,
    client: Client,
    min_np: i64,
    par: usize,
    order: Option<ScheduleOrder>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read `{dir}`: {e}"))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "mpl"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .mpl files in `{dir}`"));
    }
    // Knob validation happens once, up front — a bad `--min-np` aborts
    // the run instead of failing every file individually.
    let mut cb = AnalysisConfig::builder()
        .client(client)
        .min_np(min_np)
        .intra_jobs(par);
    if let Some(order) = order {
        cb = cb.schedule_order(order);
    }
    let defaults = cb.build().map_err(|e| e.to_string())?;
    for path in paths {
        let name = path.file_stem().map_or_else(
            || path.display().to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        let source = match std::fs::read_to_string(&path) {
            Ok(source) => source,
            Err(e) => {
                batch.push_error(name, format!("read error: {e}"), client);
                continue;
            }
        };
        match AnalysisRequest::builder()
            .name(&name)
            .source(source)
            .config(defaults.clone())
            .honor_fault_directive(true)
            .build()
        {
            Ok(request) => batch.push(request),
            Err(e) => batch.push_error(name, e.to_string(), client),
        }
    }
    Ok(())
}

fn render_corpus_text(done: &BatchResponse, timing: bool) -> String {
    let mut out = String::new();
    for response in &done.responses {
        let _ = writeln!(out, "{}", response.text_line(timing));
    }
    let s = &done.summary;
    let _ = write!(
        out,
        "summary: programs={} exact={} deadlock={} top={} matches={} leaks={} steps={}",
        s.programs, s.exact, s.deadlock, s.top, s.matches, s.leaks, s.steps
    );
    if timing {
        let _ = write!(
            out,
            " cpu_ms={:.3} workers={}",
            s.wall_nanos as f64 / 1e6,
            done.workers
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "outcomes: completed={} degraded={} timed_out={} panicked={} errors={}",
        s.completed, s.degraded, s.timed_out, s.panicked, s.errors
    );
    let _ = writeln!(
        out,
        "closures: full={} incremental={}",
        s.closure.full_closures, s.closure.incremental_closures
    );
    out
}

fn render_corpus_json(done: &BatchResponse, timing: bool) -> String {
    let mut out = String::new();
    for response in &done.responses {
        let _ = writeln!(out, "{}", response.json_line(timing));
    }
    let _ = writeln!(
        out,
        "{}",
        summary_json_line(&done.summary, done.workers, timing)
    );
    out
}

fn cmd_run(cfg: &Cfg, args: &[String]) -> Result<CmdOutput, Box<dyn Error>> {
    let flags = Flags::parse(args, &["--np", "--seed", "--set"], &["--rendezvous"])?;
    let np: u64 = flags
        .value("--np")
        .ok_or("missing --np")?
        .parse()
        .map_err(|_| "invalid value for `--np`")?;
    let mut config = SimConfig::default();
    if let Some(seed) = flags.value("--seed") {
        config.schedule = Schedule::Random {
            seed: seed.parse().map_err(|_| "invalid value for `--seed`")?,
        };
    }
    if flags.switch("--rendezvous") {
        config.send_mode = SendMode::Rendezvous;
    }
    let mut initial: BTreeMap<String, i64> = BTreeMap::new();
    for kv in flags.values("--set") {
        let (k, v) = kv.split_once('=').ok_or("expected --set var=val")?;
        initial.insert(k.to_owned(), v.parse()?);
    }
    config.initial_vars = initial;

    let outcome = Simulator::from_cfg(cfg.clone(), np)
        .with_config(config)
        .run()?;
    let mut out = String::new();
    let _ = writeln!(out, "status: {:?}", outcome.status);
    for (rank, prints) in outcome.prints.iter().enumerate() {
        if !prints.is_empty() {
            let _ = writeln!(out, "rank {rank} printed: {prints:?}");
        }
    }
    let _ = writeln!(out, "messages delivered: {}", outcome.topology.len());
    for leak in &outcome.leaks {
        let _ = writeln!(
            out,
            "leak: message from rank {} to rank {} (send {})",
            leak.sender, leak.receiver, leak.send_node
        );
    }
    let code = i32::from(!outcome.is_complete() || !outcome.leaks.is_empty());
    Ok(CmdOutput { text: out, code })
}

fn cmd_check(cfg: &Cfg, args: &[String]) -> Result<CmdOutput, Box<dyn Error>> {
    Flags::parse(args, &[], &[])?;
    let result = analyze_cfg(cfg, &AnalysisConfig::default());
    let diags = diagnose(cfg, &result);
    let mut out = String::new();
    if diags.is_empty() {
        let _ = writeln!(
            out,
            "ok: communication matched exactly, no leaks, no deadlock"
        );
        return Ok(ok(out));
    }
    for d in &diags {
        let _ = writeln!(out, "{d}");
    }
    Ok(CmdOutput { text: out, code: 1 })
}

fn cmd_flow(cfg: &Cfg, args: &[String]) -> Result<CmdOutput, Box<dyn Error>> {
    let flags = Flags::parse(args, &["--source"], &[])?;
    let sources: Vec<&str> = flags
        .value("--source")
        .ok_or("missing --source")?
        .split(',')
        .collect();
    let result = analyze_cfg(cfg, &AnalysisConfig::default());
    let mut out = String::new();
    if !result.is_exact() {
        let _ = writeln!(
            out,
            "warning: verdict {:?}; falling back to the MPI-CFG over-approximation",
            result.verdict
        );
        let baseline = mpi_cfg_topology(cfg);
        let flow = mpl_core::info_flow_with_pairs(cfg, baseline.pairs());
        render_flow(&mut out, &flow, &sources);
        return Ok(CmdOutput { text: out, code: 2 });
    }
    let flow = info_flow(cfg, &result);
    render_flow(&mut out, &flow, &sources);
    Ok(ok(out))
}

fn render_flow(out: &mut String, flow: &mpl_core::InfoFlow, sources: &[&str]) {
    let tainted = flow.tainted_from(sources);
    let _ = writeln!(
        out,
        "tainted variables: {}",
        tainted.into_iter().collect::<Vec<_>>().join(", ")
    );
    let leaks = flow.leaking_prints(sources);
    if leaks.is_empty() {
        let _ = writeln!(out, "no print statement can output the sources");
    } else {
        for node in leaks {
            let _ = writeln!(out, "possible leak at print {node}");
        }
    }
}

fn cmd_rewrite(program: &mpl_lang::ast::Program, cfg: &Cfg) -> Result<CmdOutput, Box<dyn Error>> {
    let result = analyze_cfg(cfg, &AnalysisConfig::default());
    match mpl_core::rewrite_broadcast(program, cfg, &result) {
        Ok(tree) => {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "// fan-out broadcast detected; rewritten to a binomial tree:"
            );
            let _ = write!(out, "{tree}");
            Ok(ok(out))
        }
        Err(e) => Ok(CmdOutput {
            text: format!("no rewrite: {e}\n"),
            code: 1,
        }),
    }
}

fn cmd_mpicfg(cfg: &Cfg) -> Result<CmdOutput, Box<dyn Error>> {
    let baseline = mpi_cfg_topology(cfg);
    let result = analyze_cfg(cfg, &AnalysisConfig::default());
    let mut out = String::new();
    let _ = write!(out, "{baseline}");
    match &result.verdict {
        Verdict::Exact => {
            let _ = writeln!(
                out,
                "pCFG analysis: exact with {} statement pairs ({} fewer than MPI-CFG)",
                result.matches.len(),
                baseline.pairs().len().saturating_sub(result.matches.len())
            );
        }
        other => {
            let _ = writeln!(out, "pCFG analysis verdict: {other:?}");
        }
    }
    Ok(ok(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str], source: &str) -> CmdOutput {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run_command(&args, source).expect("command runs")
    }

    fn run_err(args: &[&str], source: &str) -> String {
        let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run_command(&args, source).unwrap_err().to_string()
    }

    #[test]
    fn analyze_reports_verdict_pattern_and_constants() {
        let prog = corpus::fig2_exchange();
        let out = run(&["analyze", "f.mpl", "--client", "simple"], &prog.source);
        assert_eq!(out.code, 0);
        assert!(out.text.contains("verdict: Exact"));
        assert!(out.text.contains("pattern: pair-exchange"));
        assert!(out.text.contains("constant 5"));
    }

    #[test]
    fn analyze_stats_flag_reports_closure_counts() {
        let prog = corpus::fig2_exchange();
        let out = run(
            &["analyze", "f.mpl", "--client", "simple", "--stats"],
            &prog.source,
        );
        assert_eq!(out.code, 0);
        assert!(out.text.contains("closure stats:"));
        assert!(out.text.contains("full"));
        assert!(out.text.contains("incremental"));
        assert!(out.text.contains("engine events:"), "{}", out.text);
        assert!(out.text.contains("widenings"), "{}", out.text);
        assert!(out.text.contains("engine phases:"), "{}", out.text);
        assert!(out.text.contains("stored states:"), "{}", out.text);
    }

    #[test]
    fn analyze_trace_flag_streams_engine_steps() {
        let prog = corpus::fig2_exchange();
        let out = run(
            &[
                "analyze", "f.mpl", "--client", "simple", "--trace", "--stats",
            ],
            &prog.source,
        );
        assert_eq!(out.code, 0);
        assert!(out.text.contains("step 1:"), "{}", out.text);
        assert!(out.text.contains("match:"), "{}", out.text);
        assert!(out.text.contains("engine events:"), "{}", out.text);
    }

    #[test]
    fn analyze_nonexact_exits_nonzero() {
        let prog = corpus::ring_uniform();
        let out = run(&["analyze", "f.mpl"], &prog.source);
        assert_eq!(out.code, 1);
        assert!(out.text.contains("Top"));
    }

    #[test]
    fn run_simulates_and_reports_prints() {
        let prog = corpus::fig2_exchange();
        let out = run(&["run", "f.mpl", "--np", "4"], &prog.source);
        assert_eq!(out.code, 0);
        assert!(out.text.contains("rank 0 printed: [5]"));
        assert!(out.text.contains("rank 1 printed: [5]"));
    }

    #[test]
    fn run_with_seed_and_set() {
        let prog = corpus::stencil_2d_vertical(corpus::GridDims::Symbolic);
        let out = run(
            &[
                "run", "f.mpl", "--np", "9", "--seed", "7", "--set", "nrows=3", "--set", "ncols=3",
            ],
            &prog.source,
        );
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(out.text.contains("messages delivered: 6"));
    }

    #[test]
    fn run_flags_leaks_with_nonzero_exit() {
        let prog = corpus::message_leak();
        let out = run(&["run", "f.mpl", "--np", "3"], &prog.source);
        assert_eq!(out.code, 1);
        assert!(out.text.contains("leak: message from rank 0 to rank 1"));
    }

    #[test]
    fn check_clean_and_dirty() {
        let clean = run(&["check", "f.mpl"], &corpus::exchange_with_root().source);
        assert_eq!(clean.code, 0);
        assert!(clean.text.contains("ok:"));
        let dirty = run(&["check", "f.mpl"], &corpus::deadlock_pair().source);
        assert_eq!(dirty.code, 1);
        assert!(dirty.text.contains("deadlock"));
    }

    #[test]
    fn dot_emits_graphviz() {
        let out = run(&["dot", "f.mpl"], "x := 1;");
        assert!(out.text.starts_with("digraph mpl"));
    }

    #[test]
    fn flow_reports_leaking_prints() {
        let out = run(
            &["flow", "f.mpl", "--source", "x"],
            &corpus::fig2_exchange().source,
        );
        assert_eq!(out.code, 0);
        assert!(out.text.contains("possible leak at print"));
    }

    #[test]
    fn mpicfg_compares_against_pcfg() {
        let out = run(&["mpicfg", "f.mpl"], &corpus::mdcask_full().source);
        assert!(out.text.contains("MPI-CFG topology"));
        assert!(out.text.contains("pCFG analysis: exact"));
    }

    #[test]
    fn unknown_command_and_bad_flags_error() {
        let args = vec!["frobnicate".to_owned()];
        assert!(run_command(&args, "x := 1;").is_err());
        let args: Vec<String> = ["run", "f.mpl"].iter().map(|s| (*s).to_owned()).collect();
        assert!(run_command(&args, "x := 1;").is_err()); // missing --np
        let args: Vec<String> = ["analyze", "f.mpl", "--client", "quantum"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert!(run_command(&args, "x := 1;").is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_not_ignored() {
        let err = run_err(&["analyze", "f.mpl", "--bogus"], "x := 1;");
        assert!(err.contains("unknown argument `--bogus`"), "{err}");
        let err = run_err(&["check", "f.mpl", "--verbose"], "x := 1;");
        assert!(err.contains("unknown argument `--verbose`"), "{err}");
        let err = run_err(&["dot", "f.mpl", "extra"], "x := 1;");
        assert!(err.contains("unknown argument `extra`"), "{err}");
    }

    #[test]
    fn malformed_flag_values_are_rejected() {
        let err = run_err(&["analyze", "f.mpl", "--min-np", "many"], "x := 1;");
        assert!(err.contains("invalid value `many` for `--min-np`"), "{err}");
        let err = run_err(&["analyze", "f.mpl", "--min-np"], "x := 1;");
        assert!(err.contains("missing value for `--min-np`"), "{err}");
        let err = run_err(&["run", "f.mpl", "--np", "four"], "x := 1;");
        assert!(err.contains("invalid value for `--np`"), "{err}");
        let err = run_err(&["analyze-corpus", "--jobs", "zero"], "");
        assert!(err.contains("invalid value `zero` for `--jobs`"), "{err}");
        let err = run_err(&["analyze-corpus", "--jobs", "0"], "");
        assert!(err.contains("invalid value `0` for `--jobs`"), "{err}");
    }

    #[test]
    fn analyze_corpus_covers_whole_corpus() {
        let out = run(&["analyze-corpus"], "");
        assert_eq!(out.code, 0);
        let n = corpus::all().len();
        assert!(out.text.contains(&format!("summary: programs={n}")));
        for prog in corpus::all() {
            assert!(out.text.contains(prog.name), "missing {}", prog.name);
        }
        assert!(out.text.contains("closures: full="));
    }

    #[test]
    fn analyze_corpus_is_deterministic_across_jobs() {
        let base = run(&["analyze-corpus"], "");
        for jobs in ["2", "4", "8"] {
            let par = run(&["analyze-corpus", "--jobs", jobs], "");
            assert_eq!(base.text, par.text, "output diverged at --jobs {jobs}");
        }
        let base_json = run(&["analyze-corpus", "--json"], "");
        let par_json = run(&["analyze-corpus", "--json", "--jobs", "8"], "");
        assert_eq!(base_json.text, par_json.text);
    }

    #[test]
    fn analyze_corpus_json_lines_are_well_formed() {
        let out = run(&["analyze-corpus", "--json", "--jobs", "2"], "");
        let lines: Vec<&str> = out.text.lines().collect();
        assert_eq!(lines.len(), corpus::all().len() + 1);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"type\":\"program\""));
        assert!(lines.last().unwrap().contains("\"type\":\"summary\""));
        // Timing fields only appear with --timing.
        assert!(!out.text.contains("wall_nanos"));
        let timed = run(&["analyze-corpus", "--json", "--timing"], "");
        assert!(timed.text.contains("wall_nanos"));
    }

    /// Creates a unique scratch corpus directory populated with `files`
    /// (name, contents) and returns its path.
    fn scratch_corpus(label: &str, files: &[(&str, &str)]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mpl-cli-test-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        for (name, contents) in files {
            std::fs::write(dir.join(name), contents).expect("write corpus file");
        }
        dir
    }

    #[test]
    fn analyze_corpus_dir_isolates_faults_and_parse_errors() {
        let good = corpus::fig2_exchange().source;
        let poison = format!("// mpl:fault=panic\n{good}");
        let spinner = format!("// mpl:fault=spin\n{good}");
        let dir = scratch_corpus(
            "faults",
            &[
                ("a_good.mpl", good.as_str()),
                ("b_poison.mpl", poison.as_str()),
                ("c_spin.mpl", spinner.as_str()),
                ("d_broken.mpl", "x := ;"),
                ("ignored.txt", "not a program"),
            ],
        );
        let dir_arg = dir.to_str().unwrap();
        let out = run(
            &[
                "analyze-corpus",
                "--dir",
                dir_arg,
                "--jobs",
                "4",
                "--timeout-ms",
                "200",
                "--keep-going",
            ],
            "",
        );
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(out.text.contains("a_good: verdict=exact"), "{}", out.text);
        assert!(
            out.text.contains("b_poison: outcome=panicked"),
            "{}",
            out.text
        );
        assert!(
            out.text
                .contains("c_spin: verdict=top reason=deadline outcome=timed-out"),
            "{}",
            out.text
        );
        assert!(out.text.contains("d_broken: outcome=error"), "{}", out.text);
        assert!(
            out.text
                .contains("outcomes: completed=1 degraded=0 timed_out=1 panicked=1 errors=1"),
            "{}",
            out.text
        );
        // Without --keep-going the same corpus is a CLI failure.
        let strict = run(
            &["analyze-corpus", "--dir", dir_arg, "--timeout-ms", "200"],
            "",
        );
        assert_eq!(strict.code, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_corpus_dir_output_is_deterministic_across_jobs() {
        let good = corpus::fig2_exchange().source;
        let poison = format!("// mpl:fault=panic\n{good}");
        let spinner = format!("// mpl:fault=spin\n{good}");
        let dir = scratch_corpus(
            "determinism",
            &[
                ("a.mpl", good.as_str()),
                ("b_poison.mpl", poison.as_str()),
                ("c_spin.mpl", spinner.as_str()),
                ("d.mpl", good.as_str()),
            ],
        );
        let dir_arg = dir.to_str().unwrap();
        let base = run(
            &[
                "analyze-corpus",
                "--dir",
                dir_arg,
                "--timeout-ms",
                "150",
                "--keep-going",
                "--json",
            ],
            "",
        );
        for jobs in ["4", "8"] {
            let par = run(
                &[
                    "analyze-corpus",
                    "--dir",
                    dir_arg,
                    "--jobs",
                    jobs,
                    "--timeout-ms",
                    "150",
                    "--keep-going",
                    "--json",
                ],
                "",
            );
            assert_eq!(base.text, par.text, "diverged at --jobs {jobs}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_corpus_retries_degrade_top_once_fault() {
        let good = corpus::fig2_exchange().source;
        let flaky = format!("// mpl:fault=top-once\n{good}");
        let dir = scratch_corpus("retries", &[("flaky.mpl", flaky.as_str())]);
        let dir_arg = dir.to_str().unwrap();
        // No retries: the injected budget-⊤ stands, outcome completed.
        let out = run(&["analyze-corpus", "--dir", dir_arg], "");
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(
            out.text.contains("flaky: verdict=top reason=step-budget"),
            "{}",
            out.text
        );
        // One retry: the second attempt recovers, outcome degraded.
        let out = run(&["analyze-corpus", "--dir", dir_arg, "--retries", "1"], "");
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(
            out.text
                .contains("flaky: verdict=exact outcome=degraded attempts=2"),
            "{}",
            out.text
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_corpus_json_reports_outcomes() {
        let good = corpus::fig2_exchange().source;
        let poison = format!("// mpl:fault=panic\n{good}");
        let dir = scratch_corpus(
            "json-outcomes",
            &[("a.mpl", good.as_str()), ("b_poison.mpl", poison.as_str())],
        );
        let dir_arg = dir.to_str().unwrap();
        let out = run(
            &["analyze-corpus", "--dir", dir_arg, "--keep-going", "--json"],
            "",
        );
        assert_eq!(out.code, 0);
        let lines: Vec<&str> = out.text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].contains("\"outcome\":\"completed\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"outcome\":\"panicked\""),
            "{}",
            lines[1]
        );
        assert!(lines[1].contains("\"verdict\":null"), "{}", lines[1]);
        assert!(lines[1].contains("\"detail\":\""), "{}", lines[1]);
        assert!(
            lines[2].contains(
                "\"completed\":1,\"degraded\":0,\"timed_out\":0,\"panicked\":1,\"errors\":0"
            ),
            "{}",
            lines[2]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_emits_tree_broadcast() {
        let out = run(&["rewrite", "f.mpl"], &corpus::fanout_broadcast().source);
        assert_eq!(out.code, 0);
        assert!(out.text.contains("binomial tree"));
        assert!(out.text.contains("while (mpl_k < np)"));
        // The emitted program is valid MPL.
        let body = out.text.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(mpl_lang::parse_program(&body).is_ok());
        // Non-broadcasts are refused.
        let no = run(
            &["rewrite", "f.mpl"],
            &corpus::nearest_neighbor_shift().source,
        );
        assert_eq!(no.code, 1);
    }

    #[test]
    fn parse_errors_surface() {
        let args: Vec<String> = ["check", "f.mpl"].iter().map(|s| (*s).to_owned()).collect();
        let err = run_command(&args, "x := ;").unwrap_err();
        assert!(err.to_string().contains("parse error"));
    }
}
