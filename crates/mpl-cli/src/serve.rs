//! `mpl serve` — the long-running analysis daemon — and `mpl client`,
//! its line-oriented companion.
//!
//! The daemon is a thin transport shell around
//! [`mpl_core::AnalysisService`]: it owns a unix or TCP listener, spawns
//! one thread per connection, and forwards newline-framed JSON lines to
//! [`AnalysisService::handle_line_as`]. All protocol behaviour —
//! caching, persistence, admission control, quotas, error rendering,
//! the byte-identity contract with `mpl analyze --json` — lives in the
//! service, where it is unit-tested without any sockets.
//!
//! Transport-level robustness lives here:
//!
//! * **Bounded request lines.** Reads are capped at `--max-line-bytes`
//!   (default 4 MiB); an oversized line gets a structured
//!   `line-too-long` error and the connection is closed (the framing is
//!   unrecoverable mid-line) — never unbounded buffering.
//! * **A connection registry.** Every connection thread is tracked
//!   (active count + join handles), not detached, so shutdown can
//!   choose between draining and aborting. Connection reads poll with a
//!   short timeout so idle connections notice shutdown promptly.
//! * **Graceful drain.** `{"op":"shutdown","mode":"drain"}` stops
//!   accepting, lets in-flight connections finish their current request
//!   under the `--drain-timeout-ms` deadline, joins the drained
//!   threads, and reports a `{"type":"drain",...}` record. The default
//!   `abort` mode keeps the historic semantics: in-flight requests are
//!   abandoned (their clients see a closed connection, never a hang).
//!
//! Lifecycle: on startup the daemon prints a single
//! `{"v":1,"type":"serving",...}` line to stdout (flushed eagerly, so a
//! parent process can wait for readiness and, with `--tcp 127.0.0.1:0`,
//! discover the ephemeral port). It then serves until a `shutdown`
//! request arrives, and exits printing a `shutdown-summary` record with
//! the final cache, admission, coalescing, quota, and journal counters.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mpl_core::{
    error_line, json_escape, AnalysisConfig, AnalysisService, CancelToken, QuotaPolicy, Reply,
    ServiceConfig, ShutdownMode, PROTOCOL_VERSION,
};

use crate::{parse_client, CmdOutput, Flags};

/// How long the accept loop sleeps between polls of the listener and
/// the shutdown token.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Read timeout on connection sockets: the interval at which an idle
/// connection thread re-checks the shutdown and drain flags.
const READ_POLL: Duration = Duration::from_millis(25);

/// Default cap on one request line, in bytes.
const DEFAULT_MAX_LINE: usize = 4 * 1024 * 1024;

/// Default drain deadline.
const DEFAULT_DRAIN_TIMEOUT_MS: u64 = 5_000;

/// Connect attempts `mpl client` makes before giving up (the daemon
/// may still be binding its socket when the client starts).
const CONNECT_ATTEMPTS: u32 = 40;

/// The two transports the daemon (and client) speak.
enum Listener {
    Unix(UnixListener, String),
    Tcp(TcpListener),
}

/// Bookkeeping for live connection threads, shared between the accept
/// loop and every connection.
struct ConnRegistry {
    /// Connection threads that have not yet exited.
    active: AtomicUsize,
    /// Set when a drain starts: connection loops finish their current
    /// request and exit instead of reading the next one.
    draining: AtomicBool,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ConnRegistry {
    fn new() -> Arc<ConnRegistry> {
        Arc::new(ConnRegistry {
            active: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            handles: Mutex::new(Vec::new()),
        })
    }

    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Joins finished threads so the handle list stays proportional to
    /// *live* connections, not total connections served.
    fn reap(&self) {
        let mut handles = self.handles.lock().expect("registry lock");
        let mut live = Vec::with_capacity(handles.len());
        for handle in handles.drain(..) {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                live.push(handle);
            }
        }
        *handles = live;
    }

    /// Joins every remaining thread (drain completion).
    fn join_all(&self) {
        let handles = {
            let mut handles = self.handles.lock().expect("registry lock");
            std::mem::take(&mut *handles)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Decrements the active-connection count when the thread exits, on
/// every path including panics.
struct ActiveGuard(Arc<ConnRegistry>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Parses the mutually-exclusive `--socket` / `--tcp` pair.
fn transport_flags(flags: &Flags) -> Result<(Option<String>, Option<String>), String> {
    let socket = flags.value("--socket").map(str::to_owned);
    let tcp = flags.value("--tcp").map(str::to_owned);
    if socket.is_some() && tcp.is_some() {
        return Err("`--socket` and `--tcp` are mutually exclusive".to_owned());
    }
    if socket.is_none() && tcp.is_none() {
        return Err("one of `--socket PATH` or `--tcp ADDR` is required".to_owned());
    }
    Ok((socket, tcp))
}

/// Builds the service configuration shared by `serve` from its flags.
fn service_config(flags: &Flags) -> Result<ServiceConfig, String> {
    let client = parse_client(flags)?;
    let min_np: i64 = flags.parse_value("--min-np", AnalysisConfig::default().min_np)?;
    let par: usize = flags.parse_value("--par", 1)?;
    if par == 0 {
        return Err("invalid value `0` for `--par`".to_owned());
    }
    let defaults = AnalysisConfig::builder()
        .client(client)
        .min_np(min_np)
        .intra_jobs(par)
        .build()
        .map_err(|e| e.to_string())?;
    let timeout_ms: u64 = flags.parse_value("--timeout-ms", 0)?;
    let mut config = ServiceConfig::default();
    config.defaults = defaults;
    config.cache_capacity = flags.parse_value("--cache", config.cache_capacity)?;
    config.max_in_flight = flags.parse_value("--max-in-flight", config.max_in_flight)?;
    if config.max_in_flight == 0 {
        return Err("invalid value `0` for `--max-in-flight`".to_owned());
    }
    config.default_timeout = (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms));
    config.default_retries = flags.parse_value("--retries", 0)?;
    config.cache_dir = flags.value("--cache-dir").map(std::path::PathBuf::from);
    config.compact_every = flags.parse_value("--compact-every", config.compact_every)?;
    let quota_rps: u64 = flags.parse_value("--quota-rps", 0)?;
    let quota_burst: u64 = flags.parse_value("--quota-burst", 0)?;
    if quota_burst > 0 && quota_rps == 0 {
        return Err("`--quota-burst` requires `--quota-rps`".to_owned());
    }
    config.quota = (quota_rps > 0).then_some(QuotaPolicy {
        rate_per_sec: quota_rps,
        // Burst defaults to one second's worth of tokens.
        burst: if quota_burst > 0 {
            quota_burst
        } else {
            quota_rps
        },
    });
    Ok(config)
}

/// The `mpl serve` command. Blocks until a `shutdown` request is
/// served; the returned [`CmdOutput`] is the shutdown summary (preceded
/// by a `drain` record when the shutdown asked for one).
pub(crate) fn cmd_serve(args: &[String]) -> Result<CmdOutput, String> {
    let flags = Flags::parse(
        args,
        &[
            "--socket",
            "--tcp",
            "--cache",
            "--cache-dir",
            "--compact-every",
            "--max-in-flight",
            "--max-line-bytes",
            "--drain-timeout-ms",
            "--quota-rps",
            "--quota-burst",
            "--client",
            "--min-np",
            "--timeout-ms",
            "--retries",
            "--par",
        ],
        &[],
    )?;
    let (socket, tcp) = transport_flags(&flags)?;
    let max_line: usize = flags.parse_value("--max-line-bytes", DEFAULT_MAX_LINE)?;
    if max_line == 0 {
        return Err("invalid value `0` for `--max-line-bytes`".to_owned());
    }
    let drain_timeout_ms: u64 =
        flags.parse_value("--drain-timeout-ms", DEFAULT_DRAIN_TIMEOUT_MS)?;
    let service = Arc::new(AnalysisService::open(service_config(&flags)?)?);

    let (listener, addr, kind) = if let Some(path) = socket {
        let listener =
            UnixListener::bind(&path).map_err(|e| format!("cannot bind `{path}`: {e}"))?;
        (Listener::Unix(listener, path.clone()), path, "unix")
    } else {
        let addr = tcp.expect("transport_flags guarantees one of the pair");
        let listener =
            TcpListener::bind(&addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
        let actual = listener
            .local_addr()
            .map_err(|e| e.to_string())?
            .to_string();
        (Listener::Tcp(listener), actual, "tcp")
    };

    // Readiness line, flushed before the first accept: parents wait on
    // this, and for `--tcp host:0` it carries the real port.
    {
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(
            stdout,
            "{{\"v\":{PROTOCOL_VERSION},\"type\":\"serving\",\"transport\":\"{kind}\",\
             \"addr\":\"{}\"}}",
            json_escape(&addr)
        );
        let _ = stdout.flush();
    }

    let registry = ConnRegistry::new();
    let shutdown = service.shutdown_token();
    let mut conn_seq = 0u64;
    match &listener {
        Listener::Unix(listener, _) => {
            listener.set_nonblocking(true).map_err(|e| e.to_string())?;
            while !shutdown.is_cancelled() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        conn_seq += 1;
                        // Unix peer credentials are not portable; the
                        // per-connection sequence number is the quota
                        // identity for anonymous local clients.
                        let peer = format!("conn-{conn_seq}");
                        spawn_connection(Arc::clone(&service), &registry, stream, peer, max_line);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        }
        Listener::Tcp(listener) => {
            listener.set_nonblocking(true).map_err(|e| e.to_string())?;
            while !shutdown.is_cancelled() {
                match listener.accept() {
                    Ok((stream, remote)) => {
                        // The remote address is the quota identity: a
                        // client that reconnects without a `client_id`
                        // keeps its bucket instead of minting a fresh
                        // anonymous one per connection.
                        let peer = remote.to_string();
                        spawn_connection(Arc::clone(&service), &registry, stream, peer, max_line);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        }
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }

    let mut text = String::new();
    if service.shutdown_mode() == Some(ShutdownMode::Drain) {
        registry.draining.store(true, Ordering::Release);
        let deadline = CancelToken::with_deadline(Duration::from_millis(drain_timeout_ms));
        while registry.active.load(Ordering::Acquire) > 0 && !deadline.is_cancelled() {
            std::thread::sleep(Duration::from_millis(5));
        }
        let abandoned = registry.active.load(Ordering::Acquire);
        if abandoned == 0 {
            registry.join_all();
        }
        text.push_str(&format!(
            "{{\"v\":{PROTOCOL_VERSION},\"type\":\"drain\",\"completed\":{},\
             \"abandoned\":{abandoned}}}\n",
            abandoned == 0
        ));
    }
    text.push_str(&service.shutdown_summary_line());
    text.push('\n');
    Ok(CmdOutput { text, code: 0 })
}

/// Spawns and registers the per-connection thread.
fn spawn_connection<S>(
    service: Arc<AnalysisService>,
    registry: &Arc<ConnRegistry>,
    stream: S,
    peer: String,
    max_line: usize,
) where
    S: std::io::Read + std::io::Write + TryCloneStream + Send + 'static,
{
    registry.reap();
    registry.active.fetch_add(1, Ordering::AcqRel);
    let shutdown = service.shutdown_token();
    let conn_registry = Arc::clone(registry);
    let handle = std::thread::spawn(move || {
        let registry = conn_registry;
        let _guard = ActiveGuard(Arc::clone(&registry));
        // Blocking mode with a short read timeout: reads return
        // `WouldBlock`/`TimedOut` periodically so the loop can notice
        // shutdown and drain without an interruptible-read mechanism.
        if stream.prepare_polling(READ_POLL).is_err() {
            return;
        }
        let Ok(read_half) = stream.try_clone_stream() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            if shutdown.is_cancelled() || registry.is_draining() {
                break;
            }
            match read_capped_line(&mut reader, max_line, &mut buf) {
                LineRead::Idle => continue,
                LineRead::Eof => break,
                LineRead::TooLong => {
                    // The rest of the oversized line is unread, so the
                    // framing is lost: answer, then close.
                    let reply = service.oversize_reply(max_line);
                    let _ = writeln!(writer, "{reply}");
                    let _ = writer.flush();
                    break;
                }
                LineRead::Line => {
                    let line = match String::from_utf8(std::mem::take(&mut buf)) {
                        Ok(line) => line,
                        Err(_) => {
                            let reply = error_line("bad-json", "request line is not UTF-8");
                            if writeln!(writer, "{reply}").is_err() || writer.flush().is_err() {
                                break;
                            }
                            continue;
                        }
                    };
                    if line.trim().is_empty() {
                        continue;
                    }
                    let reply = service.handle_line_as(&line, &peer);
                    let done = matches!(reply, Reply::Shutdown(_));
                    if writeln!(writer, "{}", reply.line()).is_err() || writer.flush().is_err() {
                        break;
                    }
                    if done {
                        break;
                    }
                }
            }
        }
    });
    registry.handles.lock().expect("registry lock").push(handle);
}

/// One attempt to read a capped, newline-terminated line.
enum LineRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// The line exceeded the cap; the buffer holds the prefix.
    TooLong,
    /// The read timed out with the line still incomplete; the partial
    /// buffer is preserved for the next attempt.
    Idle,
    /// Connection closed (or hard I/O error).
    Eof,
}

/// Reads until a newline, a timeout, EOF, or `cap` bytes — whichever
/// comes first. Partial reads accumulate in `buf` across `Idle`
/// returns, so a slow client costs patience, not memory beyond the cap.
fn read_capped_line(reader: &mut impl BufRead, cap: usize, buf: &mut Vec<u8>) -> LineRead {
    loop {
        // Allow one byte past the cap so "exactly cap bytes plus the
        // newline" still parses while "cap+1 payload bytes" trips.
        let budget = (cap + 1).saturating_sub(buf.len()) as u64;
        match reader.by_ref().take(budget).read_until(b'\n', buf) {
            Ok(0) => return LineRead::Eof,
            Ok(_) => {
                if buf.last() == Some(&b'\n') {
                    buf.pop();
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return LineRead::Line;
                }
                if buf.len() > cap {
                    return LineRead::TooLong;
                }
                // Budget exhausted exactly at the cap without a newline
                // is impossible (budget always reaches cap + 1), so
                // this is a short read: keep going.
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return LineRead::Idle;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return LineRead::Eof,
        }
    }
}

/// `try_clone` plus socket-option setup, unified across the two stream
/// types.
trait TryCloneStream: Sized {
    fn try_clone_stream(&self) -> std::io::Result<Self>;
    /// Switches the socket to blocking mode with `poll` as the read
    /// timeout (the connection loop's shutdown-check cadence).
    fn prepare_polling(&self, poll: Duration) -> std::io::Result<()>;
}

impl TryCloneStream for UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<UnixStream> {
        self.try_clone()
    }

    fn prepare_polling(&self, poll: Duration) -> std::io::Result<()> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(Some(poll))
    }
}

impl TryCloneStream for TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.try_clone()
    }

    fn prepare_polling(&self, poll: Duration) -> std::io::Result<()> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(Some(poll))
    }
}

/// The `mpl client` command: sends one request line to a running
/// daemon and prints the one response line. Exit code 0 for served
/// answers (`program`, `pong`, `stats`, `shutdown`), 1 for `error` and
/// `rejected` responses.
pub(crate) fn cmd_client(args: &[String]) -> Result<CmdOutput, String> {
    let flags = Flags::parse(
        args,
        &[
            "--socket",
            "--tcp",
            "--op",
            "--mode",
            "--file",
            "--name",
            "--client",
            "--client-id",
            "--min-np",
            "--max-steps",
            "--timeout-ms",
            "--retries",
            "--par",
        ],
        &[],
    )?;
    let (socket, tcp) = transport_flags(&flags)?;
    let op = flags.value("--op").unwrap_or("analyze");
    let request = match op {
        "ping" | "stats" => format!("{{\"op\":\"{op}\"}}"),
        "shutdown" => match flags.value("--mode") {
            None => "{\"op\":\"shutdown\"}".to_owned(),
            Some(mode) => format!("{{\"op\":\"shutdown\",\"mode\":\"{}\"}}", json_escape(mode)),
        },
        "analyze" => build_analyze_line(&flags)?,
        other => return Err(format!("unknown op `{other}`")),
    };

    let response = if let Some(path) = socket {
        let stream = connect_with_retry(|| UnixStream::connect(&path), &path)?;
        round_trip(stream, &request)?
    } else {
        let addr = tcp.expect("transport_flags guarantees one of the pair");
        let stream = connect_with_retry(|| TcpStream::connect(&addr), &addr)?;
        round_trip(stream, &request)?
    };
    let failed = response.starts_with(&format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"error\""))
        || response.starts_with(&format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"rejected\""));
    Ok(CmdOutput {
        text: format!("{response}\n"),
        code: i32::from(failed),
    })
}

/// Connects with a bounded, deterministic backoff: the daemon prints
/// its readiness line *before* its first accept, and on busy machines a
/// client racing that window (or a daemon restart) would otherwise flake
/// with `ConnectionRefused`. Backoff is `min(5·attempt, 50)` ms for up
/// to [`CONNECT_ATTEMPTS`] attempts (~1.8 s worst case), then the real
/// error surfaces.
fn connect_with_retry<S>(
    connect: impl Fn() -> std::io::Result<S>,
    label: &str,
) -> Result<S, String> {
    let mut attempt = 0u32;
    loop {
        match connect() {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                attempt += 1;
                let transient = matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::NotFound
                        | std::io::ErrorKind::AddrNotAvailable
                );
                if !transient || attempt >= CONNECT_ATTEMPTS {
                    return Err(format!("cannot connect `{label}`: {e}"));
                }
                std::thread::sleep(Duration::from_millis(u64::from((5 * attempt).min(50))));
            }
        }
    }
}

/// Assembles the `analyze` request object from client flags.
fn build_analyze_line(flags: &Flags) -> Result<String, String> {
    let path = flags
        .value("--file")
        .ok_or("`--op analyze` requires `--file`")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut line = format!(
        "{{\"op\":\"analyze\",\"program\":\"{}\"",
        json_escape(&source)
    );
    if let Some(name) = flags.value("--name") {
        line.push_str(&format!(",\"name\":\"{}\"", json_escape(name)));
    }
    if let Some(client) = flags.value("--client") {
        line.push_str(&format!(",\"client\":\"{}\"", json_escape(client)));
    }
    if let Some(id) = flags.value("--client-id") {
        line.push_str(&format!(",\"client_id\":\"{}\"", json_escape(id)));
    }
    for (flag, key) in [
        ("--min-np", "min_np"),
        ("--max-steps", "max_steps"),
        ("--timeout-ms", "timeout_ms"),
        ("--retries", "retries"),
        ("--par", "par"),
    ] {
        if let Some(raw) = flags.value(flag) {
            let n: i64 = raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for `{flag}`"))?;
            line.push_str(&format!(",\"{key}\":{n}"));
        }
    }
    line.push('}');
    Ok(line)
}

/// Writes one request line and reads one response line.
fn round_trip<S: std::io::Read + std::io::Write + TryCloneStream>(
    mut stream: S,
    request: &str,
) -> Result<String, String> {
    let read_half = stream.try_clone_stream().map_err(|e| e.to_string())?;
    writeln!(stream, "{request}").map_err(|e| format!("send failed: {e}"))?;
    stream.flush().map_err(|e| format!("send failed: {e}"))?;
    let mut reader = BufReader::new(read_half);
    let mut response = String::new();
    let n = reader
        .read_line(&mut response)
        .map_err(|e| format!("receive failed: {e}"))?;
    if n == 0 {
        return Err("server closed the connection without replying".to_owned());
    }
    Ok(response.trim_end_matches('\n').to_owned())
}
