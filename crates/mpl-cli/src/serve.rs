//! `mpl serve` — the long-running analysis daemon — and `mpl client`,
//! its line-oriented companion.
//!
//! The daemon is a thin transport shell around
//! [`mpl_core::AnalysisService`]: it owns a unix or TCP listener, spawns
//! one thread per connection, and forwards newline-framed JSON lines to
//! [`AnalysisService::handle_line`]. All protocol behaviour — caching,
//! admission control, error rendering, the byte-identity contract with
//! `mpl analyze --json` — lives in the service, where it is unit-tested
//! without any sockets.
//!
//! Lifecycle: on startup the daemon prints a single
//! `{"v":1,"type":"serving",...}` line to stdout (flushed eagerly, so a
//! parent process can wait for readiness and, with `--tcp 127.0.0.1:0`,
//! discover the ephemeral port). It then serves until a `shutdown`
//! request arrives, and exits printing a `shutdown-summary` record with
//! the final cache and admission counters. Connection threads are
//! detached: requests in flight when shutdown lands are abandoned
//! (their clients see a closed connection, never a hang).

use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::Arc;
use std::time::Duration;

use mpl_core::{
    json_escape, AnalysisConfig, AnalysisService, Reply, ServiceConfig, PROTOCOL_VERSION,
};

use crate::{parse_client, CmdOutput, Flags};

/// How long the accept loop sleeps between polls of the listener and
/// the shutdown token.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// The two transports the daemon (and client) speak.
enum Listener {
    Unix(UnixListener, String),
    Tcp(TcpListener),
}

/// Parses the mutually-exclusive `--socket` / `--tcp` pair.
fn transport_flags(flags: &Flags) -> Result<(Option<String>, Option<String>), String> {
    let socket = flags.value("--socket").map(str::to_owned);
    let tcp = flags.value("--tcp").map(str::to_owned);
    if socket.is_some() && tcp.is_some() {
        return Err("`--socket` and `--tcp` are mutually exclusive".to_owned());
    }
    if socket.is_none() && tcp.is_none() {
        return Err("one of `--socket PATH` or `--tcp ADDR` is required".to_owned());
    }
    Ok((socket, tcp))
}

/// Builds the service configuration shared by `serve` from its flags.
fn service_config(flags: &Flags) -> Result<ServiceConfig, String> {
    let client = parse_client(flags)?;
    let min_np: i64 = flags.parse_value("--min-np", AnalysisConfig::default().min_np)?;
    let defaults = AnalysisConfig::builder()
        .client(client)
        .min_np(min_np)
        .build()
        .map_err(|e| e.to_string())?;
    let timeout_ms: u64 = flags.parse_value("--timeout-ms", 0)?;
    let mut config = ServiceConfig::default();
    config.defaults = defaults;
    config.cache_capacity = flags.parse_value("--cache", config.cache_capacity)?;
    config.max_in_flight = flags.parse_value("--max-in-flight", config.max_in_flight)?;
    if config.max_in_flight == 0 {
        return Err("invalid value `0` for `--max-in-flight`".to_owned());
    }
    config.default_timeout = (timeout_ms > 0).then(|| Duration::from_millis(timeout_ms));
    config.default_retries = flags.parse_value("--retries", 0)?;
    Ok(config)
}

/// The `mpl serve` command. Blocks until a `shutdown` request is
/// served; the returned [`CmdOutput`] is the shutdown summary.
pub(crate) fn cmd_serve(args: &[String]) -> Result<CmdOutput, String> {
    let flags = Flags::parse(
        args,
        &[
            "--socket",
            "--tcp",
            "--cache",
            "--max-in-flight",
            "--client",
            "--min-np",
            "--timeout-ms",
            "--retries",
        ],
        &[],
    )?;
    let (socket, tcp) = transport_flags(&flags)?;
    let service = Arc::new(AnalysisService::new(service_config(&flags)?));

    let (listener, addr, kind) = if let Some(path) = socket {
        let listener =
            UnixListener::bind(&path).map_err(|e| format!("cannot bind `{path}`: {e}"))?;
        (Listener::Unix(listener, path.clone()), path, "unix")
    } else {
        let addr = tcp.expect("transport_flags guarantees one of the pair");
        let listener =
            TcpListener::bind(&addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
        let actual = listener
            .local_addr()
            .map_err(|e| e.to_string())?
            .to_string();
        (Listener::Tcp(listener), actual, "tcp")
    };

    // Readiness line, flushed before the first accept: parents wait on
    // this, and for `--tcp host:0` it carries the real port.
    {
        let mut stdout = std::io::stdout().lock();
        let _ = writeln!(
            stdout,
            "{{\"v\":{PROTOCOL_VERSION},\"type\":\"serving\",\"transport\":\"{kind}\",\
             \"addr\":\"{}\"}}",
            json_escape(&addr)
        );
        let _ = stdout.flush();
    }

    let shutdown = service.shutdown_token();
    match &listener {
        Listener::Unix(listener, _) => {
            listener.set_nonblocking(true).map_err(|e| e.to_string())?;
            while !shutdown.is_cancelled() {
                match listener.accept() {
                    Ok((stream, _)) => spawn_connection(Arc::clone(&service), stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        }
        Listener::Tcp(listener) => {
            listener.set_nonblocking(true).map_err(|e| e.to_string())?;
            while !shutdown.is_cancelled() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        spawn_connection(Arc::clone(&service), stream);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
        }
    }
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
    Ok(CmdOutput {
        text: format!("{}\n", service.shutdown_summary_line()),
        code: 0,
    })
}

/// Spawns the per-connection thread. Detached by design — see the
/// module docs on shutdown semantics.
fn spawn_connection<S>(service: Arc<AnalysisService>, stream: S)
where
    S: std::io::Read + std::io::Write + TryCloneStream + Send + 'static,
{
    std::thread::spawn(move || {
        let Ok(read_half) = stream.try_clone_stream() else {
            return;
        };
        let reader = BufReader::new(read_half);
        let mut writer = stream;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let reply = service.handle_line(&line);
            let done = matches!(reply, Reply::Shutdown(_));
            if writeln!(writer, "{}", reply.line()).is_err() || writer.flush().is_err() {
                break;
            }
            if done {
                break;
            }
        }
    });
}

/// `try_clone` unified across the two stream types.
trait TryCloneStream: Sized {
    fn try_clone_stream(&self) -> std::io::Result<Self>;
}

impl TryCloneStream for UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<UnixStream> {
        self.try_clone()
    }
}

impl TryCloneStream for TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<TcpStream> {
        self.try_clone()
    }
}

/// The `mpl client` command: sends one request line to a running
/// daemon and prints the one response line. Exit code 0 for served
/// answers (`program`, `pong`, `stats`, `shutdown`), 1 for `error` and
/// `rejected` responses.
pub(crate) fn cmd_client(args: &[String]) -> Result<CmdOutput, String> {
    let flags = Flags::parse(
        args,
        &[
            "--socket",
            "--tcp",
            "--op",
            "--file",
            "--name",
            "--client",
            "--min-np",
            "--max-steps",
            "--timeout-ms",
            "--retries",
        ],
        &[],
    )?;
    let (socket, tcp) = transport_flags(&flags)?;
    let op = flags.value("--op").unwrap_or("analyze");
    let request = match op {
        "ping" | "stats" | "shutdown" => format!("{{\"op\":\"{op}\"}}"),
        "analyze" => build_analyze_line(&flags)?,
        other => return Err(format!("unknown op `{other}`")),
    };

    let response = if let Some(path) = socket {
        let stream =
            UnixStream::connect(&path).map_err(|e| format!("cannot connect `{path}`: {e}"))?;
        round_trip(stream, &request)?
    } else {
        let addr = tcp.expect("transport_flags guarantees one of the pair");
        let stream =
            TcpStream::connect(&addr).map_err(|e| format!("cannot connect `{addr}`: {e}"))?;
        round_trip(stream, &request)?
    };
    let failed = response.starts_with(&format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"error\""))
        || response.starts_with(&format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"rejected\""));
    Ok(CmdOutput {
        text: format!("{response}\n"),
        code: i32::from(failed),
    })
}

/// Assembles the `analyze` request object from client flags.
fn build_analyze_line(flags: &Flags) -> Result<String, String> {
    let path = flags
        .value("--file")
        .ok_or("`--op analyze` requires `--file`")?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let mut line = format!(
        "{{\"op\":\"analyze\",\"program\":\"{}\"",
        json_escape(&source)
    );
    if let Some(name) = flags.value("--name") {
        line.push_str(&format!(",\"name\":\"{}\"", json_escape(name)));
    }
    if let Some(client) = flags.value("--client") {
        line.push_str(&format!(",\"client\":\"{}\"", json_escape(client)));
    }
    for (flag, key) in [
        ("--min-np", "min_np"),
        ("--max-steps", "max_steps"),
        ("--timeout-ms", "timeout_ms"),
        ("--retries", "retries"),
    ] {
        if let Some(raw) = flags.value(flag) {
            let n: i64 = raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for `{flag}`"))?;
            line.push_str(&format!(",\"{key}\":{n}"));
        }
    }
    line.push('}');
    Ok(line)
}

/// Writes one request line and reads one response line.
fn round_trip<S: std::io::Read + std::io::Write + TryCloneStream>(
    mut stream: S,
    request: &str,
) -> Result<String, String> {
    let read_half = stream.try_clone_stream().map_err(|e| e.to_string())?;
    writeln!(stream, "{request}").map_err(|e| format!("send failed: {e}"))?;
    stream.flush().map_err(|e| format!("send failed: {e}"))?;
    let mut reader = BufReader::new(read_half);
    let mut response = String::new();
    let n = reader
        .read_line(&mut response)
        .map_err(|e| format!("receive failed: {e}"))?;
    if n == 0 {
        return Err("server closed the connection without replying".to_owned());
    }
    Ok(response.trim_end_matches('\n').to_owned())
}
