//! The `mpl` binary: thin wrapper over [`mpl_cli::run_command`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `analyze-corpus`, `serve`, and `client` take no file argument;
    // every other command names a program file in args[1].
    let no_file = args
        .first()
        .is_some_and(|c| matches!(c.as_str(), "analyze-corpus" | "serve" | "client"));
    let source = if no_file {
        String::new()
    } else {
        let Some(path) = args.get(1) else {
            eprintln!("{}", mpl_cli::usage());
            return ExitCode::from(2);
        };
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    };
    match mpl_cli::run_command(&args, &source) {
        Ok(out) => {
            print!("{}", out.text);
            ExitCode::from(u8::try_from(out.code.clamp(0, 255)).unwrap_or(2))
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
