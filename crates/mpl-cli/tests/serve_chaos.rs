//! Chaos tests for `mpl serve`: `kill -9` mid-stream with restart
//! recovery, torn journal tails, graceful drain under load, oversized
//! request lines, and slow/half-open clients. Everything the daemon
//! must survive without corrupting state or wedging.

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A spawned daemon with its readiness consumed and its scratch paths.
struct Daemon {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    sock: String,
}

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mpl-chaos-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Spawns `mpl serve --socket <dir>/mpl.sock <extra...>` and waits for
/// the readiness line.
fn spawn_daemon(dir: &std::path::Path, extra: &[&str]) -> Daemon {
    let sock = dir.join("mpl.sock");
    let _ = std::fs::remove_file(&sock);
    let sock = sock.to_str().expect("utf-8 path").to_owned();
    let mut child = Command::new(env!("CARGO_BIN_EXE_mpl"))
        .args(["serve", "--socket", &sock])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut ready = String::new();
    stdout.read_line(&mut ready).expect("readiness line");
    assert!(
        ready.starts_with("{\"v\":1,\"type\":\"serving\""),
        "{ready}"
    );
    Daemon {
        child,
        stdout,
        sock,
    }
}

/// One raw request/response round trip over a fresh connection.
fn round_trip(sock: &str, request: &str) -> String {
    let mut stream = connect(sock);
    writeln!(stream, "{request}").expect("send");
    stream.flush().expect("flush");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("receive");
    response.trim_end_matches('\n').to_owned()
}

/// Connects with a short retry loop (daemon may still be binding).
fn connect(sock: &str) -> UnixStream {
    for _ in 0..200 {
        match UnixStream::connect(sock) {
            Ok(stream) => return stream,
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    panic!("daemon never accepted on {sock}");
}

fn escape(source: &str) -> String {
    source
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn analyze_request(source: &str) -> String {
    format!(
        "{{\"op\":\"analyze\",\"client\":\"simple\",\"program\":\"{}\"}}",
        escape(source)
    )
}

/// Three distinct programs with distinct topologies.
fn programs() -> Vec<String> {
    vec![
        "x := 7;\nif id = 0 then\n  for i = 1 to np - 1 do\n    send x -> i;\n    recv y <- i;\n  end\nelse\n  recv y <- 0;\n  send x -> 0;\nend\n"
            .to_owned(),
        "a := 1;\nsend a -> id + 1;\nrecv b <- id - 1;\n".to_owned(),
        "v := 3;\nif id = 0 then\n  send v -> 1;\nelse\n  if id = 1 then\n    recv w <- 0;\n  end\nend\n"
            .to_owned(),
    ]
}

#[test]
fn kill9_midstream_then_restart_serves_byte_identical_warm_hits() {
    let dir = scratch("kill9");
    let cache_dir = dir.join("cache");
    let cache_flag = cache_dir.to_str().expect("utf-8").to_owned();
    let first = spawn_daemon(&dir, &["--cache-dir", &cache_flag]);
    let sock = first.sock.clone();

    // Phase 1: settle three analyses into the journal and record the
    // exact bytes served.
    let cold: Vec<String> = programs()
        .iter()
        .map(|p| {
            let response = round_trip(&sock, &analyze_request(p));
            assert!(response.contains("\"type\":\"program\""), "{response}");
            response
        })
        .collect();

    // Phase 2: concurrent load (repeat requests plus stats traffic)
    // racing the kill. These connections may die mid-stream — that is
    // the point — so every I/O outcome is tolerated.
    let load: Vec<_> = (0..4)
        .map(|t| {
            let sock = sock.clone();
            std::thread::spawn(move || {
                let sources = programs();
                for round in 0..50 {
                    let Ok(mut stream) = UnixStream::connect(&sock) else {
                        return;
                    };
                    let request = if round % 5 == 0 {
                        "{\"op\":\"stats\"}".to_owned()
                    } else {
                        analyze_request(&sources[(t + round) % sources.len()])
                    };
                    if writeln!(stream, "{request}").is_err() {
                        return;
                    }
                    let mut reader = BufReader::new(stream);
                    let mut response = String::new();
                    if reader.read_line(&mut response).is_err() {
                        return;
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(60));
    let mut child = first.child;
    child.kill().expect("SIGKILL the daemon"); // Child::kill is SIGKILL on unix
    let _ = child.wait();
    for worker in load {
        let _ = worker.join();
    }

    // Phase 3: restart on the same cache dir. The journal must replay
    // (tolerating whatever tail the kill left) and serve byte-identical
    // responses as warm hits.
    let second = spawn_daemon(&dir, &["--cache-dir", &cache_flag]);
    let warm: Vec<String> = programs()
        .iter()
        .map(|p| round_trip(&second.sock, &analyze_request(p)))
        .collect();
    assert_eq!(cold, warm, "restart must not change a single byte");
    let stats = round_trip(&second.sock, "{\"op\":\"stats\"}");
    let replayed = counter(&stats, "replayed");
    let hits = counter(&stats, "hits");
    assert!(
        replayed >= 3,
        "phase-1 entries must survive the kill: {stats}"
    );
    assert!(hits >= 1, "at least one warm hit after restart: {stats}");

    // The recovered bytes equal what the one-shot CLI prints today.
    let file = dir.join("prog.mpl");
    std::fs::write(&file, &programs()[0]).expect("write program");
    let oneshot = Command::new(env!("CARGO_BIN_EXE_mpl"))
        .args([
            "analyze",
            file.to_str().expect("utf-8"),
            "--json",
            "--client",
            "simple",
        ])
        .output()
        .expect("one-shot analyze");
    assert_eq!(
        warm[0],
        String::from_utf8_lossy(&oneshot.stdout).trim_end_matches('\n'),
        "daemon, journal, and one-shot CLI must agree"
    );

    shutdown_clean(second);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_is_recovered_not_fatal() {
    let dir = scratch("torn");
    let cache_dir = dir.join("cache");
    let cache_flag = cache_dir.to_str().expect("utf-8").to_owned();
    let first = spawn_daemon(&dir, &["--cache-dir", &cache_flag]);
    let expected = round_trip(&first.sock, &analyze_request(&programs()[0]));
    assert!(expected.contains("\"type\":\"program\""), "{expected}");
    let second_entry = round_trip(&first.sock, &analyze_request(&programs()[1]));
    assert!(
        second_entry.contains("\"type\":\"program\""),
        "{second_entry}"
    );
    shutdown_clean(first);

    // Tear the journal mid-record and add trailing garbage — a worse
    // tail than any real crash produces.
    let journal = cache_dir.join("cache-journal.ndjson");
    let mut data = std::fs::read(&journal).expect("journal exists");
    data.truncate(data.len() - 17);
    data.extend_from_slice(b"\xff\xfegarbage without newline");
    std::fs::write(&journal, &data).expect("tear journal");

    let daemon = spawn_daemon(&dir, &["--cache-dir", &cache_flag]);
    let warm = round_trip(&daemon.sock, &analyze_request(&programs()[0]));
    assert_eq!(warm, expected, "surviving entry replays byte-identical");
    let stats = round_trip(&daemon.sock, "{\"op\":\"stats\"}");
    assert_eq!(counter(&stats, "replayed"), 1, "{stats}");
    assert_eq!(counter(&stats, "hits"), 1, "{stats}");
    // The torn second entry recomputes to the same bytes and re-journals.
    let recomputed = round_trip(&daemon.sock, &analyze_request(&programs()[1]));
    assert_eq!(recomputed, second_entry);
    shutdown_clean(daemon);

    // After truncation + recompute, a third life replays both cleanly.
    let daemon = spawn_daemon(&dir, &["--cache-dir", &cache_flag]);
    let stats = round_trip(&daemon.sock, "{\"op\":\"stats\"}");
    assert_eq!(counter(&stats, "replayed"), 2, "{stats}");
    shutdown_clean(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_finishes_in_flight_requests_before_exit() {
    let dir = scratch("drain");
    let daemon = spawn_daemon(&dir, &["--drain-timeout-ms", "10000"]);
    let sock = daemon.sock.clone();

    // A deliberately slow request: the spin fault runs until its
    // cooperative 900 ms deadline, then renders a timed-out record.
    let slow = std::thread::spawn(move || {
        let mut stream = connect(&sock);
        let request = format!(
            "{{\"op\":\"analyze\",\"client\":\"simple\",\"timeout_ms\":900,\"program\":\"{}\"}}",
            escape("// mpl:fault=spin\nx := 1;\n")
        );
        writeln!(stream, "{request}").expect("send slow request");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("slow response");
        response
    });
    // Give the slow request time to be admitted, then drain.
    std::thread::sleep(Duration::from_millis(150));
    let bye = round_trip(&daemon.sock, "{\"op\":\"shutdown\",\"mode\":\"drain\"}");
    assert_eq!(bye, "{\"v\":1,\"type\":\"shutdown\",\"mode\":\"drain\"}");

    // The in-flight spin must complete with a full response line —
    // drain means finish, not sever.
    let response = slow.join().expect("slow client thread");
    assert!(
        response.contains("\"v\":1") && response.ends_with("}\n"),
        "in-flight request must get its complete response: {response:?}"
    );

    let mut child = daemon.child;
    let mut stdout = daemon.stdout;
    let status = child.wait().expect("daemon exits after drain");
    assert_eq!(status.code(), Some(0));
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("tail output");
    assert!(
        rest.contains("{\"v\":1,\"type\":\"drain\",\"completed\":true,\"abandoned\":0}"),
        "drain must report completion: {rest}"
    );
    assert!(rest.contains("\"type\":\"shutdown-summary\""), "{rest}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_line_gets_structured_error_and_daemon_stays_up() {
    let dir = scratch("oversize");
    let daemon = spawn_daemon(&dir, &["--max-line-bytes", "1024"]);

    let mut stream = connect(&daemon.sock);
    let huge = vec![b'x'; 8 * 1024];
    stream.write_all(&huge).expect("send oversized prefix");
    stream.write_all(b"\n").expect("newline");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("error line");
    assert!(
        response.contains("\"code\":\"line-too-long\""),
        "{response}"
    );
    assert!(response.contains("1024"), "{response}");
    // The connection is closed after the refusal (framing is lost).
    // The daemon closes with part of the oversized line unread, which
    // surfaces as either EOF or a connection reset — both are "closed".
    let mut rest = String::new();
    match reader.read_to_string(&mut rest) {
        Ok(_) => assert_eq!(rest, "", "connection must close after line-too-long"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected close error: {e}"
        ),
    }

    // ...but the daemon is unharmed: fresh connections serve normally,
    // and the refusal shows up in stats.
    let pong = round_trip(&daemon.sock, "{\"op\":\"ping\"}");
    assert_eq!(pong, "{\"v\":1,\"type\":\"pong\"}");
    let stats = round_trip(&daemon.sock, "{\"op\":\"stats\"}");
    assert_eq!(counter(&stats, "oversize"), 1, "{stats}");
    // A line of exactly the cap (1024 payload bytes) still parses.
    let exact = format!("{{\"op\":\"ping\"}}{}", " ".repeat(1024 - 13));
    assert_eq!(exact.len(), 1024);
    assert_eq!(
        round_trip(&daemon.sock, &exact),
        "{\"v\":1,\"type\":\"pong\"}"
    );

    shutdown_clean(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn slow_and_half_open_clients_do_not_wedge_shutdown() {
    let dir = scratch("halfopen");
    let daemon = spawn_daemon(&dir, &[]);

    // A half-open client: sends half a request line and stalls forever.
    let mut stalled = connect(&daemon.sock);
    stalled
        .write_all(b"{\"op\":\"anal")
        .expect("send partial line");
    stalled.flush().expect("flush");
    // A silent client: connects and never sends anything.
    let silent = connect(&daemon.sock);

    // The daemon still serves other clients around them.
    for _ in 0..3 {
        let pong = round_trip(&daemon.sock, "{\"op\":\"ping\"}");
        assert_eq!(pong, "{\"v\":1,\"type\":\"pong\"}");
    }

    // And an abort shutdown exits promptly despite the open sockets.
    let bye = round_trip(&daemon.sock, "{\"op\":\"shutdown\"}");
    assert!(bye.contains("\"mode\":\"abort\""), "{bye}");
    let mut child = daemon.child;
    let status = child.wait().expect("daemon exits");
    assert_eq!(status.code(), Some(0));
    drop(stalled);
    drop(silent);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Extracts `"name":<n>` from a stats line.
fn counter(stats: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\":");
    let rest = &stats[stats
        .find(&needle)
        .unwrap_or_else(|| panic!("{name} in {stats}"))
        + needle.len()..];
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("numeric {name} in {stats}"))
}

/// Shuts a daemon down via the protocol and asserts a clean exit.
fn shutdown_clean(daemon: Daemon) {
    let bye = round_trip(&daemon.sock, "{\"op\":\"shutdown\"}");
    assert!(bye.contains("\"type\":\"shutdown\""), "{bye}");
    let mut child = daemon.child;
    let status = child.wait().expect("daemon exits after shutdown");
    assert_eq!(status.code(), Some(0));
}
