//! End-to-end tests of the actual `mpl` binary (spawned as a process).

use std::io::Write as _;
use std::process::Command;

fn run_mpl(args: &[&str], source: &str) -> (String, String, i32) {
    let mut file = tempfile();
    file.write_all(source.as_bytes())
        .expect("write temp program");
    let path = file.path().to_owned();
    let out = Command::new(env!("CARGO_BIN_EXE_mpl"))
        .arg(args[0])
        .arg(&path)
        .args(&args[1..])
        .output()
        .expect("spawn mpl");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn tempfile() -> tempfile_shim::NamedTemp {
    tempfile_shim::NamedTemp::new()
}

/// A minimal named-temp-file helper (avoids an external dependency).
mod tempfile_shim {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct NamedTemp {
        path: PathBuf,
        file: std::fs::File,
    }

    impl NamedTemp {
        pub fn new() -> NamedTemp {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path =
                std::env::temp_dir().join(format!("mpl-cli-test-{}-{n}.mpl", std::process::id()));
            let file = std::fs::File::create(&path).expect("create temp file");
            NamedTemp { path, file }
        }

        pub fn path(&self) -> &Path {
            &self.path
        }
    }

    impl std::io::Write for NamedTemp {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::io::Write::write(&mut self.file, buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            std::io::Write::flush(&mut self.file)
        }
    }

    impl Drop for NamedTemp {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

const EXCHANGE: &str = "\
x := 7;
if id = 0 then
  for i = 1 to np - 1 do
    send x -> i;
    recv y <- i;
  end
else
  recv y <- 0;
  send x -> 0;
end
";

#[test]
fn binary_analyze_end_to_end() {
    let (stdout, stderr, code) = run_mpl(&["analyze"], EXCHANGE);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("verdict: Exact"), "{stdout}");
    assert!(stdout.contains("exchange-with-root"), "{stdout}");
}

#[test]
fn binary_run_end_to_end() {
    let (stdout, _, code) = run_mpl(&["run", "--np", "6"], EXCHANGE);
    assert_eq!(code, 0);
    assert!(stdout.contains("status: Completed"), "{stdout}");
    assert!(stdout.contains("messages delivered: 10"), "{stdout}");
}

#[test]
fn binary_check_reports_deadlock_nonzero() {
    let deadlock = "\
if id = 0 then
  recv y <- 1;
else
  if id = 1 then
    recv y <- 0;
  end
end
";
    let (stdout, _, code) = run_mpl(&["check"], deadlock);
    assert_eq!(code, 1);
    assert!(stdout.contains("deadlock"), "{stdout}");
}

#[test]
fn binary_reports_missing_file() {
    let out = Command::new(env!("CARGO_BIN_EXE_mpl"))
        .args(["analyze", "/nonexistent/path.mpl"])
        .output()
        .expect("spawn mpl");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn binary_usage_on_no_args() {
    let out = Command::new(env!("CARGO_BIN_EXE_mpl"))
        .output()
        .expect("spawn mpl");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn binary_analyze_corpus_runs_without_file() {
    let out = Command::new(env!("CARGO_BIN_EXE_mpl"))
        .args(["analyze-corpus", "--jobs", "2"])
        .output()
        .expect("spawn mpl");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("summary: programs="), "{stdout}");
    assert!(stdout.contains("fig2_exchange"), "{stdout}");
}

#[test]
fn binary_rejects_unknown_flags_with_exit_2() {
    // A bad flag must produce an error on stderr and exit code 2 —
    // distinct from 0 (clean) and 1 (findings) — not be ignored.
    let (_, stderr, code) = run_mpl(&["analyze", "--frobnicate"], EXCHANGE);
    assert_eq!(code, 2, "stderr: {stderr}");
    assert!(
        stderr.contains("unknown argument `--frobnicate`"),
        "{stderr}"
    );

    let (_, stderr, code) = run_mpl(&["analyze", "--min-np", "lots"], EXCHANGE);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("invalid value `lots` for `--min-np`"),
        "{stderr}"
    );

    let out = Command::new(env!("CARGO_BIN_EXE_mpl"))
        .args(["analyze-corpus", "--jobs", "-3"])
        .output()
        .expect("spawn mpl");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn binary_serve_end_to_end_over_unix_socket() {
    use std::io::{BufRead as _, BufReader, Read as _};
    use std::process::Stdio;

    let sock = std::env::temp_dir().join(format!("mpl-serve-{}.sock", std::process::id()));
    let sock = sock.to_str().expect("utf-8 temp path").to_owned();
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_mpl"))
        .args(["serve", "--socket", &sock, "--cache", "16"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut daemon_out = BufReader::new(daemon.stdout.take().expect("piped stdout"));

    // The daemon announces readiness before its first accept.
    let mut ready = String::new();
    daemon_out.read_line(&mut ready).expect("readiness line");
    assert!(
        ready.starts_with("{\"v\":1,\"type\":\"serving\""),
        "{ready}"
    );
    assert!(ready.contains("\"transport\":\"unix\""), "{ready}");

    let mut file = tempfile();
    file.write_all(EXCHANGE.as_bytes()).expect("write program");
    let path = file.path().to_str().expect("utf-8 temp path").to_owned();
    let client = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_mpl"))
            .args(["client", "--socket", &sock])
            .args(args)
            .output()
            .expect("spawn client");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            out.status.code().unwrap_or(-1),
        )
    };

    // Cold, then cached: byte-identical responses, and both identical
    // to what the one-shot CLI prints for the same program.
    let (cold, code) = client(&["--file", &path]);
    assert_eq!(code, 0, "{cold}");
    assert!(cold.starts_with("{\"v\":1,\"type\":\"program\""), "{cold}");
    let (warm, code) = client(&["--file", &path]);
    assert_eq!(code, 0);
    assert_eq!(cold, warm, "cached response must be byte-identical");
    let (oneshot, stderr, code) = run_mpl(&["analyze", "--json"], EXCHANGE);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert_eq!(cold, oneshot, "daemon and one-shot output must agree");

    let (stats, code) = client(&["--op", "stats"]);
    assert_eq!(code, 0);
    assert!(stats.contains("\"hits\":1"), "{stats}");
    assert!(stats.contains("\"misses\":1"), "{stats}");

    // A malformed request gets a structured error and client exit 1.
    let (err, code) = client(&["--file", &path, "--client", "quantum"]);
    assert_eq!(code, 1, "{err}");
    assert!(err.contains("\"code\":\"unknown-client\""), "{err}");

    let (bye, code) = client(&["--op", "shutdown"]);
    assert_eq!(code, 0);
    assert!(bye.contains("\"type\":\"shutdown\""), "{bye}");
    let status = daemon.wait().expect("daemon exits after shutdown");
    assert_eq!(status.code(), Some(0));
    let mut rest = String::new();
    daemon_out.read_to_string(&mut rest).expect("summary");
    assert!(rest.contains("\"type\":\"shutdown-summary\""), "{rest}");
    assert!(
        !std::path::Path::new(&sock).exists(),
        "socket file must be removed on exit"
    );
}

#[test]
fn binary_serve_flag_parsing_is_strict() {
    let serve = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_mpl"))
            .arg("serve")
            .args(args)
            .output()
            .expect("spawn mpl");
        (
            String::from_utf8_lossy(&out.stderr).into_owned(),
            out.status.code().unwrap_or(-1),
        )
    };
    // All validation happens before a socket is bound: unknown flags,
    // malformed values, and transport misuse each exit 2 immediately.
    let (stderr, code) = serve(&["--socket", "/tmp/x.sock", "--frobnicate"]);
    assert_eq!(code, 2, "{stderr}");
    assert!(
        stderr.contains("unknown argument `--frobnicate`"),
        "{stderr}"
    );

    let (stderr, code) = serve(&[]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("one of `--socket PATH` or `--tcp ADDR`"),
        "{stderr}"
    );

    let (stderr, code) = serve(&["--socket", "/tmp/a.sock", "--tcp", "127.0.0.1:0"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");

    let (stderr, code) = serve(&["--socket", "/tmp/a.sock", "--cache", "lots"]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("invalid value `lots` for `--cache`"),
        "{stderr}"
    );

    let (stderr, code) = serve(&["--tcp", "127.0.0.1:0", "--max-in-flight", "0"]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("invalid value `0` for `--max-in-flight`"),
        "{stderr}"
    );
}

#[test]
fn shipped_sample_programs_work() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/programs");
    let run_on = |cmd: &str, file: &str, extra: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_mpl"))
            .arg(cmd)
            .arg(format!("{root}/{file}"))
            .args(extra)
            .output()
            .expect("spawn mpl");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            out.status.code().unwrap_or(-1),
        )
    };
    let (out, code) = run_on("analyze", "exchange.mpl", &[]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("exchange-with-root"));

    let (out, code) = run_on("analyze", "transpose.mpl", &[]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("partner-exchange"));

    let (out, code) = run_on("analyze", "shift.mpl", &[]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("shift(+1)"));

    let (_, code) = run_on("check", "leak.mpl", &[]);
    assert_eq!(code, 1, "leak must be flagged");

    let (out, code) = run_on("flow", "secret.mpl", &["--source", "secret"]);
    assert_eq!(code, 0, "{out}");
    assert_eq!(out.matches("possible leak").count(), 1, "{out}");

    let (out, code) = run_on(
        "run",
        "transpose.mpl",
        &["--np", "9", "--set", "nrows=3", "--set", "ncols=3"],
    );
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("status: Completed"));
}
