//! The program corpus: every code sample analyzed in the CGO'09 paper plus
//! additional classic message-passing patterns used by tests and benchmarks.
//!
//! Each program is authored as MPL source text (exercising the parser) and
//! tagged with the communication pattern the paper's analysis is expected
//! to find — or with the expected *failure* mode for programs that
//! deliberately exceed the blocking-send framework of the paper (§X).

use crate::ast::Program;
use crate::parser::parse_program;

/// The communication-pattern ground truth for a corpus program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternHint {
    /// Root sends one message to every other process (Fig 1 first phase, §IX).
    Broadcast,
    /// Every non-root process sends one message to the root.
    Gather,
    /// Root exchanges a message with every other process (Fig 1/5).
    ExchangeWithRoot,
    /// Matrix-transpose partner exchange on a cartesian grid (Fig 6).
    Transpose,
    /// Nearest-neighbor shift along one mesh dimension (Fig 7/8).
    Shift,
    /// Ring with wrap-around.
    Ring,
    /// Two fixed processes exchange a value (Fig 2).
    PairExchange,
    /// The analysis is expected to give up (⊤): the pattern is real but
    /// exceeds the blocking-deterministic framework or the client
    /// abstraction (documented limitations, paper §VI/§X).
    ExpectTop,
    /// The program deadlocks at runtime under the paper's execution model.
    Deadlock,
    /// The program leaks a message (sent but never received).
    MessageLeak,
}

/// A corpus entry: named, documented, pre-parsed program.
#[derive(Debug, Clone)]
pub struct CorpusProgram {
    /// Short unique name (used by benches and table generators).
    pub name: &'static str,
    /// Which paper artifact this reproduces, if any.
    pub paper_ref: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// MPL source text.
    pub source: String,
    /// Parsed program.
    pub program: Program,
    /// Ground-truth pattern.
    pub hint: PatternHint,
    /// Smallest process count the program is meaningful for.
    pub min_procs: u64,
}

fn entry(
    name: &'static str,
    paper_ref: &'static str,
    description: &'static str,
    hint: PatternHint,
    min_procs: u64,
    source: String,
) -> CorpusProgram {
    let program = parse_program(&source)
        .unwrap_or_else(|e| panic!("corpus program `{name}` failed to parse: {e}\n{source}"));
    CorpusProgram {
        name,
        paper_ref,
        description,
        source,
        program,
        hint,
        min_procs,
    }
}

/// Figure 2: processes 0 and 1 exchange a value initialized to 5 by
/// process 0; both print 5.
#[must_use]
pub fn fig2_exchange() -> CorpusProgram {
    entry(
        "fig2_exchange",
        "Fig 2",
        "ranks 0 and 1 exchange a constant; constant propagation proves both print 5",
        PatternHint::PairExchange,
        2,
        "\
if id = 0 then
  x := 5;
  send x -> 1;
  recv y <- 1;
  print y;
else
  if id = 1 then
    recv y <- 0;
    send y -> 0;
    print y;
  end
end
"
        .to_owned(),
    )
}

/// Figure 1 / Figure 5 (second phase): the mdcask exchange-with-root
/// pattern. Root sends to and receives from each other rank in turn.
#[must_use]
pub fn exchange_with_root() -> CorpusProgram {
    entry(
        "exchange_with_root",
        "Fig 1, Fig 5",
        "mdcask exchange-with-root: root sends to and receives from every rank",
        PatternHint::ExchangeWithRoot,
        2,
        "\
x := 7;
if id = 0 then
  for i = 1 to np - 1 do
    send x -> i;
    recv y <- i;
  end
else
  recv y <- 0;
  send x -> 0;
end
"
        .to_owned(),
    )
}

/// The fan-out broadcast analyzed in §IX: root sends one message to every
/// other rank.
#[must_use]
pub fn fanout_broadcast() -> CorpusProgram {
    entry(
        "fanout_broadcast",
        "§IX",
        "fan-out broadcast: root sends one message to every other rank",
        PatternHint::Broadcast,
        2,
        "\
x := 42;
if id = 0 then
  for i = 1 to np - 1 do
    send x -> i;
  end
else
  recv y <- 0;
end
"
        .to_owned(),
    )
}

/// Gather-to-root (Fig 1 first phase): every non-root rank sends one
/// message to rank 0.
#[must_use]
pub fn gather_to_root() -> CorpusProgram {
    entry(
        "gather_to_root",
        "Fig 1",
        "gather: every non-root rank sends one message to root",
        PatternHint::Gather,
        2,
        "\
x := id;
if id = 0 then
  for i = 1 to np - 1 do
    recv y <- i;
  end
else
  send x -> 0;
end
"
        .to_owned(),
    )
}

/// The full mdcask sample of Figure 1: a broadcast phase followed by an
/// exchange-with-root phase.
#[must_use]
pub fn mdcask_full() -> CorpusProgram {
    entry(
        "mdcask_full",
        "Fig 1",
        "full mdcask sample: broadcast phase then exchange-with-root phase",
        PatternHint::ExchangeWithRoot,
        2,
        "\
x := 3;
if id = 0 then
  for i = 1 to np - 1 do
    send x -> i;
  end
  for j = 1 to np - 1 do
    send x -> j;
    recv y <- j;
  end
else
  recv b <- 0;
  recv y <- 0;
  send x -> 0;
end
"
        .to_owned(),
    )
}

/// How grid dimensions are provided to the NAS-CG transpose programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridDims {
    /// `nrows`/`ncols` stay symbolic, constrained only by `assume`
    /// facts — the interesting case for the HSM analysis (§VIII).
    Symbolic,
    /// Concrete dimensions baked in as literal assignments, so the
    /// program can also be run on the simulator.
    Concrete { nrows: i64, ncols: i64 },
}

fn grid_prologue(dims: GridDims, shape: Option<bool>) -> String {
    // `shape`: Some(false) = square grid, Some(true) = 1:2 rectangular,
    // None = no shape constraint.
    let shape_fact = match shape {
        Some(true) => "assume ncols = 2 * nrows;\n",
        Some(false) => "assume ncols = nrows;\n",
        None => "",
    };
    match dims {
        GridDims::Symbolic => format!("assume np = nrows * ncols;\n{shape_fact}"),
        GridDims::Concrete { nrows, ncols } => format!(
            "nrows := {nrows};\nncols := {ncols};\nassume np = nrows * ncols;\n{shape_fact}"
        ),
    }
}

/// Figure 6, square branch: the NAS-CG transpose exchange on an
/// `nrows x nrows` grid. Every process swaps a value with its transpose
/// partner `(id % nrows) * nrows + id / nrows`.
#[must_use]
pub fn nas_cg_transpose_square(dims: GridDims) -> CorpusProgram {
    let src = format!(
        "{}\
x := id;
send x -> (id % nrows) * nrows + id / nrows;
recv y <- (id % nrows) * nrows + id / nrows;
",
        grid_prologue(dims, Some(false))
    );
    entry(
        "nas_cg_transpose_square",
        "Fig 6 (ncols = nrows)",
        "NAS-CG transpose on a square process grid, matched via HSMs",
        PatternHint::Transpose,
        1,
        src,
    )
}

/// Figure 6, rectangular branch: the NAS-CG transpose exchange on an
/// `nrows x 2*nrows` grid. The partner map
/// `2*nrows*((id/2) % nrows) + 2*(id/(2*nrows)) + id % 2`
/// is an involution on `[0..np-1]` (the paper's OCR garbles the exact
/// expression; this is the involution whose image HSM is the paper's
/// `[[[0:2,1] : nrows, 2*nrows] : nrows, 2]`).
#[must_use]
pub fn nas_cg_transpose_rect(dims: GridDims) -> CorpusProgram {
    let src = format!(
        "{}\
x := id;
send x -> 2 * nrows * ((id / 2) % nrows) + 2 * (id / (2 * nrows)) + id % 2;
recv y <- 2 * nrows * ((id / 2) % nrows) + 2 * (id / (2 * nrows)) + id % 2;
",
        grid_prologue(dims, Some(true))
    );
    entry(
        "nas_cg_transpose_rect",
        "Fig 6 (ncols = 2*nrows)",
        "NAS-CG transpose on a 1:2 rectangular process grid, matched via HSMs",
        PatternHint::Transpose,
        2,
        src,
    )
}

/// Figure 7: the 1-d nearest-neighbor shift. Interior ranks receive from
/// the left and send to the right; the edges only send or only receive.
#[must_use]
pub fn nearest_neighbor_shift() -> CorpusProgram {
    entry(
        "nearest_neighbor_shift",
        "Fig 7/8",
        "1-d nearest-neighbor shift: send right, receive from left; open ends",
        PatternHint::Shift,
        2,
        "\
x := id;
if id = 0 then
  send x -> id + 1;
else
  if id = np - 1 then
    recv y <- id - 1;
  else
    recv y <- id - 1;
    send x -> id + 1;
  end
end
"
        .to_owned(),
    )
}

/// Mirror of Figure 7: send left, receive from the right.
#[must_use]
pub fn left_shift() -> CorpusProgram {
    entry(
        "left_shift",
        "§VIII-C (mirror)",
        "1-d shift in the opposite direction: send left, receive from right",
        PatternHint::Shift,
        2,
        "\
x := id;
if id = np - 1 then
  send x -> id - 1;
else
  if id = 0 then
    recv y <- id + 1;
  else
    recv y <- id + 1;
    send x -> id - 1;
  end
end
"
        .to_owned(),
    )
}

/// A vertical (inter-row) shift on a 2-d grid laid out row-major:
/// the `n = 2` case of §VIII-C restricted to one dimension. Rows are
/// contiguous rank ranges, so the simple §VII client can analyze it with
/// the symbolic offset `ncols`.
#[must_use]
pub fn stencil_2d_vertical(dims: GridDims) -> CorpusProgram {
    let src = format!(
        "{}\
x := id;
if id < np - ncols then
  send x -> id + ncols;
end
if id >= ncols then
  recv y <- id - ncols;
end
",
        grid_prologue(dims, None)
    );
    entry(
        "stencil_2d_vertical",
        "§VIII-C (2-d, one dimension)",
        "row-major 2-d grid, downward shift: send to id+ncols, receive from id-ncols",
        PatternHint::Shift,
        2,
        src,
    )
}

/// A ring shift written with explicit wrap-around conditionals, so each
/// branch uses a simple partner expression and process sets stay
/// contiguous.
#[must_use]
pub fn ring_conditional() -> CorpusProgram {
    entry(
        "ring_conditional",
        "extension",
        "ring with explicit wrap-around branches (send right, receive left)",
        PatternHint::Ring,
        2,
        "\
x := id;
if id < np - 1 then
  send x -> id + 1;
else
  send x -> 0;
end
if id > 0 then
  recv y <- id - 1;
else
  recv y <- np - 1;
end
"
        .to_owned(),
    )
}

/// A ring shift written with modular arithmetic. Runs fine under the
/// buffered-send execution model, but the blocking-send static framework
/// must give up (all process sets block on `send` simultaneously), and the
/// wrapped sequence is not expressible as a single HSM — the paper's §X
/// limitation.
#[must_use]
pub fn ring_uniform() -> CorpusProgram {
    entry(
        "ring_uniform",
        "§X limitation",
        "uniform modular ring: statically ⊤ under blocking sends, runs fine buffered",
        PatternHint::ExpectTop,
        2,
        "\
x := id;
send x -> (id + 1) % np;
recv y <- (id + np - 1) % np;
"
        .to_owned(),
    )
}

/// Even/odd partner exchange. The partner map is simple but the required
/// process-set split (`id % 2 = 0`) is not a contiguous range, exceeding
/// the §VII/§VIII process-set abstraction — the analysis must return ⊤
/// rather than guess.
#[must_use]
pub fn pairwise_exchange() -> CorpusProgram {
    entry(
        "pairwise_exchange",
        "client limitation",
        "odd/even partner exchange: needs non-contiguous process sets, expect ⊤",
        PatternHint::ExpectTop,
        2,
        "\
x := id;
if id % 2 = 0 then
  send x -> id + 1;
  recv y <- id + 1;
else
  recv y <- id - 1;
  send x -> id - 1;
end
"
        .to_owned(),
    )
}

/// Head-to-head receives: both ranks wait for the other first. Deadlocks
/// under any send semantics; the static analysis reports that no match is
/// possible.
#[must_use]
pub fn deadlock_pair() -> CorpusProgram {
    entry(
        "deadlock_pair",
        "§I error detection",
        "ranks 0 and 1 both receive before sending: guaranteed deadlock",
        PatternHint::Deadlock,
        2,
        "\
if id = 0 then
  recv y <- 1;
  send y -> 1;
else
  if id = 1 then
    recv y <- 0;
    send y -> 0;
  end
end
"
        .to_owned(),
    )
}

/// A message leak: rank 0 sends to rank 1, which never receives.
#[must_use]
pub fn message_leak() -> CorpusProgram {
    entry(
        "message_leak",
        "§I error detection",
        "rank 0 sends a message nobody receives: message leak diagnostic",
        PatternHint::MessageLeak,
        2,
        "\
if id = 0 then
  x := 9;
  send x -> 1;
end
print id;
"
        .to_owned(),
    )
}

/// A three-rank constant relay 0 → 1 → 2; constant propagation should
/// prove all three prints output 11.
#[must_use]
pub fn const_relay() -> CorpusProgram {
    entry(
        "const_relay",
        "extension of Fig 2",
        "constant relayed 0→1→2; const-prop proves every print outputs 11",
        PatternHint::PairExchange,
        3,
        "\
if id = 0 then
  x := 11;
  send x -> 1;
  print x;
else
  if id = 1 then
    recv x <- 0;
    send x -> 2;
    print x;
  else
    if id = 2 then
      recv x <- 1;
      print x;
    end
  end
end
"
        .to_owned(),
    )
}

/// A scatter where the root sends a *different* value to each rank
/// (value depends on the loop index), exercising dataflow through the
/// matched loop sends.
#[must_use]
pub fn scatter_indexed() -> CorpusProgram {
    entry(
        "scatter_indexed",
        "extension of §IX",
        "indexed scatter: root sends i*10 to rank i",
        PatternHint::Broadcast,
        2,
        "\
if id = 0 then
  for i = 1 to np - 1 do
    v := i * 10;
    send v -> i;
  end
else
  recv y <- 0;
end
"
        .to_owned(),
    )
}

/// The full 2-d five-point stencil halo exchange (SVIII-C with `n = 2`):
/// four shift phases (down, up, right, left) on a row-major grid. Rows
/// are contiguous rank ranges; the horizontal phases split on the
/// column position `id % ncols`, which needs concrete dimensions.
#[must_use]
pub fn stencil_2d_full(dims: GridDims) -> CorpusProgram {
    let src = format!(
        "{}x := id;\nif id < np - ncols then\n  send x -> id + ncols;\nend\nif id >= ncols then\n  recv up <- id - ncols;\nend\nif id >= ncols then\n  send x -> id - ncols;\nend\nif id < np - ncols then\n  recv down <- id + ncols;\nend\ncol := id % ncols;\nif col < ncols - 1 then\n  send x -> id + 1;\nend\nif col > 0 then\n  recv left <- id - 1;\nend\nif col > 0 then\n  send x -> id - 1;\nend\nif col < ncols - 1 then\n  recv right <- id + 1;\nend\n",
        grid_prologue(dims, None)
    );
    entry(
        "stencil_2d_full",
        "SVIII-C (n = 2)",
        "five-point 2-d halo exchange; the horizontal phases split on id % ncols, \
which is not a contiguous range, so the analysis answers \u{22a4} honestly",
        PatternHint::ExpectTop,
        4,
        src,
    )
}

/// A binomial-tree (recursive-doubling) broadcast: in round `k` every
/// rank below `k` forwards to rank `id + k`. Runs in O(log np) message
/// hops — the collective implementation the paper's Fig 1 motivation
/// would substitute for the linear fan-out. The paper's §X lists
/// tree-shaped patterns as *future work* for the static framework, so
/// the analysis is expected to return ⊤ (the doubling `k := k + k`
/// leaves the difference-bound fragment); the simulator provides the
/// ground truth.
#[must_use]
pub fn tree_broadcast() -> CorpusProgram {
    entry(
        "tree_broadcast",
        "§X (tree patterns, future work)",
        "binomial-tree broadcast: O(log np) critical path; statically ⊤ per §X",
        PatternHint::ExpectTop,
        2,
        "\
if id = 0 then
  x := 42;
end
k := 1;
while k < np do
  if id < k then
    if id + k < np then
      send x -> id + k;
    end
  else
    if id < k + k then
      recv x <- id - k;
    end
  end
  k := k + k;
end
print x;
"
        .to_owned(),
    )
}

/// A linear pipeline: rank 0 injects a value, every interior rank
/// receives from the left, transforms (doubles) and forwards right, and
/// the last rank only consumes. Structurally a right shift, so the §VII
/// client analyzes it exactly for unbounded `np`; the transformed values
/// themselves are rank-dependent and stay unknown to constant
/// propagation.
#[must_use]
pub fn pipeline_double() -> CorpusProgram {
    entry(
        "pipeline_double",
        "extension (Fig 7 family)",
        "linear transform pipeline: exact shift topology, data-dependent values",
        PatternHint::Shift,
        2,
        "\
if id = 0 then
  acc := 1;
  send acc -> id + 1;
else
  if id = np - 1 then
    recv acc <- id - 1;
  else
    recv acc <- id - 1;
    acc := acc * 2;
    send acc -> id + 1;
  end
end
print acc;
"
        .to_owned(),
    )
}

/// The exchange-with-root pattern padded with `extra_vars` chained local
/// variables per process. The paper's §IX prototype tracked 52–66
/// variables per constraint graph on its fan-out broadcast; this builder
/// recreates that regime so the closure-cost profile (E6) and the
/// full-reclosure ablation (E8) are measured at comparable graph sizes.
#[must_use]
pub fn exchange_with_root_wide(extra_vars: usize) -> CorpusProgram {
    let mut pad = String::from("w0 := 1;\n");
    for k in 1..extra_vars {
        pad.push_str(&format!("w{k} := w{} + 1;\n", k - 1));
    }
    let src = format!(
        "{pad}x := 7;\n\
         if id = 0 then\n  for i = 1 to np - 1 do\n    send x -> i;\n    recv y <- i;\n  end\n\
         else\n  recv y <- 0;\n  send x -> 0;\nend\n"
    );
    entry(
        "exchange_with_root_wide",
        "§IX (variable-count regime)",
        "exchange-with-root padded with chained locals to reach the paper's 52-66 variable regime",
        PatternHint::ExchangeWithRoot,
        2,
        src,
    )
}

/// `k` back-to-back exchange phases between ranks 0 and 1 — a
/// program-size scaling knob for the analysis benchmarks (the pCFG walk
/// grows linearly with the number of communication phases).
#[must_use]
pub fn repeated_exchanges(k: usize) -> CorpusProgram {
    let mut body0 = String::new();
    let mut body1 = String::new();
    for i in 0..k {
        body0.push_str(&format!("  send {i} -> 1;\n  recv y <- 1;\n"));
        body1.push_str("  recv y <- 0;\n  send y -> 0;\n");
    }
    let src = format!("if id = 0 then\n{body0}else\n  if id = 1 then\n{body1}  end\nend\n");
    entry(
        "repeated_exchanges",
        "scaling knob",
        "k sequential pair exchanges: program-size scaling for the benches",
        PatternHint::PairExchange,
        2,
        src,
    )
}

/// Returns the full corpus, in a stable order.
#[must_use]
pub fn all() -> Vec<CorpusProgram> {
    vec![
        fig2_exchange(),
        exchange_with_root(),
        fanout_broadcast(),
        gather_to_root(),
        mdcask_full(),
        nas_cg_transpose_square(GridDims::Symbolic),
        nas_cg_transpose_rect(GridDims::Symbolic),
        nearest_neighbor_shift(),
        left_shift(),
        stencil_2d_vertical(GridDims::Symbolic),
        ring_conditional(),
        ring_uniform(),
        pairwise_exchange(),
        deadlock_pair(),
        message_leak(),
        const_relay(),
        scatter_indexed(),
        tree_broadcast(),
        pipeline_double(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_corpus_programs_parse() {
        let programs = all();
        assert!(programs.len() >= 15);
        for p in &programs {
            assert!(!p.program.is_empty(), "{} is empty", p.name);
            assert!(!p.description.is_empty());
        }
    }

    #[test]
    fn corpus_names_are_unique() {
        let programs = all();
        let mut names: Vec<_> = programs.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), programs.len());
    }

    #[test]
    fn concrete_grid_programs_parse() {
        for rect in [false, true] {
            let dims = GridDims::Concrete {
                nrows: 2,
                ncols: if rect { 4 } else { 2 },
            };
            let p = if rect {
                nas_cg_transpose_rect(dims)
            } else {
                nas_cg_transpose_square(dims)
            };
            assert!(p.source.contains("nrows := 2;"));
        }
        let p = stencil_2d_vertical(GridDims::Concrete { nrows: 3, ncols: 3 });
        assert!(p.source.contains("ncols := 3;"));
    }

    #[test]
    fn rect_transpose_partner_map_is_involution() {
        // Sanity-check the expression we substituted for the paper's
        // garbled rectangular formula, for several grid sizes.
        for nrows in 1..=6i64 {
            let np = 2 * nrows * nrows;
            for rank in 0..np {
                let f = |p: i64| 2 * nrows * ((p / 2) % nrows) + 2 * (p / (2 * nrows)) + p % 2;
                let partner = f(rank);
                assert!((0..np).contains(&partner));
                assert_eq!(
                    f(partner),
                    rank,
                    "not an involution at rank {rank}, nrows {nrows}"
                );
            }
        }
    }

    #[test]
    fn square_transpose_partner_map_is_involution() {
        for nrows in 1..=8i64 {
            let np = nrows * nrows;
            for rank in 0..np {
                let f = |p: i64| (p % nrows) * nrows + p / nrows;
                assert_eq!(f(f(rank)), rank);
            }
        }
    }

    #[test]
    fn display_of_corpus_round_trips() {
        for p in all() {
            let printed = p.program.to_string();
            let reparsed =
                crate::parse_program(&printed).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            // Spans differ between the two sources; compare printed forms.
            assert_eq!(printed, reparsed.to_string(), "{}", p.name);
        }
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn tree_broadcast_and_pipeline_parse() {
        assert!(tree_broadcast().program.len() > 5);
        assert!(pipeline_double().program.len() > 5);
        assert!(exchange_with_root_wide(10).source.matches(":=").count() >= 11);
    }
}
