//! # mpl-lang — the Message Passing Language (MPL) front end
//!
//! MPL is a small imperative language with explicit message passing,
//! designed to express exactly the execution model of Bronevetsky's
//! *Communication-Sensitive Static Dataflow for Parallel Message Passing
//! Applications* (CGO 2009):
//!
//! * an SPMD program executed by processes `0..np-1`,
//! * integer variables plus the two special read-only variables `id`
//!   (this process' rank) and `np` (the number of processes),
//! * `send <value> -> <dest>` / `recv <var> <- <src>` where the partner
//!   rank is an arbitrary integer expression (no wildcard receives),
//! * structured control flow (`if`/`while`/`for`).
//!
//! The crate provides a lexer, a recursive-descent parser with spanned
//! error reporting, the AST, and [`corpus`] — programmatic builders for
//! every program analyzed in the paper (Figures 1, 2, 5, 6, 7 and the
//! fan-out broadcast of §IX) plus additional classic communication
//! patterns used by the test suite and benchmarks.
//!
//! ```
//! use mpl_lang::parse_program;
//!
//! let program = parse_program(
//!     "if id = 0 then send 5 -> 1; else if id = 1 then recv x <- 0; end end",
//! )?;
//! assert_eq!(program.stmts.len(), 1);
//! # Ok::<(), mpl_lang::ParseError>(())
//! ```

pub mod ast;
pub mod corpus;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{BinOp, Expr, Program, Stmt, UnOp};
pub use lexer::LexError;
pub use parser::{parse_program, ParseError};
pub use token::{Span, Token, TokenKind};
