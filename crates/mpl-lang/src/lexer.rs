//! A hand-written lexer for MPL.

use std::error::Error;
use std::fmt;

use crate::token::{Span, Token, TokenKind};

/// An error produced while tokenizing MPL source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Where the offending character sits.
    pub span: Span,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn here(&self) -> Span {
        Span {
            start: self.pos,
            end: self.pos,
            line: self.line,
            col: self.col,
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                // Line comments: `//` to end of line.
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia();
        let mut span = self.here();
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                span,
            });
        };

        let kind = match c {
            b'0'..=b'9' => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
                let value: i64 = text.parse().map_err(|_| LexError {
                    span,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                TokenKind::Int(value)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                ) {
                    self.bump();
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
                keyword_or_ident(text)
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Assign
                } else {
                    return Err(LexError {
                        span,
                        message: "expected `:=`".into(),
                    });
                }
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                self.bump();
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    TokenKind::Minus
                }
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'%' => {
                self.bump();
                TokenKind::Percent
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ne
                } else {
                    return Err(LexError {
                        span,
                        message: "expected `!=`".into(),
                    });
                }
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::Le
                    }
                    Some(b'-') => {
                        self.bump();
                        TokenKind::BackArrow
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            other => {
                return Err(LexError {
                    span,
                    message: format!("unexpected character `{}`", other as char),
                })
            }
        };

        span.end = self.pos;
        Ok(Token { kind, span })
    }
}

fn keyword_or_ident(text: &str) -> TokenKind {
    match text {
        "if" => TokenKind::If,
        "then" => TokenKind::Then,
        "else" => TokenKind::Else,
        "end" => TokenKind::End,
        "while" => TokenKind::While,
        "do" => TokenKind::Do,
        "for" => TokenKind::For,
        "to" => TokenKind::To,
        "send" => TokenKind::Send,
        "recv" | "receive" => TokenKind::Recv,
        "print" => TokenKind::Print,
        "assume" | "assert" => TokenKind::Assume,
        "skip" => TokenKind::Skip,
        "id" | "me" => TokenKind::Id,
        "np" => TokenKind::Np,
        "and" => TokenKind::And,
        "or" => TokenKind::Or,
        "not" => TokenKind::Not,
        "true" => TokenKind::True,
        "false" => TokenKind::False,
        _ => TokenKind::Ident(text.to_owned()),
    }
}

/// Tokenizes `src` into a vector of tokens ending with [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`LexError`] on the first unrecognized character or malformed
/// literal.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    loop {
        let token = lexer.next_token()?;
        let done = token.kind == TokenKind::Eof;
        out.push(token);
        if done {
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_send_statement() {
        assert_eq!(
            kinds("send x -> id+1;"),
            vec![
                TokenKind::Send,
                TokenKind::Ident("x".into()),
                TokenKind::Arrow,
                TokenKind::Id,
                TokenKind::Plus,
                TokenKind::Int(1),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_recv_statement() {
        assert_eq!(
            kinds("recv y <- 0;"),
            vec![
                TokenKind::Recv,
                TokenKind::Ident("y".into()),
                TokenKind::BackArrow,
                TokenKind::Int(0),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn distinguishes_lt_le_backarrow() {
        assert_eq!(
            kinds("< <= <-")[..3],
            [TokenKind::Lt, TokenKind::Le, TokenKind::BackArrow]
        );
    }

    #[test]
    fn distinguishes_minus_and_arrow() {
        assert_eq!(kinds("- ->")[..2], [TokenKind::Minus, TokenKind::Arrow]);
    }

    #[test]
    fn keywords_and_aliases() {
        assert_eq!(kinds("receive")[0], TokenKind::Recv);
        assert_eq!(kinds("me")[0], TokenKind::Id);
        assert_eq!(kinds("assert")[0], TokenKind::Assume);
        assert_eq!(kinds("idx")[0], TokenKind::Ident("idx".into()));
        assert_eq!(kinds("nprocs")[0], TokenKind::Ident("nprocs".into()));
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let toks = kinds("x := 1; // trailing comment\n  y := 2;");
        assert_eq!(toks.len(), 9); // 2 statements * 4 tokens + eof
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = tokenize("x := 1;\ny := 2;").unwrap();
        let y = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("y".into()))
            .unwrap();
        assert_eq!(y.span.line, 2);
        assert_eq!(y.span.col, 1);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = tokenize("x := #;").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn rejects_lone_colon() {
        let err = tokenize("x : 1").unwrap_err();
        assert!(err.message.contains(":="));
    }

    #[test]
    fn rejects_huge_integer() {
        let err = tokenize("x := 99999999999999999999;").unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn empty_input_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   // only a comment"), vec![TokenKind::Eof]);
    }
}
