//! Tokens and source spans.

use std::fmt;

/// A half-open byte range into the source text, with 1-based line/column
/// of its start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering both `self` and `other`.
    #[must_use]
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: if self.start <= other.start {
                self.line
            } else {
                other.line
            },
            col: if self.start <= other.start {
                self.col
            } else {
                other.col
            },
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Integer literal (non-negative; unary minus is a separate token).
    Int(i64),
    /// Identifier (variable name).
    Ident(String),

    // Keywords.
    If,
    Then,
    Else,
    End,
    While,
    Do,
    For,
    To,
    Send,
    Recv,
    Print,
    Assume,
    Skip,
    /// The special variable `id` (process rank).
    Id,
    /// The special variable `np` (number of processes).
    Np,
    True,
    False,

    // Punctuation and operators.
    Assign,    // :=
    Semi,      // ;
    LParen,    // (
    RParen,    // )
    Arrow,     // ->
    BackArrow, // <-
    Plus,      // +
    Minus,     // -
    Star,      // *
    Slash,     // /
    Percent,   // %
    Eq,        // =
    Ne,        // !=
    Lt,        // <
    Le,        // <=
    Gt,        // >
    Ge,        // >=
    And,       // and
    Or,        // or
    Not,       // not

    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable name used in parse errors.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::If => "`if`".into(),
            TokenKind::Then => "`then`".into(),
            TokenKind::Else => "`else`".into(),
            TokenKind::End => "`end`".into(),
            TokenKind::While => "`while`".into(),
            TokenKind::Do => "`do`".into(),
            TokenKind::For => "`for`".into(),
            TokenKind::To => "`to`".into(),
            TokenKind::Send => "`send`".into(),
            TokenKind::Recv => "`recv`".into(),
            TokenKind::Print => "`print`".into(),
            TokenKind::Assume => "`assume`".into(),
            TokenKind::Skip => "`skip`".into(),
            TokenKind::Id => "`id`".into(),
            TokenKind::Np => "`np`".into(),
            TokenKind::True => "`true`".into(),
            TokenKind::False => "`false`".into(),
            TokenKind::Assign => "`:=`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::BackArrow => "`<-`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::And => "`and`".into(),
            TokenKind::Or => "`or`".into(),
            TokenKind::Not => "`not`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A lexical token: a [`TokenKind`] plus its [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span {
            start: 0,
            end: 3,
            line: 1,
            col: 1,
        };
        let b = Span {
            start: 10,
            end: 12,
            line: 2,
            col: 4,
        };
        let m = a.merge(b);
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 12);
        assert_eq!(m.line, 1);
        let m2 = b.merge(a);
        assert_eq!(m2, m);
    }

    #[test]
    fn describe_is_nonempty() {
        for kind in [
            TokenKind::Int(3),
            TokenKind::Ident("x".into()),
            TokenKind::Arrow,
            TokenKind::Eof,
        ] {
            assert!(!kind.describe().is_empty());
        }
    }
}
