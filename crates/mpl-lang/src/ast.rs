//! Abstract syntax tree for MPL.

use std::fmt;

use crate::token::Span;

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Integer division truncating toward negative infinity (Euclidean-style
    /// flooring for non-negative operands; MPL programs divide non-negative
    /// ranks, matching the paper's examples).
    Div,
    /// Remainder consistent with [`BinOp::Div`].
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// True for operators producing a boolean (comparison / logical).
    #[must_use]
    pub fn is_boolean(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        };
        f.write_str(s)
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => f.write_str("-"),
            UnOp::Not => f.write_str("not "),
        }
    }
}

/// An MPL expression. Expressions are pure: they read variables and the
/// special `id`/`np` registers but have no side effects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Boolean literal (`true`/`false`), represented as 1/0 at runtime.
    Bool(bool),
    /// A program variable.
    Var(String),
    /// The current process rank, in `0..np`.
    Id,
    /// The total number of processes.
    Np,
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    #[must_use]
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a variable reference.
    #[must_use]
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// True if the expression syntactically mentions `id`.
    #[must_use]
    pub fn mentions_id(&self) -> bool {
        match self {
            Expr::Id => true,
            Expr::Int(_) | Expr::Bool(_) | Expr::Var(_) | Expr::Np => false,
            Expr::Binary(_, l, r) => l.mentions_id() || r.mentions_id(),
            Expr::Unary(_, e) => e.mentions_id(),
        }
    }

    /// All variable names mentioned (excluding `id`/`np`), in first-use order.
    #[must_use]
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Var(name) => {
                if !out.contains(&name.as_str()) {
                    out.push(name);
                }
            }
            Expr::Binary(_, l, r) => {
                l.collect_variables(out);
                r.collect_variables(out);
            }
            Expr::Unary(_, e) => e.collect_variables(out),
            Expr::Int(_) | Expr::Bool(_) | Expr::Id | Expr::Np => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Int(n) => write!(f, "{n}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Var(name) => f.write_str(name),
            Expr::Id => f.write_str("id"),
            Expr::Np => f.write_str("np"),
            Expr::Binary(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Unary(op, e) => write!(f, "{op}{e}"),
        }
    }
}

/// An MPL statement, annotated with its source [`Span`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

impl Stmt {
    /// Wraps a [`StmtKind`] with an empty span (used by programmatic
    /// builders in [`crate::corpus`]).
    #[must_use]
    pub fn synthetic(kind: StmtKind) -> Stmt {
        Stmt {
            kind,
            span: Span::default(),
        }
    }
}

/// The different statement forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `x := e;`
    Assign { name: String, value: Expr },
    /// `if c then .. else .. end`
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// `while c do .. end`
    While { cond: Expr, body: Vec<Stmt> },
    /// `for v := a to b do .. end` — inclusive upper bound, as in the
    /// paper's `for i=1 to np-1`.
    For {
        var: String,
        from: Expr,
        to: Expr,
        body: Vec<Stmt>,
    },
    /// `send value -> dest;`
    Send { value: Expr, dest: Expr },
    /// `recv var <- src;`
    Recv { var: String, src: Expr },
    /// `print e;`
    Print(Expr),
    /// `assume c;` — a fact the analysis may rely on; checked at runtime
    /// by the simulator (like the paper's `assert(np = ncols*nrows)`).
    Assume(Expr),
    /// `skip;`
    Skip,
}

/// A complete MPL program: a statement list executed by every process.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Creates a program from a list of statements.
    #[must_use]
    pub fn new(stmts: Vec<Stmt>) -> Program {
        Program { stmts }
    }

    /// Total number of statements, counting nested bodies.
    #[must_use]
    pub fn len(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| {
                    1 + match &s.kind {
                        StmtKind::If {
                            then_branch,
                            else_branch,
                            ..
                        } => count(then_branch) + count(else_branch),
                        StmtKind::While { body, .. } | StmtKind::For { body, .. } => count(body),
                        _ => 0,
                    }
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// True if the program has no statements at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_block(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
            for stmt in stmts {
                write_stmt(f, stmt, indent)?;
            }
            Ok(())
        }
        fn write_stmt(f: &mut fmt::Formatter<'_>, stmt: &Stmt, indent: usize) -> fmt::Result {
            let pad = "  ".repeat(indent);
            match &stmt.kind {
                StmtKind::Assign { name, value } => writeln!(f, "{pad}{name} := {value};"),
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    writeln!(f, "{pad}if {cond} then")?;
                    write_block(f, then_branch, indent + 1)?;
                    if !else_branch.is_empty() {
                        writeln!(f, "{pad}else")?;
                        write_block(f, else_branch, indent + 1)?;
                    }
                    writeln!(f, "{pad}end")
                }
                StmtKind::While { cond, body } => {
                    writeln!(f, "{pad}while {cond} do")?;
                    write_block(f, body, indent + 1)?;
                    writeln!(f, "{pad}end")
                }
                StmtKind::For {
                    var,
                    from,
                    to,
                    body,
                } => {
                    writeln!(f, "{pad}for {var} := {from} to {to} do")?;
                    write_block(f, body, indent + 1)?;
                    writeln!(f, "{pad}end")
                }
                StmtKind::Send { value, dest } => writeln!(f, "{pad}send {value} -> {dest};"),
                StmtKind::Recv { var, src } => writeln!(f, "{pad}recv {var} <- {src};"),
                StmtKind::Print(e) => writeln!(f, "{pad}print {e};"),
                StmtKind::Assume(e) => writeln!(f, "{pad}assume {e};"),
                StmtKind::Skip => writeln!(f, "{pad}skip;"),
            }
        }
        write_block(f, &self.stmts, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mentions_id_detects_nested_use() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Mul, Expr::var("k"), Expr::Np),
            Expr::binary(BinOp::Mod, Expr::Id, Expr::Int(2)),
        );
        assert!(e.mentions_id());
        let e2 = Expr::binary(BinOp::Add, Expr::var("k"), Expr::Np);
        assert!(!e2.mentions_id());
    }

    #[test]
    fn variables_deduplicates_in_order() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::binary(BinOp::Add, Expr::var("a"), Expr::var("b")),
            Expr::var("a"),
        );
        assert_eq!(e.variables(), vec!["a", "b"]);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let src = "if id = 0 then send 5 -> 1; else recv x <- 0; end";
        let program = crate::parse_program(src).unwrap();
        let printed = program.to_string();
        let reparsed = crate::parse_program(&printed).unwrap();
        // Spans differ between the two sources; compare printed forms.
        assert_eq!(printed, reparsed.to_string());
    }

    #[test]
    fn program_len_counts_nested() {
        let src = "if id = 0 then x := 1; y := 2; else skip; end print x;";
        let p = crate::parse_program(src).unwrap();
        assert_eq!(p.len(), 5); // if + 3 inner + print
        assert!(!p.is_empty());
    }

    #[test]
    fn binop_is_boolean() {
        assert!(BinOp::Le.is_boolean());
        assert!(BinOp::And.is_boolean());
        assert!(!BinOp::Add.is_boolean());
    }
}
