//! Recursive-descent parser for MPL.
//!
//! Grammar (EBNF):
//!
//! ```text
//! program  := stmt*
//! stmt     := "if" expr "then" stmt* ("else" stmt*)? "end"
//!           | "while" expr "do" stmt* "end"
//!           | "for" IDENT ":=" expr "to" expr "do" stmt* "end"
//!           | IDENT ":=" expr ";"
//!           | "send" expr "->" expr ";"
//!           | "recv" IDENT "<-" expr ";"
//!           | "print" expr ";"
//!           | "assume" expr ";"
//!           | "skip" ";"
//! expr     := or
//! or       := and ("or" and)*
//! and      := not ("and" not)*
//! not      := "not" not | cmp
//! cmp      := sum (("="|"!="|"<"|"<="|">"|">=") sum)?
//! sum      := term (("+"|"-") term)*
//! term     := unary (("*"|"/"|"%") unary)*
//! unary    := "-" unary | atom
//! atom     := INT | IDENT | "id" | "np" | "true" | "false" | "(" expr ")"
//! ```
//!
//! For-loop headers also accept `=` in place of `:=` so the paper's
//! `for i=1 to np-1` parses verbatim.

use std::error::Error;
use std::fmt;

use crate::ast::{BinOp, Expr, Program, Stmt, StmtKind, UnOp};
use crate::lexer::{tokenize, LexError};
use crate::token::{Span, Token, TokenKind};

/// An error produced while parsing MPL source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Location of the offending token.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            span: e.span,
            message: e.message,
        }
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.error_here(&format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.bump();
                let TokenKind::Ident(name) = t.kind else {
                    unreachable!()
                };
                Ok((name, t.span))
            }
            other => {
                let msg = format!("expected identifier, found {}", other.describe());
                Err(self.error_here(&msg))
            }
        }
    }

    fn error_here(&self, message: &str) -> ParseError {
        ParseError {
            span: self.peek().span,
            message: message.to_owned(),
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let stmts = self.parse_block(&[TokenKind::Eof])?;
        self.expect(&TokenKind::Eof)?;
        Ok(Program::new(stmts))
    }

    /// Parses statements until one of `stop` tokens is at the front
    /// (the stop token is not consumed).
    fn parse_block(&mut self, stop: &[TokenKind]) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while !stop.iter().any(|k| self.at(k)) {
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.peek().span;
        let kind = match self.peek().kind.clone() {
            TokenKind::If => {
                self.bump();
                let cond = self.parse_expr()?;
                self.expect(&TokenKind::Then)?;
                let then_branch = self.parse_block(&[TokenKind::Else, TokenKind::End])?;
                let else_branch = if self.eat(&TokenKind::Else) {
                    self.parse_block(&[TokenKind::End])?
                } else {
                    Vec::new()
                };
                self.expect(&TokenKind::End)?;
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                }
            }
            TokenKind::While => {
                self.bump();
                let cond = self.parse_expr()?;
                self.expect(&TokenKind::Do)?;
                let body = self.parse_block(&[TokenKind::End])?;
                self.expect(&TokenKind::End)?;
                StmtKind::While { cond, body }
            }
            TokenKind::For => {
                self.bump();
                let (var, _) = self.expect_ident()?;
                // Accept both `:=` and `=` in for headers.
                if !self.eat(&TokenKind::Assign) {
                    self.expect(&TokenKind::Eq)?;
                }
                let from = self.parse_expr()?;
                self.expect(&TokenKind::To)?;
                let to = self.parse_expr()?;
                self.expect(&TokenKind::Do)?;
                let body = self.parse_block(&[TokenKind::End])?;
                self.expect(&TokenKind::End)?;
                StmtKind::For {
                    var,
                    from,
                    to,
                    body,
                }
            }
            TokenKind::Send => {
                self.bump();
                let value = self.parse_expr()?;
                self.expect(&TokenKind::Arrow)?;
                let dest = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Send { value, dest }
            }
            TokenKind::Recv => {
                self.bump();
                let (var, _) = self.expect_ident()?;
                self.expect(&TokenKind::BackArrow)?;
                let src = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Recv { var, src }
            }
            TokenKind::Print => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Print(e)
            }
            TokenKind::Assume => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Assume(e)
            }
            TokenKind::Skip => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                StmtKind::Skip
            }
            TokenKind::Ident(_) => {
                let (name, _) = self.expect_ident()?;
                self.expect(&TokenKind::Assign)?;
                let value = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                StmtKind::Assign { name, value }
            }
            other => {
                return Err(
                    self.error_here(&format!("expected a statement, found {}", other.describe()))
                )
            }
        };
        let end = self.tokens[self.pos.saturating_sub(1)].span;
        Ok(Stmt {
            kind,
            span: start.merge(end),
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.parse_and()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Not) {
            let e = self.parse_not()?;
            Ok(Expr::Unary(UnOp::Not, Box::new(e)))
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_sum()?;
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_sum()?;
        Ok(Expr::binary(op, lhs, rhs))
    }

    fn parse_sum(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_term()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            let e = self.parse_unary()?;
            // Constant-fold negative literals so `-1` is `Int(-1)`.
            if let Expr::Int(n) = e {
                return Ok(Expr::Int(-n));
            }
            Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
        } else {
            self.parse_atom()
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name))
            }
            TokenKind::Id => {
                self.bump();
                Ok(Expr::Id)
            }
            TokenKind::Np => {
                self.bump();
                Ok(Expr::Np)
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(self.error_here(&format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

/// Parses MPL source into a [`Program`].
///
/// # Errors
///
/// Returns a [`ParseError`] (with line/column information) on malformed
/// input.
///
/// ```
/// let p = mpl_lang::parse_program("x := np - 1; send x -> (id + 1) % np;")?;
/// assert_eq!(p.stmts.len(), 2);
/// # Ok::<(), mpl_lang::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Expr, StmtKind};

    #[test]
    fn parses_assignment_with_precedence() {
        let p = parse_program("x := 1 + 2 * 3;").unwrap();
        let StmtKind::Assign { value, .. } = &p.stmts[0].kind else {
            panic!()
        };
        assert_eq!(
            *value,
            Expr::binary(
                BinOp::Add,
                Expr::Int(1),
                Expr::binary(BinOp::Mul, Expr::Int(2), Expr::Int(3))
            )
        );
    }

    #[test]
    fn parses_parenthesized_grouping() {
        let p = parse_program("x := (1 + 2) * 3;").unwrap();
        let StmtKind::Assign { value, .. } = &p.stmts[0].kind else {
            panic!()
        };
        assert_eq!(
            *value,
            Expr::binary(
                BinOp::Mul,
                Expr::binary(BinOp::Add, Expr::Int(1), Expr::Int(2)),
                Expr::Int(3)
            )
        );
    }

    #[test]
    fn parses_if_else() {
        let p = parse_program("if id = 0 then x := 1; else x := 2; end").unwrap();
        let StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } = &p.stmts[0].kind
        else {
            panic!()
        };
        assert_eq!(*cond, Expr::binary(BinOp::Eq, Expr::Id, Expr::Int(0)));
        assert_eq!(then_branch.len(), 1);
        assert_eq!(else_branch.len(), 1);
    }

    #[test]
    fn parses_if_without_else() {
        let p = parse_program("if id < np then skip; end").unwrap();
        let StmtKind::If { else_branch, .. } = &p.stmts[0].kind else {
            panic!()
        };
        assert!(else_branch.is_empty());
    }

    #[test]
    fn parses_for_with_paper_syntax() {
        // The paper writes `for i=1 to np-1`.
        let p = parse_program("for i = 1 to np - 1 do send 0 -> i; end").unwrap();
        let StmtKind::For {
            var,
            from,
            to,
            body,
        } = &p.stmts[0].kind
        else {
            panic!()
        };
        assert_eq!(var, "i");
        assert_eq!(*from, Expr::Int(1));
        assert_eq!(*to, Expr::binary(BinOp::Sub, Expr::Np, Expr::Int(1)));
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn parses_send_recv() {
        let p = parse_program("send x + 1 -> id + 1; recv y <- id - 1;").unwrap();
        assert!(matches!(p.stmts[0].kind, StmtKind::Send { .. }));
        let StmtKind::Recv { var, src } = &p.stmts[1].kind else {
            panic!()
        };
        assert_eq!(var, "y");
        assert_eq!(*src, Expr::binary(BinOp::Sub, Expr::Id, Expr::Int(1)));
    }

    #[test]
    fn parses_nested_control_flow() {
        let src = "
            for i = 0 to 3 do
                if i % 2 = 0 then
                    while x < i do x := x + 1; end
                end
            end";
        let p = parse_program(src).unwrap();
        assert_eq!(p.stmts.len(), 1);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn parses_negative_literals() {
        let p = parse_program("x := -5;").unwrap();
        let StmtKind::Assign { value, .. } = &p.stmts[0].kind else {
            panic!()
        };
        assert_eq!(*value, Expr::Int(-5));
    }

    #[test]
    fn parses_logical_operators() {
        let p = parse_program("if id = 0 or id = np - 1 and not (x < 2) then skip; end").unwrap();
        let StmtKind::If { cond, .. } = &p.stmts[0].kind else {
            panic!()
        };
        // `and` binds tighter than `or`.
        let Expr::Binary(BinOp::Or, _, rhs) = cond else {
            panic!("expected or at top")
        };
        assert!(matches!(**rhs, Expr::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn parses_assume() {
        let p = parse_program("assume np = nrows * ncols;").unwrap();
        assert!(matches!(p.stmts[0].kind, StmtKind::Assume(_)));
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse_program("x := 1").unwrap_err();
        assert!(err.message.contains("`;`"), "{}", err.message);
    }

    #[test]
    fn error_on_missing_end() {
        let err = parse_program("if id = 0 then x := 1;").unwrap_err();
        assert!(err.message.contains("statement") || err.message.contains("`end`"));
    }

    #[test]
    fn error_on_chained_comparison() {
        // `a < b < c` is not allowed (cmp is non-associative).
        assert!(parse_program("if 1 < 2 < 3 then skip; end").is_err());
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse_program("x := 1;\ny := ;").unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn empty_program_parses() {
        assert!(parse_program("").unwrap().is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ast::{BinOp, Expr, Program, Stmt, StmtKind};
    use mpl_rng::Rng64;

    /// A random identifier avoiding MPL keywords (`or`, `do`, …) —
    /// reserved words cannot round-trip as variable names.
    fn gen_ident(rng: &mut Rng64) -> String {
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvw";
        const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
        const KEYWORDS: &[&str] = &[
            "if", "then", "else", "end", "while", "do", "for", "to", "send", "recv", "receive",
            "print", "assume", "assert", "skip", "id", "me", "np", "and", "or", "not", "true",
            "false",
        ];
        let mut name = String::new();
        name.push(*rng.pick(FIRST) as char);
        for _ in 0..rng.index(7) {
            name.push(*rng.pick(REST) as char);
        }
        if KEYWORDS.contains(&name.as_str()) {
            format!("v_{name}")
        } else {
            name
        }
    }

    fn gen_expr(rng: &mut Rng64, depth: u32) -> Expr {
        if depth > 0 && rng.index(3) == 0 {
            let op = *rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod]);
            let l = gen_expr(rng, depth - 1);
            let r = gen_expr(rng, depth - 1);
            return Expr::binary(op, l, r);
        }
        match rng.index(4) {
            0 => Expr::Int(rng.i64_in(-1000, 1000)),
            1 => Expr::Id,
            2 => Expr::Np,
            _ => Expr::Var(gen_ident(rng)),
        }
    }

    fn gen_stmts(rng: &mut Rng64, depth: u32, max: usize) -> Vec<Stmt> {
        (0..rng.index(max + 1))
            .map(|_| gen_stmt(rng, depth))
            .collect()
    }

    fn gen_stmt(rng: &mut Rng64, depth: u32) -> Stmt {
        let leaf = |rng: &mut Rng64| match rng.index(4) {
            0 => Stmt::synthetic(StmtKind::Assign {
                name: gen_ident(rng),
                value: gen_expr(rng, 4),
            }),
            1 => Stmt::synthetic(StmtKind::Send {
                value: gen_expr(rng, 4),
                dest: gen_expr(rng, 4),
            }),
            2 => Stmt::synthetic(StmtKind::Recv {
                var: gen_ident(rng),
                src: gen_expr(rng, 4),
            }),
            _ => Stmt::synthetic(StmtKind::Print(gen_expr(rng, 4))),
        };
        if depth == 0 {
            return leaf(rng);
        }
        // 3:1:1 odds of leaf : if : while, as in the original strategy.
        match rng.index(5) {
            0 => {
                let cond = Expr::binary(BinOp::Le, gen_expr(rng, 4), gen_expr(rng, 4));
                Stmt::synthetic(StmtKind::If {
                    cond,
                    then_branch: gen_stmts(rng, depth - 1, 2),
                    else_branch: gen_stmts(rng, depth - 1, 2),
                })
            }
            1 => {
                let cond = Expr::binary(BinOp::Le, gen_expr(rng, 4), gen_expr(rng, 4));
                Stmt::synthetic(StmtKind::While {
                    cond,
                    body: gen_stmts(rng, depth - 1, 2),
                })
            }
            _ => leaf(rng),
        }
    }

    /// Display ∘ parse is the identity on printed programs: any AST we
    /// can build pretty-prints to something that parses back to the
    /// same printed form.
    #[test]
    fn display_parse_round_trip() {
        let mut rng = Rng64::seed_from_u64(0x5EED_1234);
        for case in 0..128 {
            let stmts: Vec<Stmt> = (0..1 + rng.index(5))
                .map(|_| gen_stmt(&mut rng, 2))
                .collect();
            let program = Program::new(stmts);
            let printed = program.to_string();
            let reparsed =
                parse_program(&printed).unwrap_or_else(|e| panic!("case {case}: {e}\n{printed}"));
            assert_eq!(printed, reparsed.to_string(), "case {case}");
        }
    }
}
