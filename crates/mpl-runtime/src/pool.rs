//! The scoped worker pool: deterministic ordered fan-out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::deque::StealDeque;

/// Scheduling counters from one batch run. Purely diagnostic: these
/// values depend on thread timing and MUST NOT flow into job results
/// (the results themselves are deterministic; the schedule is not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads actually spawned (0 when the batch ran inline).
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
}

/// A fixed-width worker pool. Threads are scoped per [`Pool::run_ordered`]
/// call — the pool holds configuration, not live threads, so it is
/// trivially `Send` and cheap to construct.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool of `workers` threads; 0 is clamped to 1.
    #[must_use]
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every job, returning results in submission order
    /// regardless of worker count or scheduling. `f` receives the job's
    /// submission index alongside the job.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` on any worker.
    pub fn run_ordered<T, R, F>(&self, jobs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_ordered_stats(jobs, f).0
    }

    /// [`Self::run_ordered`] plus the run's [`PoolStats`].
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` on any worker.
    pub fn run_ordered_stats<T, R, F>(&self, jobs: Vec<T>, f: F) -> (Vec<R>, PoolStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let njobs = jobs.len();
        let nworkers = self.workers.min(njobs);
        if nworkers <= 1 {
            // One worker (or zero/one jobs): run inline on the caller's
            // thread, in submission order. This is also the reference
            // schedule the parallel path must reproduce result-wise.
            let out = jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| f(i, job))
                .collect();
            return (
                out,
                PoolStats {
                    workers: 0,
                    jobs: njobs,
                    steals: 0,
                },
            );
        }

        // Deal jobs round-robin onto per-worker deques (deterministic
        // assignment; stealing rebalances at runtime).
        let queues: Vec<StealDeque<(usize, T)>> =
            (0..nworkers).map(|_| StealDeque::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % nworkers].push((i, job));
        }
        // One result slot per job: slot `i` is written exactly once, by
        // whichever worker ran job `i` — output order is fixed up front.
        let slots: Vec<Mutex<Option<R>>> = (0..njobs).map(|_| Mutex::new(None)).collect();
        let steals = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for w in 0..nworkers {
                let queues = &queues;
                let slots = &slots;
                let steals = &steals;
                let f = &f;
                scope.spawn(move || loop {
                    // Own deque first (LIFO), then steal round-robin
                    // from the neighbours (FIFO).
                    let job = queues[w].pop().or_else(|| {
                        (1..nworkers).find_map(|d| {
                            let victim = (w + d) % nworkers;
                            let stolen = queues[victim].steal();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            stolen
                        })
                    });
                    // No job list grows at runtime, so empty-everywhere
                    // means this worker is done.
                    let Some((i, job)) = job else { break };
                    let result = f(i, job);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                });
            }
        });

        let out = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every job slot filled exactly once")
            })
            .collect();
        (
            out,
            PoolStats {
                workers: nworkers,
                jobs: njobs,
                steals: steals.load(Ordering::Relaxed),
            },
        )
    }
}

/// Convenience free function: `Pool::new(workers).run_ordered(jobs, f)`.
pub fn run_ordered<T, R, F>(workers: usize, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    Pool::new(workers).run_ordered(jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn output_order_matches_submission_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = jobs.iter().map(|x| x * x + 1).collect();
        for workers in [1usize, 2, 3, 4, 8, 64] {
            let got = run_ordered(workers, jobs.clone(), |i, x| {
                assert_eq!(i as u64, x);
                x * x + 1
            });
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run_ordered(vec![5, 6], |_, x| x + 1), vec![6, 7]);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let empty: Vec<i32> = Vec::new();
        assert!(run_ordered(4, empty, |_, x: i32| x).is_empty());
        assert_eq!(run_ordered(4, vec![9], |i, x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let n = 257;
        let out = run_ordered(8, (0..n).collect(), |_, x: usize| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), n);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn stats_report_inline_vs_threaded() {
        let (out, stats) = Pool::new(1).run_ordered_stats(vec![1, 2, 3], |_, x| x);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.workers, 0, "single-worker batches run inline");
        assert_eq!(stats.jobs, 3);

        let (out, stats) = Pool::new(4).run_ordered_stats((0..40).collect(), |_, x: i32| x);
        assert_eq!(out.len(), 40);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.jobs, 40);
    }

    #[test]
    fn stealing_rebalances_a_skewed_batch() {
        // Job 0 (worker 0's only job under round-robin with 2 workers
        // would be jobs 0,2,4...) busy-spins until every other job has
        // run — which can only happen if worker 1 steals worker 0's
        // remaining jobs. Completion of this test IS the assertion.
        let done = AtomicUsize::new(0);
        let n = 16;
        let out = run_ordered(2, (0..n).collect(), |_, x: usize| {
            if x == 0 {
                while done.load(Ordering::Relaxed) < n - 1 {
                    std::thread::yield_now();
                }
            }
            done.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn results_deterministic_across_repeated_runs() {
        let reference = run_ordered(1, (0..50).collect(), |_, x: u64| x.wrapping_mul(2654435761));
        for _ in 0..5 {
            let again = run_ordered(4, (0..50).collect(), |_, x: u64| x.wrapping_mul(2654435761));
            assert_eq!(again, reference);
        }
    }
}
