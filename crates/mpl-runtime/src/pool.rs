//! The scoped worker pool: deterministic ordered fan-out.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::deque::StealDeque;

/// A structured record of one job that panicked under
/// [`Pool::run_ordered_isolated`]: the panic payload rendered to text
/// plus the worker that ran the job. The worker id is scheduling-
/// dependent and therefore **not deterministic** — callers producing
/// reproducible output must exclude it (like wall times).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The panic payload (`&str`/`String` payloads verbatim, a
    /// placeholder otherwise).
    pub message: String,
    /// Index of the worker the job ran on (0 when the batch ran inline).
    pub worker: usize,
}

/// Renders a caught panic payload as text. Public so other isolation
/// layers (e.g. the per-request `catch_unwind` in `mpl-core`'s request
/// API) report payloads identically to [`Pool::run_ordered_isolated`].
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Scheduling counters from one batch run. Purely diagnostic: these
/// values depend on thread timing and MUST NOT flow into job results
/// (the results themselves are deterministic; the schedule is not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads actually spawned (0 when the batch ran inline).
    pub workers: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs a worker took from another worker's deque.
    pub steals: u64,
}

/// A fixed-width worker pool. Threads are scoped per [`Pool::run_ordered`]
/// call — the pool holds configuration, not live threads, so it is
/// trivially `Send` and cheap to construct.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    workers: usize,
}

impl Pool {
    /// A pool of `workers` threads; 0 is clamped to 1.
    #[must_use]
    pub fn new(workers: usize) -> Pool {
        Pool {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every job, returning results in submission order
    /// regardless of worker count or scheduling. `f` receives the job's
    /// submission index alongside the job.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` on any worker.
    pub fn run_ordered<T, R, F>(&self, jobs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_ordered_stats(jobs, f).0
    }

    /// [`Self::run_ordered`] plus the run's [`PoolStats`].
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` on any worker.
    pub fn run_ordered_stats<T, R, F>(&self, jobs: Vec<T>, f: F) -> (Vec<R>, PoolStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_ordered_inner(jobs, |_worker, i, job| f(i, job))
    }

    /// Fault-isolated [`Self::run_ordered_stats`]: each job runs under
    /// `catch_unwind`, so one panicking job yields an `Err(`[`JobFailure`]`)`
    /// in its submission-order slot while every other job still runs to
    /// completion. No panic escapes this call.
    ///
    /// The closure is wrapped in `AssertUnwindSafe`: a panicking job's
    /// partially-built result lives only in that job's dedicated slot,
    /// which is replaced by the failure record, so no broken state is
    /// ever observed across jobs.
    pub fn run_ordered_isolated<T, R, F>(
        &self,
        jobs: Vec<T>,
        f: F,
    ) -> (Vec<Result<R, JobFailure>>, PoolStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.run_ordered_inner(jobs, |worker, i, job| {
            std::panic::catch_unwind(AssertUnwindSafe(|| f(i, job))).map_err(|payload| JobFailure {
                message: panic_message(payload.as_ref()),
                worker,
            })
        })
    }

    /// Shared scheduling core: `f` receives `(worker, submission index,
    /// job)` and its results come back in submission order.
    fn run_ordered_inner<T, R, F>(&self, jobs: Vec<T>, f: F) -> (Vec<R>, PoolStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, usize, T) -> R + Sync,
    {
        let njobs = jobs.len();
        let nworkers = self.workers.min(njobs);
        if nworkers <= 1 {
            // One worker (or zero/one jobs): run inline on the caller's
            // thread, in submission order. This is also the reference
            // schedule the parallel path must reproduce result-wise.
            let out = jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| f(0, i, job))
                .collect();
            return (
                out,
                PoolStats {
                    workers: 0,
                    jobs: njobs,
                    steals: 0,
                },
            );
        }

        // Deal jobs round-robin onto per-worker deques (deterministic
        // assignment; stealing rebalances at runtime).
        let queues: Vec<StealDeque<(usize, T)>> =
            (0..nworkers).map(|_| StealDeque::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % nworkers].push((i, job));
        }
        // One result slot per job: slot `i` is written exactly once, by
        // whichever worker ran job `i` — output order is fixed up front.
        let slots: Vec<Mutex<Option<R>>> = (0..njobs).map(|_| Mutex::new(None)).collect();
        let steals = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for w in 0..nworkers {
                let queues = &queues;
                let slots = &slots;
                let steals = &steals;
                let f = &f;
                scope.spawn(move || loop {
                    // Own deque first (LIFO), then steal round-robin
                    // from the neighbours (FIFO).
                    let job = queues[w].pop().or_else(|| {
                        (1..nworkers).find_map(|d| {
                            let victim = (w + d) % nworkers;
                            let stolen = queues[victim].steal();
                            if stolen.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                            }
                            stolen
                        })
                    });
                    // No job list grows at runtime, so empty-everywhere
                    // means this worker is done.
                    let Some((i, job)) = job else { break };
                    let result = f(w, i, job);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
                });
            }
        });

        let out = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("every job slot filled exactly once")
            })
            .collect();
        (
            out,
            PoolStats {
                workers: nworkers,
                jobs: njobs,
                steals: steals.load(Ordering::Relaxed),
            },
        )
    }
}

/// Convenience free function: `Pool::new(workers).run_ordered(jobs, f)`.
pub fn run_ordered<T, R, F>(workers: usize, jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    Pool::new(workers).run_ordered(jobs, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn output_order_matches_submission_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = jobs.iter().map(|x| x * x + 1).collect();
        for workers in [1usize, 2, 3, 4, 8, 64] {
            let got = run_ordered(workers, jobs.clone(), |i, x| {
                assert_eq!(i as u64, x);
                x * x + 1
            });
            assert_eq!(got, expected, "workers = {workers}");
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run_ordered(vec![5, 6], |_, x| x + 1), vec![6, 7]);
    }

    #[test]
    fn empty_and_singleton_batches() {
        let empty: Vec<i32> = Vec::new();
        assert!(run_ordered(4, empty, |_, x: i32| x).is_empty());
        assert_eq!(run_ordered(4, vec![9], |i, x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let n = 257;
        let out = run_ordered(8, (0..n).collect(), |_, x: usize| {
            ran.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(ran.load(Ordering::Relaxed), n);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn stats_report_inline_vs_threaded() {
        let (out, stats) = Pool::new(1).run_ordered_stats(vec![1, 2, 3], |_, x| x);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.workers, 0, "single-worker batches run inline");
        assert_eq!(stats.jobs, 3);

        let (out, stats) = Pool::new(4).run_ordered_stats((0..40).collect(), |_, x: i32| x);
        assert_eq!(out.len(), 40);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.jobs, 40);
    }

    #[test]
    fn stealing_rebalances_a_skewed_batch() {
        // Job 0 (worker 0's only job under round-robin with 2 workers
        // would be jobs 0,2,4...) busy-spins until every other job has
        // run — which can only happen if worker 1 steals worker 0's
        // remaining jobs. Completion of this test IS the assertion.
        let done = AtomicUsize::new(0);
        let n = 16;
        let out = run_ordered(2, (0..n).collect(), |_, x: usize| {
            if x == 0 {
                while done.load(Ordering::Relaxed) < n - 1 {
                    std::thread::yield_now();
                }
            }
            done.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn isolated_panic_fills_its_slot_and_spares_the_fleet() {
        for workers in [1usize, 2, 4, 8] {
            let (out, stats) =
                Pool::new(workers).run_ordered_isolated((0..17).collect::<Vec<u32>>(), |_, x| {
                    assert!(x != 5, "job 5 goes down");
                    x * 10
                });
            assert_eq!(stats.jobs, 17);
            for (i, slot) in out.iter().enumerate() {
                if i == 5 {
                    let failure = slot.as_ref().unwrap_err();
                    assert_eq!(failure.message, "job 5 goes down");
                    if workers == 1 {
                        assert_eq!(failure.worker, 0, "inline batches report worker 0");
                    }
                } else {
                    assert_eq!(*slot, Ok(i as u32 * 10), "workers = {workers}");
                }
            }
        }
    }

    #[test]
    fn isolated_formats_string_and_str_payloads() {
        let (out, _) = Pool::new(1).run_ordered_isolated(vec![0, 1, 2], |_, x: i32| match x {
            0 => panic!("static str payload"),
            1 => panic!("formatted {x} payload"),
            _ => x,
        });
        assert_eq!(out[0].as_ref().unwrap_err().message, "static str payload");
        assert_eq!(out[1].as_ref().unwrap_err().message, "formatted 1 payload");
        assert_eq!(out[2], Ok(2));
    }

    #[test]
    fn isolated_all_jobs_panicking_still_returns() {
        let (out, _) = Pool::new(4).run_ordered_isolated((0..8).collect::<Vec<u32>>(), |_, x| {
            panic!("boom {x}");
        });
        assert_eq!(out.len(), 8);
        for (i, slot) in out.iter().enumerate() {
            let failure = slot.as_ref().expect_err("every job panicked");
            assert_eq!(failure.message, format!("boom {i}"));
        }
        // The pool remains usable after a fully-poisoned batch.
        let ok = Pool::new(4).run_ordered(vec![1, 2], |_, x| x + 1);
        assert_eq!(ok, vec![2, 3]);
    }

    #[test]
    fn results_deterministic_across_repeated_runs() {
        let reference = run_ordered(1, (0..50).collect(), |_, x: u64| x.wrapping_mul(2654435761));
        for _ in 0..5 {
            let again = run_ordered(4, (0..50).collect(), |_, x: u64| x.wrapping_mul(2654435761));
            assert_eq!(again, reference);
        }
    }
}
