//! Admission control: a bounded-concurrency gate with explicit
//! rejection instead of queueing.
//!
//! Long-running services need *backpressure*: when more work arrives
//! than the fleet can absorb, the sound move is to reject loudly (the
//! caller gets a structured "try again" answer immediately) rather than
//! queue without bound and let every request's latency grow until
//! something times out. [`AdmissionGate`] is that policy as a primitive:
//! a capacity, an in-flight counter, and an RAII [`Permit`] that releases
//! the slot when the admitted work finishes — however it finishes,
//! including by panic, since the release lives in `Drop`.
//!
//! The gate never blocks: [`AdmissionGate::try_admit`] either hands back
//! a permit or tells the caller the gate is full *right now*. Rejections
//! are counted so operators can see shed load.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A cloneable bounded-concurrency gate. All clones share the same
/// capacity, in-flight count, and rejection counter.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    in_flight: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

/// An admitted slot. Dropping the permit releases the slot; permits are
/// `Send` so admitted work can move to another thread.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<Inner>,
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` concurrent permits
    /// (clamped to at least 1 — a zero-capacity gate would reject
    /// everything forever).
    #[must_use]
    pub fn new(capacity: usize) -> AdmissionGate {
        AdmissionGate {
            inner: Arc::new(Inner {
                capacity: capacity.max(1),
                in_flight: AtomicUsize::new(0),
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            }),
        }
    }

    /// Tries to take a slot. Returns `None` — immediately, never
    /// blocking — when `capacity` permits are already outstanding, and
    /// counts the rejection.
    #[must_use]
    pub fn try_admit(&self) -> Option<Permit> {
        let mut current = self.inner.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.inner.capacity {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.inner.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.admitted.fetch_add(1, Ordering::Relaxed);
                    return Some(Permit {
                        inner: Arc::clone(&self.inner),
                    });
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// The maximum number of concurrently outstanding permits.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Permits outstanding right now.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::Relaxed)
    }

    /// Total permits ever granted.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.inner.admitted.load(Ordering::Relaxed)
    }

    /// Total admissions refused because the gate was full.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.inner.rejected.load(Ordering::Relaxed)
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.inner.in_flight.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_rejects() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_admit().expect("slot 1");
        let b = gate.try_admit().expect("slot 2");
        assert!(gate.try_admit().is_none());
        assert_eq!(gate.in_flight(), 2);
        assert_eq!(gate.rejected(), 1);
        drop(a);
        let c = gate.try_admit().expect("slot freed by drop");
        assert_eq!(gate.in_flight(), 2);
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.admitted(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let gate = AdmissionGate::new(0);
        assert_eq!(gate.capacity(), 1);
        let permit = gate.try_admit().expect("one slot exists");
        assert!(gate.try_admit().is_none());
        drop(permit);
        assert!(gate.try_admit().is_some());
    }

    #[test]
    fn permit_released_on_panic() {
        let gate = AdmissionGate::new(1);
        let g = gate.clone();
        let result = std::panic::catch_unwind(move || {
            let _permit = g.try_admit().expect("slot");
            panic!("admitted work explodes");
        });
        assert!(result.is_err());
        assert_eq!(gate.in_flight(), 0, "Drop released the slot");
        assert!(gate.try_admit().is_some());
    }

    #[test]
    fn clones_share_one_gate() {
        let gate = AdmissionGate::new(1);
        let clone = gate.clone();
        let permit = gate.try_admit().expect("slot");
        assert!(clone.try_admit().is_none());
        assert_eq!(clone.rejected(), 1);
        assert_eq!(gate.rejected(), 1);
        drop(permit);
        assert!(clone.try_admit().is_some());
    }

    #[test]
    fn concurrent_admission_never_exceeds_capacity() {
        let gate = AdmissionGate::new(4);
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gate = gate.clone();
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Some(_permit) = gate.try_admit() {
                            let seen = gate.in_flight();
                            peak.fetch_max(seen, Ordering::Relaxed);
                            assert!(seen <= gate.capacity(), "{seen} over capacity");
                        }
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        assert_eq!(gate.in_flight(), 0);
        assert!(peak.load(Ordering::Relaxed) <= 4);
    }
}
