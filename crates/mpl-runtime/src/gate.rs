//! Admission control: a bounded-concurrency gate with explicit
//! rejection instead of queueing.
//!
//! Long-running services need *backpressure*: when more work arrives
//! than the fleet can absorb, the sound move is to reject loudly (the
//! caller gets a structured "try again" answer immediately) rather than
//! queue without bound and let every request's latency grow until
//! something times out. [`AdmissionGate`] is that policy as a primitive:
//! a capacity, an in-flight counter, and an RAII [`Permit`] that releases
//! the slot when the admitted work finishes — however it finishes,
//! including by panic, since the release lives in `Drop`.
//!
//! The gate never blocks: [`AdmissionGate::try_admit`] either hands back
//! a permit or tells the caller the gate is full *right now*. Rejections
//! are counted so operators can see shed load.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A cloneable bounded-concurrency gate. All clones share the same
/// capacity, in-flight count, and rejection counter.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    in_flight: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
}

/// An admitted slot. Dropping the permit releases the slot; permits are
/// `Send` so admitted work can move to another thread.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<Inner>,
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` concurrent permits
    /// (clamped to at least 1 — a zero-capacity gate would reject
    /// everything forever).
    #[must_use]
    pub fn new(capacity: usize) -> AdmissionGate {
        AdmissionGate {
            inner: Arc::new(Inner {
                capacity: capacity.max(1),
                in_flight: AtomicUsize::new(0),
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
            }),
        }
    }

    /// Tries to take a slot. Returns `None` — immediately, never
    /// blocking — when `capacity` permits are already outstanding, and
    /// counts the rejection.
    #[must_use]
    pub fn try_admit(&self) -> Option<Permit> {
        let mut current = self.inner.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.inner.capacity {
                self.inner.rejected.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.inner.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.admitted.fetch_add(1, Ordering::Relaxed);
                    return Some(Permit {
                        inner: Arc::clone(&self.inner),
                    });
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// The maximum number of concurrently outstanding permits.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Permits outstanding right now.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inner.in_flight.load(Ordering::Relaxed)
    }

    /// Total permits ever granted.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.inner.admitted.load(Ordering::Relaxed)
    }

    /// Total admissions refused because the gate was full.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.inner.rejected.load(Ordering::Relaxed)
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.inner.in_flight.fetch_sub(1, Ordering::Release);
    }
}

/// Per-client rate limiting policy: a token bucket refilled at
/// `rate_per_sec` tokens per second with at most `burst` tokens banked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuotaPolicy {
    /// Sustained requests per second granted to each client.
    pub rate_per_sec: u64,
    /// Maximum tokens a client can bank (its instantaneous burst size).
    pub burst: u64,
}

/// Internal fixed-point scale: one request costs 1000 milli-tokens, so
/// refill arithmetic stays exact in integers at millisecond resolution.
const MILLI: u64 = 1000;

#[derive(Debug)]
struct Bucket {
    milli_tokens: u64,
    last_ms: u64,
}

/// Deterministic per-client token buckets — the quota layer in front of
/// the shared [`AdmissionGate`].
///
/// Where the gate bounds *total* concurrency, quotas bound each client's
/// *rate*, so one misbehaving client cannot starve the rest. The clock
/// is supplied by the caller ([`ClientQuotas::try_acquire`] takes
/// `now_ms`), which keeps the policy a pure function of its inputs:
/// given the same `(client, now_ms)` sequence it always grants and
/// rejects the same requests with the same `retry-after` hints — tests
/// drive it with synthetic timestamps, the daemon with milliseconds
/// since startup.
#[derive(Debug)]
pub struct ClientQuotas {
    policy: QuotaPolicy,
    buckets: Mutex<HashMap<String, Bucket>>,
    granted: AtomicU64,
    rejected: AtomicU64,
}

impl ClientQuotas {
    /// Quotas under `policy`. A zero rate or burst is clamped to 1 — a
    /// quota that can never grant anything is a misconfiguration, not a
    /// policy.
    #[must_use]
    pub fn new(policy: QuotaPolicy) -> ClientQuotas {
        ClientQuotas {
            policy: QuotaPolicy {
                rate_per_sec: policy.rate_per_sec.max(1),
                burst: policy.burst.max(1),
            },
            buckets: Mutex::new(HashMap::new()),
            granted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Spends one token from `client`'s bucket at time `now_ms`
    /// (milliseconds on any monotonic clock the caller chooses). A new
    /// client starts with a full burst. On refusal, returns the minimum
    /// milliseconds the client must wait before a retry can succeed.
    ///
    /// # Errors
    ///
    /// `Err(retry_after_ms)` when the bucket is empty.
    pub fn try_acquire(&self, client: &str, now_ms: u64) -> Result<(), u64> {
        let mut buckets = self.buckets.lock().expect("quota lock");
        let rate = self.policy.rate_per_sec;
        let cap = self.policy.burst * MILLI;
        let bucket = buckets.entry(client.to_owned()).or_insert(Bucket {
            milli_tokens: cap,
            last_ms: now_ms,
        });
        // Refill for elapsed time; a caller-supplied clock that moves
        // backwards simply refills nothing (saturating, never a panic).
        let elapsed = now_ms.saturating_sub(bucket.last_ms);
        bucket.milli_tokens = bucket
            .milli_tokens
            .saturating_add(elapsed.saturating_mul(rate))
            .min(cap);
        bucket.last_ms = bucket.last_ms.max(now_ms);
        if bucket.milli_tokens >= MILLI {
            bucket.milli_tokens -= MILLI;
            self.granted.fetch_add(1, Ordering::Relaxed);
            Ok(())
        } else {
            let needed = MILLI - bucket.milli_tokens;
            self.rejected.fetch_add(1, Ordering::Relaxed);
            Err(needed.div_ceil(rate).max(1))
        }
    }

    /// The (clamped) policy in force.
    #[must_use]
    pub fn policy(&self) -> QuotaPolicy {
        self.policy
    }

    /// Total requests granted across all clients.
    #[must_use]
    pub fn granted(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Total requests refused across all clients.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Number of distinct clients seen so far.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.buckets.lock().expect("quota lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity_then_rejects() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_admit().expect("slot 1");
        let b = gate.try_admit().expect("slot 2");
        assert!(gate.try_admit().is_none());
        assert_eq!(gate.in_flight(), 2);
        assert_eq!(gate.rejected(), 1);
        drop(a);
        let c = gate.try_admit().expect("slot freed by drop");
        assert_eq!(gate.in_flight(), 2);
        drop(b);
        drop(c);
        assert_eq!(gate.in_flight(), 0);
        assert_eq!(gate.admitted(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let gate = AdmissionGate::new(0);
        assert_eq!(gate.capacity(), 1);
        let permit = gate.try_admit().expect("one slot exists");
        assert!(gate.try_admit().is_none());
        drop(permit);
        assert!(gate.try_admit().is_some());
    }

    #[test]
    fn permit_released_on_panic() {
        let gate = AdmissionGate::new(1);
        let g = gate.clone();
        let result = std::panic::catch_unwind(move || {
            let _permit = g.try_admit().expect("slot");
            panic!("admitted work explodes");
        });
        assert!(result.is_err());
        assert_eq!(gate.in_flight(), 0, "Drop released the slot");
        assert!(gate.try_admit().is_some());
    }

    #[test]
    fn clones_share_one_gate() {
        let gate = AdmissionGate::new(1);
        let clone = gate.clone();
        let permit = gate.try_admit().expect("slot");
        assert!(clone.try_admit().is_none());
        assert_eq!(clone.rejected(), 1);
        assert_eq!(gate.rejected(), 1);
        drop(permit);
        assert!(clone.try_admit().is_some());
    }

    #[test]
    fn saturation_storm_accounting_is_exact() {
        // N threads hammer a tiny gate: nothing may hang, the peak may
        // never exceed capacity, and afterwards the books must balance
        // exactly — every attempt was either admitted or rejected, and
        // every permit was released.
        const THREADS: usize = 8;
        const ATTEMPTS: u64 = 500;
        let gate = AdmissionGate::new(2);
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let gate = gate.clone();
                std::thread::spawn(move || {
                    for round in 0..ATTEMPTS {
                        if let Some(_permit) = gate.try_admit() {
                            assert!(gate.in_flight() <= gate.capacity());
                            if round % 7 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("storm worker");
        }
        assert_eq!(gate.in_flight(), 0, "all permits released");
        assert_eq!(
            gate.admitted() + gate.rejected(),
            THREADS as u64 * ATTEMPTS,
            "every attempt accounted for exactly once"
        );
        assert!(gate.admitted() >= 1);
        // The drained gate is immediately usable again.
        assert!(gate.try_admit().is_some());
    }

    #[test]
    fn quota_bucket_grants_burst_then_rejects_with_retry_hint() {
        let quotas = ClientQuotas::new(QuotaPolicy {
            rate_per_sec: 2,
            burst: 3,
        });
        // Full burst up front, all at t=0.
        for _ in 0..3 {
            assert_eq!(quotas.try_acquire("a", 0), Ok(()));
        }
        // Empty: 1000 milli-tokens needed at 2/ms-of-1000 → 500 ms.
        assert_eq!(quotas.try_acquire("a", 0), Err(500));
        assert_eq!(quotas.rejected(), 1);
        // 250 ms later: half a token banked, still short by 500 milli.
        assert_eq!(quotas.try_acquire("a", 250), Err(250));
        // At the hinted time the retry succeeds exactly.
        assert_eq!(quotas.try_acquire("a", 500), Ok(()));
        assert_eq!(quotas.granted(), 4);
    }

    #[test]
    fn quota_buckets_are_per_client_and_capped() {
        let quotas = ClientQuotas::new(QuotaPolicy {
            rate_per_sec: 1,
            burst: 2,
        });
        assert_eq!(quotas.try_acquire("a", 0), Ok(()));
        assert_eq!(quotas.try_acquire("a", 0), Ok(()));
        assert!(quotas.try_acquire("a", 0).is_err(), "a exhausted");
        // b is unaffected by a's exhaustion.
        assert_eq!(quotas.try_acquire("b", 0), Ok(()));
        assert_eq!(quotas.clients(), 2);
        // A long idle period refills to the burst cap, not beyond.
        assert_eq!(quotas.try_acquire("a", 3_600_000), Ok(()));
        assert_eq!(quotas.try_acquire("a", 3_600_000), Ok(()));
        assert!(quotas.try_acquire("a", 3_600_000).is_err());
        // A clock that jumps backwards refills nothing and never panics.
        assert!(quotas.try_acquire("a", 1_000_000).is_err());
    }

    #[test]
    fn quota_zero_policy_is_clamped() {
        let quotas = ClientQuotas::new(QuotaPolicy {
            rate_per_sec: 0,
            burst: 0,
        });
        assert_eq!(
            quotas.policy(),
            QuotaPolicy {
                rate_per_sec: 1,
                burst: 1
            }
        );
        assert_eq!(quotas.try_acquire("a", 0), Ok(()));
        assert_eq!(quotas.try_acquire("a", 0), Err(1000));
    }

    #[test]
    fn quota_sequence_is_deterministic() {
        // The same (client, now_ms) sequence always produces the same
        // grant/reject pattern — the property the daemon's structured
        // `retry-after-ms` answers rely on.
        let run = || {
            let quotas = ClientQuotas::new(QuotaPolicy {
                rate_per_sec: 5,
                burst: 2,
            });
            let schedule: &[(&str, u64)] = &[
                ("a", 0),
                ("a", 10),
                ("a", 20),
                ("b", 20),
                ("a", 400),
                ("a", 400),
                ("b", 500),
            ];
            schedule
                .iter()
                .map(|(c, t)| quotas.try_acquire(c, *t))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn concurrent_admission_never_exceeds_capacity() {
        let gate = AdmissionGate::new(4);
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gate = gate.clone();
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        if let Some(_permit) = gate.try_admit() {
                            let seen = gate.in_flight();
                            peak.fetch_max(seen, Ordering::Relaxed);
                            assert!(seen <= gate.capacity(), "{seen} over capacity");
                        }
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        assert_eq!(gate.in_flight(), 0);
        assert!(peak.load(Ordering::Relaxed) <= 4);
    }
}
