//! # mpl-runtime — deterministic parallel batch execution
//!
//! A small, zero-external-dependency work-stealing runtime for fanning a
//! *fixed, ordered* list of independent jobs across `N` worker threads.
//! It exists so the analysis engine can process whole program corpora in
//! parallel (the batch shape static MPI analyzers are deployed in) while
//! keeping the offline-build constraint: std threads plus an in-tree
//! deque, no crossbeam.
//!
//! Design points:
//!
//! * **Determinism by construction.** Each job carries its submission
//!   index and writes its result into a dedicated slot; the returned
//!   vector is always in submission order, for any worker count
//!   (including 1). Scheduling — which worker runs which job, and when —
//!   is free to vary; the *output* cannot.
//! * **Work stealing.** Jobs are dealt round-robin onto per-worker
//!   deques. A worker drains its own deque LIFO (cache-warm), then
//!   steals FIFO from its neighbours, so one heavyweight job does not
//!   strand the rest of its queue.
//! * **No job spawns jobs.** The job list is static, so a worker may
//!   exit as soon as every deque is empty — no termination protocol
//!   beyond that.
//! * **Fault isolation.** [`Pool::run_ordered_isolated`] wraps each job
//!   in `catch_unwind`: a panicking job becomes a structured
//!   [`JobFailure`] in its own result slot and the rest of the fleet
//!   completes. Cooperative [`CancelToken`]s (flag + optional deadline)
//!   let long-running jobs be asked to stop soundly.
//!
//! ```
//! let squares = mpl_runtime::run_ordered(4, (0u64..32).collect(), |i, x| {
//!     assert_eq!(i as u64, x);
//!     x * x
//! });
//! assert_eq!(squares[7], 49);
//! ```

pub mod cancel;
pub mod deque;
pub mod gate;
pub mod pool;
pub mod round;

pub use cancel::CancelToken;
pub use deque::StealDeque;
pub use gate::{AdmissionGate, ClientQuotas, Permit, QuotaPolicy};
pub use pool::{panic_message, run_ordered, JobFailure, Pool, PoolStats};
pub use round::{RoundExecutor, RoundStats};
