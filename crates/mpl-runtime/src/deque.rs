//! A mutex-guarded work-stealing deque.
//!
//! The owner pushes and pops at the back (LIFO — the most recently
//! queued job is the cache-warmest); thieves steal from the front (FIFO
//! — the oldest job, which the owner would reach last). A `Mutex` around
//! a `VecDeque` is deliberately boring: batch jobs here are whole
//! program analyses (micro- to milliseconds), so lock traffic is noise
//! and the lock-free Chase–Lev machinery (and its external crate) is not
//! worth carrying.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A two-ended job queue shared between one owner and any number of
/// thieves.
#[derive(Debug, Default)]
pub struct StealDeque<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> StealDeque<T> {
    /// An empty deque.
    #[must_use]
    pub fn new() -> StealDeque<T> {
        StealDeque {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Queues a job at the owner end.
    pub fn push(&self, job: T) {
        self.lock().push_back(job);
    }

    /// Takes the most recently queued job (owner end).
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_back()
    }

    /// Steals the oldest queued job (thief end).
    pub fn steal(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True if no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        // A poisoned queue only happens if a holder panicked between
        // push/pop; the queue itself is still structurally sound, and the
        // pool propagates the worker panic anyway.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let q = StealDeque::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.steal(), Some(1), "thief takes the oldest");
        assert_eq!(q.pop(), Some(3), "owner takes the newest");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.steal(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn shared_across_threads() {
        let q = StealDeque::new();
        for i in 0..64 {
            q.push(i);
        }
        let taken: Vec<i32> = std::thread::scope(|s| {
            let thief = s.spawn(|| {
                let mut got = Vec::new();
                while let Some(v) = q.steal() {
                    got.push(v);
                }
                got
            });
            let mut got = Vec::new();
            while let Some(v) = q.pop() {
                got.push(v);
            }
            got.extend(thief.join().unwrap());
            got
        });
        assert_eq!(taken.len(), 64, "every job taken exactly once");
        let mut sorted = taken;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }
}
