//! Cooperative cancellation: a shared flag plus an optional deadline.
//!
//! A [`CancelToken`] is the runtime's answer to jobs that never finish on
//! their own: the batch layer hands one to every job, and long-running
//! loops (the engine worklist, injected fault spins) poll it at a bounded
//! interval. Cancellation is *cooperative* — nothing is killed; the
//! observer is expected to stop with a sound "gave up" answer (the
//! analysis returns ⊤, never a partial verdict).
//!
//! The hot-path check is one relaxed-ish atomic load; the deadline clock
//! is consulted only until it first expires, after which the expiry is
//! latched into the flag and later checks are pure atomic reads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cancellation handle shared between a controller (who may
/// call [`CancelToken::cancel`]) and any number of observers (who poll
/// [`CancelToken::is_cancelled`]). Tokens may also carry a deadline set
/// at construction: once the deadline passes, the token behaves exactly
/// as if `cancel()` had been called.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; it only cancels when told to.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that auto-cancels `timeout` from now.
    #[must_use]
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(timeout),
            }),
        }
    }

    /// Requests cancellation. Idempotent; observers see it on their next
    /// poll.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once the token has been cancelled or its deadline has
    /// passed. Expiry is latched, so after the first `true` the check is
    /// a single atomic load.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The instant this token auto-cancels, if it has a deadline.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.deadline().is_none());
    }

    #[test]
    fn cancel_is_visible_to_clones() {
        let token = CancelToken::new();
        let observer = token.clone();
        token.cancel();
        assert!(observer.is_cancelled());
    }

    #[test]
    fn deadline_expires_and_latches() {
        let token = CancelToken::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(token.is_cancelled());
        // Latched: still cancelled on every later poll.
        assert!(token.is_cancelled());
    }

    #[test]
    fn long_deadline_does_not_fire_early() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let observer = token.clone();
        let waiter = std::thread::spawn(move || {
            while !observer.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(waiter.join().unwrap());
    }
}
