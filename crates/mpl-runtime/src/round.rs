//! The parallel round executor: deterministic fan-out of one frontier
//! round across pool workers.
//!
//! The analysis engine drains its ready worklist into a *frontier* — an
//! ordered batch of independent work items — once per round. This module
//! dispatches such a batch over a [`Pool`](crate::Pool) while preserving
//! two invariants the engine's byte-determinism rests on:
//!
//! * **Submission-order results.** Every item writes its result into a
//!   slot indexed by its frontier position (the same
//!   submission-indexed-slot trick `Pool::run_ordered` uses), so the
//!   caller merges results in exactly the order a sequential run would
//!   have produced them — for any worker count.
//! * **Per-group serialization.** Items carry a group key (the engine
//!   uses the interned pCFG `LocationKey`); items sharing a key are
//!   bundled into one pool job and run in frontier order on one worker.
//!   Work at one location is therefore never concurrent with itself,
//!   while distinct locations fan out freely.
//!
//! Panics are isolated per job ([`Pool::run_ordered_isolated`]): a
//! panicking item poisons its group's remaining slots with the same
//! structured [`JobFailure`] rather than hanging the round.

use std::collections::HashMap;

use crate::pool::{JobFailure, Pool};

/// Occupancy counters for one round, for the engine profile.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct RoundStats {
    /// Items in the round's frontier.
    pub items: usize,
    /// Distinct group keys (pool jobs dispatched).
    pub groups: usize,
    /// Worker threads that ran jobs (0 = inline on the caller).
    pub workers: usize,
    /// Jobs obtained by work stealing rather than a worker's own deque.
    pub steals: u64,
}

/// A round executor borrowing a worker pool.
///
/// Thin by design: rounds are frequent and small, so the executor keeps
/// no state of its own beyond the pool handle.
pub struct RoundExecutor {
    pool: Pool,
}

impl RoundExecutor {
    /// An executor over `workers` threads (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> RoundExecutor {
        RoundExecutor {
            pool: Pool::new(workers),
        }
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Runs one frontier round: `items` are `(group_key, payload)`
    /// pairs in frontier order; `f(index, payload)` does the work.
    ///
    /// Returns one result slot per item, in frontier order, plus the
    /// round's occupancy stats. Items sharing a `group_key` execute
    /// sequentially (in frontier order) within one pool job; a panic in
    /// an item fails every not-yet-finished item of its group with the
    /// same [`JobFailure`].
    pub fn run_round<T, R, F>(
        &self,
        items: Vec<(u64, T)>,
        f: F,
    ) -> (Vec<Result<R, JobFailure>>, RoundStats)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        // Group by key, first-appearance order, keeping frontier indices.
        let mut group_of: HashMap<u64, usize> = HashMap::new();
        let mut jobs: Vec<Vec<(usize, T)>> = Vec::new();
        for (idx, (key, payload)) in items.into_iter().enumerate() {
            let g = *group_of.entry(key).or_insert_with(|| {
                jobs.push(Vec::new());
                jobs.len() - 1
            });
            jobs[g].push((idx, payload));
        }
        let groups = jobs.len();
        let (job_results, pool_stats) = self.pool.run_ordered_isolated(jobs, |_, group| {
            group
                .into_iter()
                .map(|(idx, payload)| (idx, f(idx, payload)))
                .collect::<Vec<(usize, R)>>()
        });
        // Scatter group results back to frontier-indexed slots. A failed
        // group poisons all of its slots (partial results are discarded
        // with it: the merge must not observe half a group).
        let mut slots: Vec<Option<Result<R, JobFailure>>> = (0..n).map(|_| None).collect();
        let mut failed: Vec<(usize, JobFailure)> = Vec::new();
        for (g, outcome) in job_results.into_iter().enumerate() {
            match outcome {
                Ok(pairs) => {
                    for (idx, r) in pairs {
                        slots[idx] = Some(Ok(r));
                    }
                }
                Err(failure) => failed.push((g, failure)),
            }
        }
        for (_, failure) in &failed {
            for slot in slots.iter_mut().filter(|s| s.is_none()) {
                *slot = Some(Err(failure.clone()));
            }
        }
        let results = slots
            .into_iter()
            .map(|s| s.expect("every frontier slot filled"))
            .collect();
        let stats = RoundStats {
            items: n,
            groups,
            workers: pool_stats.workers,
            steals: pool_stats.steals,
        };
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_frontier_order() {
        let exec = RoundExecutor::new(4);
        let items: Vec<(u64, usize)> = (0..64).map(|i| (i as u64 % 7, i)).collect();
        let (results, stats) = exec.run_round(items, |idx, x| {
            assert_eq!(idx, x);
            x * 10
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().expect("ok"), i * 10);
        }
        assert_eq!(stats.items, 64);
        assert_eq!(stats.groups, 7);
    }

    #[test]
    fn same_group_runs_in_frontier_order() {
        let exec = RoundExecutor::new(4);
        // All items share one group: they must run strictly in order.
        let seen = AtomicUsize::new(0);
        let items: Vec<(u64, usize)> = (0..32).map(|i| (0, i)).collect();
        let (results, stats) = exec.run_round(items, |_, x| {
            assert_eq!(seen.fetch_add(1, Ordering::SeqCst), x, "order within group");
            x
        });
        assert_eq!(results.len(), 32);
        assert_eq!(stats.groups, 1);
    }

    #[test]
    fn panic_poisons_the_group_not_the_round() {
        let exec = RoundExecutor::new(2);
        // Group 1 panics at its second item; group 0 must still finish.
        let items: Vec<(u64, usize)> = vec![(0, 0), (1, 1), (0, 2), (1, 3)];
        let (results, _) = exec.run_round(items, |_, x| {
            if x == 3 {
                panic!("injected failure at {x}");
            }
            x
        });
        assert_eq!(*results[0].as_ref().expect("group 0"), 0);
        assert_eq!(*results[2].as_ref().expect("group 0"), 2);
        // The whole group is poisoned — including its already-computed
        // earlier item, whose partial result died with the job.
        for idx in [1, 3] {
            let failure = results[idx].as_ref().expect_err("poisoned slot");
            assert!(failure.message.contains("injected failure at 3"));
        }
    }

    #[test]
    fn single_worker_runs_inline() {
        let exec = RoundExecutor::new(1);
        let (results, stats) = exec.run_round(vec![(9u64, 5usize)], |_, x| x + 1);
        assert_eq!(*results[0].as_ref().expect("ok"), 6);
        assert_eq!(stats.workers, 0, "inline fast path");
    }
}
