//! Sequential constant propagation — the "traditional analysis" baseline
//! the paper's Fig 2 argues against: because it analyzes one process in
//! isolation, every received value is unknown, so it cannot prove that
//! both processes of Fig 2 print `5`. The parallel framework in
//! `mpl-core` can; comparing the two quantifies the precision gained by
//! communication sensitivity.

use std::collections::BTreeMap;

use mpl_lang::ast::{BinOp, Expr, UnOp};

use crate::dataflow::{solve_forward, ForwardAnalysis, JoinSemiLattice};
use crate::graph::{Cfg, CfgNode, CfgNodeId, EdgeKind};

/// The flat constant lattice over the variables of one process:
/// `Some(c)` = proven constant, `None` = unknown. Missing = unassigned.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ConstFact {
    reachable: bool,
    vars: BTreeMap<String, Option<i64>>,
}

impl ConstFact {
    /// The constant value of `name` at this point, if proven.
    #[must_use]
    pub fn const_of(&self, name: &str) -> Option<i64> {
        self.vars.get(name).copied().flatten()
    }

    /// True if this program point is reachable.
    #[must_use]
    pub fn is_reachable(&self) -> bool {
        self.reachable
    }
}

impl JoinSemiLattice for ConstFact {
    fn join(&mut self, other: &Self) -> bool {
        if !other.reachable {
            return false;
        }
        if !self.reachable {
            *self = other.clone();
            return true;
        }
        let mut changed = false;
        for (k, v) in &other.vars {
            match self.vars.get(k) {
                None => {
                    self.vars.insert(k.clone(), *v);
                    changed = true;
                }
                Some(cur) if cur != v && cur.is_some() => {
                    self.vars.insert(k.clone(), None);
                    changed = true;
                }
                _ => {}
            }
        }
        for (k, v) in self.vars.clone() {
            if v.is_some() && !other.vars.contains_key(&k) {
                self.vars.insert(k, None);
                changed = true;
            }
        }
        changed
    }
}

/// The sequential constant-propagation analysis. `id` and `np` are
/// unknown (the analysis models an arbitrary process), and so is every
/// received value — the precision gap the pCFG framework closes.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeqConstProp;

fn eval(e: &Expr, env: &BTreeMap<String, Option<i64>>) -> Option<i64> {
    match e {
        Expr::Int(n) => Some(*n),
        Expr::Bool(b) => Some(i64::from(*b)),
        Expr::Var(v) => env.get(v).copied().flatten(),
        Expr::Id | Expr::Np => None,
        Expr::Unary(UnOp::Neg, e) => eval(e, env).map(|v| -v),
        Expr::Unary(UnOp::Not, e) => eval(e, env).map(|v| i64::from(v == 0)),
        Expr::Binary(op, l, r) => {
            let (l, r) = (eval(l, env)?, eval(r, env)?);
            match op {
                BinOp::Add => Some(l + r),
                BinOp::Sub => Some(l - r),
                BinOp::Mul => Some(l * r),
                BinOp::Div => (r != 0).then(|| l.div_euclid(r)),
                BinOp::Mod => (r != 0).then(|| l.rem_euclid(r)),
                BinOp::Eq => Some(i64::from(l == r)),
                BinOp::Ne => Some(i64::from(l != r)),
                BinOp::Lt => Some(i64::from(l < r)),
                BinOp::Le => Some(i64::from(l <= r)),
                BinOp::Gt => Some(i64::from(l > r)),
                BinOp::Ge => Some(i64::from(l >= r)),
                BinOp::And => Some(i64::from(l != 0 && r != 0)),
                BinOp::Or => Some(i64::from(l != 0 || r != 0)),
            }
        }
    }
}

impl ForwardAnalysis for SeqConstProp {
    type Fact = ConstFact;

    fn boundary(&self) -> ConstFact {
        ConstFact {
            reachable: true,
            vars: BTreeMap::new(),
        }
    }

    fn bottom(&self) -> ConstFact {
        ConstFact::default()
    }

    fn transfer(&self, cfg: &Cfg, node: CfgNodeId, _kind: EdgeKind, fact: &ConstFact) -> ConstFact {
        let mut out = fact.clone();
        match cfg.node(node) {
            CfgNode::Assign { name, value } => {
                let v = eval(value, &fact.vars);
                out.vars.insert(name.clone(), v);
            }
            // Sequentially, a received value could be anything.
            CfgNode::Recv { var, .. } => {
                out.vars.insert(var.clone(), None);
            }
            _ => {}
        }
        out
    }
}

/// Runs sequential constant propagation and returns the fact *entering*
/// each node.
///
/// ```
/// use mpl_cfg::{seq_constprop::solve_seq_constprop, Cfg};
/// let cfg = Cfg::build(&mpl_lang::parse_program("x := 2; y := x * 3;")?);
/// let facts = solve_seq_constprop(&cfg);
/// assert_eq!(facts[cfg.exit().0 as usize].const_of("y"), Some(6));
/// # Ok::<(), mpl_lang::ParseError>(())
/// ```
#[must_use]
pub fn solve_seq_constprop(cfg: &Cfg) -> Vec<ConstFact> {
    solve_forward(cfg, &SeqConstProp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::parse_program;

    fn facts_at_print(src: &str) -> ConstFact {
        let cfg = Cfg::build(&parse_program(src).unwrap());
        let facts = solve_seq_constprop(&cfg);
        let print = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id), CfgNode::Print(_)))
            .expect("print node");
        facts[print.0 as usize].clone()
    }

    #[test]
    fn folds_straight_line_arithmetic() {
        let f = facts_at_print("x := 2; y := x * 3 + 1; print y;");
        assert_eq!(f.const_of("y"), Some(7));
        assert!(f.is_reachable());
    }

    #[test]
    fn fig2_receive_is_unknown_sequentially() {
        // The motivating gap: the parallel analysis proves y = 5 here.
        let f = facts_at_print("x := 5; send x -> 1; recv y <- 1; print y;");
        assert_eq!(f.const_of("x"), Some(5));
        assert_eq!(f.const_of("y"), None);
    }

    #[test]
    fn id_and_np_are_unknown() {
        let f = facts_at_print("x := id; y := np; print x;");
        assert_eq!(f.const_of("x"), None);
        assert_eq!(f.const_of("y"), None);
    }

    #[test]
    fn branch_join_loses_disagreeing_constants() {
        let f = facts_at_print("if id = 0 then x := 1; else x := 2; end print x;");
        assert_eq!(f.const_of("x"), None);
        let f = facts_at_print("if id = 0 then x := 3; else x := 3; end print x;");
        assert_eq!(f.const_of("x"), Some(3));
    }
}
