//! SCC condensation and reverse-postorder priorities for scheduling.
//!
//! The worklist scheduler explores pCFG states in FIFO order by default,
//! but a classic dataflow heuristic (and the ordering both reference
//! parallel-dataflow implementations use) is to drive the worklist in
//! reverse postorder over the *condensation* of the CFG: strongly
//! connected components (loop nests) are collapsed to single scheduling
//! units, units are ranked topologically, and work at an earlier unit is
//! preferred so facts flow forward before a loop is re-entered.
//!
//! [`SccRanks`] computes that ranking once per CFG with an iterative
//! Tarjan pass (no recursion, so deep straight-line CFGs cannot overflow
//! the stack) followed by a reverse postorder walk of the condensation.
//! Nodes in the same SCC share a rank; a node with a smaller rank should
//! be scheduled earlier.

use crate::graph::{Cfg, CfgNodeId};

/// Reverse-postorder ranks over the SCC condensation of a [`Cfg`].
#[derive(Debug, Clone)]
pub struct SccRanks {
    /// `rank[node.0]` — the scheduling priority of each CFG node
    /// (smaller = earlier). Nodes unreachable from the entry share the
    /// maximum rank so they sort after all reachable work.
    rank: Vec<u32>,
    /// Number of strongly connected components found.
    scc_count: usize,
}

impl SccRanks {
    /// Computes SCC condensation reverse-postorder ranks for `cfg`.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> SccRanks {
        let n = cfg.node_count();
        let comp = tarjan_components(cfg);
        let scc_count = comp.count;
        // Condensation edges: component of u -> component of v for every
        // CFG edge u -> v crossing components.
        let mut cedges: Vec<Vec<usize>> = vec![Vec::new(); scc_count];
        for id in cfg.node_ids() {
            let cu = comp.of[id.0 as usize];
            for &(_, succ) in cfg.succs(id) {
                let cv = comp.of[succ.0 as usize];
                if cu != cv {
                    cedges[cu].push(cv);
                }
            }
        }
        // Reverse postorder over the condensation, rooted at the entry's
        // component. The condensation is a DAG, so an iterative DFS with
        // an explicit "children done" marker yields a postorder directly.
        let root = comp.of[cfg.entry().0 as usize];
        let mut post: Vec<usize> = Vec::with_capacity(scc_count);
        let mut visited = vec![false; scc_count];
        let mut stack: Vec<(usize, bool)> = vec![(root, false)];
        while let Some((c, done)) = stack.pop() {
            if done {
                post.push(c);
                continue;
            }
            if visited[c] {
                continue;
            }
            visited[c] = true;
            stack.push((c, true));
            // Push successors in reverse so the first edge is explored
            // first — a fixed, deterministic order.
            for &s in cedges[c].iter().rev() {
                if !visited[s] {
                    stack.push((s, false));
                }
            }
        }
        // post is postorder; reverse it for the ranking.
        let unreachable_rank = u32::try_from(post.len()).expect("rank overflow");
        let mut comp_rank = vec![unreachable_rank; scc_count];
        for (i, &c) in post.iter().rev().enumerate() {
            comp_rank[c] = u32::try_from(i).expect("rank overflow");
        }
        let rank = (0..n).map(|i| comp_rank[comp.of[i]]).collect();
        SccRanks { rank, scc_count }
    }

    /// The scheduling rank of `node` (smaller = scheduled earlier).
    #[must_use]
    pub fn rank(&self, node: CfgNodeId) -> u32 {
        self.rank[node.0 as usize]
    }

    /// Number of strongly connected components in the CFG.
    #[must_use]
    pub fn scc_count(&self) -> usize {
        self.scc_count
    }

    /// The per-node rank table, indexed by `CfgNodeId.0`.
    #[must_use]
    pub fn table(&self) -> &[u32] {
        &self.rank
    }
}

struct Components {
    /// Node index → component index.
    of: Vec<usize>,
    count: usize,
}

/// Iterative Tarjan: components are numbered in completion order (which
/// is deterministic for a given CFG), every node reachable from entry is
/// assigned; unreachable nodes get singleton components afterwards.
fn tarjan_components(cfg: &Cfg) -> Components {
    const UNSET: usize = usize::MAX;
    let n = cfg.node_count();
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut comp = vec![UNSET; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut count = 0usize;

    // Explicit DFS frames: (node, next successor position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    let roots: Vec<usize> = std::iter::once(cfg.entry().0 as usize)
        .chain(0..n)
        .collect();
    for root in roots {
        if index[root] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let succs = cfg.succs(CfgNodeId(u32::try_from(v).expect("node id")));
            if *pos < succs.len() {
                let w = succs[*pos].1 .0 as usize;
                *pos += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
                continue;
            }
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                lowlink[parent] = lowlink[parent].min(lowlink[v]);
            }
            if lowlink[v] == index[v] {
                loop {
                    let w = stack.pop().expect("tarjan stack");
                    on_stack[w] = false;
                    comp[w] = count;
                    if w == v {
                        break;
                    }
                }
                count += 1;
            }
        }
    }
    Components { of: comp, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cfg;
    use mpl_lang::parse_program;

    fn ranks_of(source: &str) -> (Cfg, SccRanks) {
        let program = parse_program(source).expect("parse");
        let cfg = Cfg::build(&program);
        let ranks = SccRanks::compute(&cfg);
        (cfg, ranks)
    }

    #[test]
    fn straight_line_ranks_are_strictly_topological() {
        let (cfg, ranks) = ranks_of("x := 1;\ny := x + 1;\nprint y;\n");
        // No cycles: every edge goes from a smaller to a larger rank.
        for id in cfg.node_ids() {
            for &(_, succ) in cfg.succs(id) {
                assert!(
                    ranks.rank(id) < ranks.rank(succ),
                    "edge {id:?} -> {succ:?} not topological"
                );
            }
        }
        assert_eq!(ranks.scc_count(), cfg.node_count());
        assert_eq!(ranks.rank(cfg.entry()), 0);
    }

    #[test]
    fn loop_bodies_collapse_to_one_unit() {
        let (cfg, ranks) = ranks_of("i := 0;\nwhile i < np do\n  i := i + 1;\nend\nprint i;\n");
        // The loop header and body share one SCC (equal ranks); the exit
        // side of the loop ranks strictly after it.
        let mut loop_rank = None;
        for id in cfg.node_ids() {
            for &(_, succ) in cfg.succs(id) {
                if ranks.rank(succ) < ranks.rank(id) {
                    panic!("back edge {id:?} -> {succ:?} escapes its SCC");
                }
                if ranks.rank(succ) == ranks.rank(id) {
                    loop_rank = Some(ranks.rank(id));
                }
            }
        }
        let loop_rank = loop_rank.expect("loop produces an SCC of >1 node");
        assert!(ranks.rank(cfg.exit()) > loop_rank);
        assert!(ranks.scc_count() < cfg.node_count());
    }

    #[test]
    fn ranks_are_deterministic() {
        let src = "i := 0;\nwhile i < np do\n  i := i + 1;\nend\nprint i;\n";
        let (cfg, a) = ranks_of(src);
        let (_, b) = ranks_of(src);
        for id in cfg.node_ids() {
            assert_eq!(a.rank(id), b.rank(id));
        }
    }
}
