//! Graphviz (DOT) export for CFGs — handy when debugging analyses.

use std::fmt::Write as _;

use crate::graph::{Cfg, EdgeKind};

/// Renders `cfg` as a Graphviz `digraph`.
///
/// ```
/// use mpl_cfg::{dot::to_dot, Cfg};
/// let cfg = Cfg::build(&mpl_lang::parse_program("x := 1;")?);
/// let dot = to_dot(&cfg, "example");
/// assert!(dot.starts_with("digraph example"));
/// # Ok::<(), mpl_lang::ParseError>(())
/// ```
#[must_use]
pub fn to_dot(cfg: &Cfg, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for id in cfg.node_ids() {
        let label = cfg.node(id).to_string().replace('"', "\\\"");
        let _ = writeln!(out, "  {id} [label=\"{id}: {label}\"];");
    }
    for id in cfg.node_ids() {
        for &(kind, succ) in cfg.succs(id) {
            match kind {
                EdgeKind::Seq => {
                    let _ = writeln!(out, "  {id} -> {succ};");
                }
                EdgeKind::True | EdgeKind::False => {
                    let _ = writeln!(out, "  {id} -> {succ} [label=\"{kind}\"];");
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Cfg;
    use mpl_lang::parse_program;

    #[test]
    fn dot_output_contains_all_nodes_and_edge_labels() {
        let cfg = Cfg::build(&parse_program("if id = 0 then send 1 -> 1; end").unwrap());
        let dot = to_dot(&cfg, "g");
        assert!(dot.contains("digraph g {"));
        assert!(dot.contains("send 1 -> 1"));
        assert!(dot.contains("[label=\"T\"]"));
        assert!(dot.contains("[label=\"F\"]"));
        // One line per node.
        for id in cfg.node_ids() {
            assert!(dot.contains(&format!("{id} [label=")));
        }
    }

    #[test]
    fn dot_escapes_quotes() {
        // No MPL construct produces quotes today, but the escape path must
        // not corrupt output.
        let cfg = Cfg::build(&parse_program("x := 1;").unwrap());
        let dot = to_dot(&cfg, "q");
        assert!(!dot.contains("\\\"\\\""));
    }
}
