//! CFG representation and construction from the MPL AST.

use std::fmt;

use mpl_lang::ast::{BinOp, Expr, Program, Stmt, StmtKind};
use mpl_lang::token::Span;

/// An index identifying a node of a [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CfgNodeId(pub u32);

impl fmt::Display for CfgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The statement (or pseudo-statement) a CFG node executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgNode {
    /// Program entry; the unique starting node of every process.
    Entry,
    /// Program exit; the paper's `End` node. Process sets that reach it
    /// block there until the end of the analysis.
    Exit,
    /// `name := value`
    Assign { name: String, value: Expr },
    /// A two-way branch on `cond`; successors are labelled
    /// [`EdgeKind::True`] and [`EdgeKind::False`].
    Branch { cond: Expr },
    /// `send value -> dest`
    Send { value: Expr, dest: Expr },
    /// `recv var <- src`
    Recv { var: String, src: Expr },
    /// `print expr`
    Print(Expr),
    /// `assume expr` — a fact the analysis may incorporate.
    Assume(Expr),
    /// `skip`
    Skip,
}

impl CfgNode {
    /// True if this node is a communication operation (the paper's
    /// `isCommOp`).
    #[must_use]
    pub fn is_comm_op(&self) -> bool {
        matches!(self, CfgNode::Send { .. } | CfgNode::Recv { .. })
    }
}

impl fmt::Display for CfgNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgNode::Entry => f.write_str("entry"),
            CfgNode::Exit => f.write_str("exit"),
            CfgNode::Assign { name, value } => write!(f, "{name} := {value}"),
            CfgNode::Branch { cond } => write!(f, "branch {cond}"),
            CfgNode::Send { value, dest } => write!(f, "send {value} -> {dest}"),
            CfgNode::Recv { var, src } => write!(f, "recv {var} <- {src}"),
            CfgNode::Print(e) => write!(f, "print {e}"),
            CfgNode::Assume(e) => write!(f, "assume {e}"),
            CfgNode::Skip => f.write_str("skip"),
        }
    }
}

/// The label on a CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Unconditional fall-through.
    Seq,
    /// Branch taken (condition true).
    True,
    /// Branch not taken (condition false).
    False,
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeKind::Seq => f.write_str(""),
            EdgeKind::True => f.write_str("T"),
            EdgeKind::False => f.write_str("F"),
        }
    }
}

/// A control-flow graph for an MPL program.
///
/// Node 0 is always [`CfgNode::Entry`] and node 1 is always
/// [`CfgNode::Exit`]. `for` loops are desugared into an initializing
/// assignment, a `while`-style branch on `var <= bound`, and an increment
/// — exactly the loop structure the paper's Figure 5 walk-through assumes
/// (`i = np` holds on the loop's exit edge by combining the entry and exit
/// branch conditions).
#[derive(Debug, Clone)]
pub struct Cfg {
    nodes: Vec<CfgNode>,
    spans: Vec<Span>,
    succs: Vec<Vec<(EdgeKind, CfgNodeId)>>,
    preds: Vec<Vec<(EdgeKind, CfgNodeId)>>,
}

/// The entry node id (always 0).
pub const ENTRY: CfgNodeId = CfgNodeId(0);
/// The exit node id (always 1).
pub const EXIT: CfgNodeId = CfgNodeId(1);

impl Cfg {
    /// Builds the CFG for `program`.
    #[must_use]
    pub fn build(program: &Program) -> Cfg {
        let mut cfg = Cfg {
            nodes: Vec::new(),
            spans: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
        };
        let entry = cfg.add_node(CfgNode::Entry, Span::default());
        let exit = cfg.add_node(CfgNode::Exit, Span::default());
        debug_assert_eq!(entry, ENTRY);
        debug_assert_eq!(exit, EXIT);
        let last = cfg.lower_block(&program.stmts, entry, EdgeKind::Seq);
        let (from, kind) = last;
        cfg.add_edge(from, kind, exit);
        cfg
    }

    fn add_node(&mut self, node: CfgNode, span: Span) -> CfgNodeId {
        let id = CfgNodeId(u32::try_from(self.nodes.len()).expect("CFG too large"));
        self.nodes.push(node);
        self.spans.push(span);
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());
        id
    }

    fn add_edge(&mut self, from: CfgNodeId, kind: EdgeKind, to: CfgNodeId) {
        self.succs[from.0 as usize].push((kind, to));
        self.preds[to.0 as usize].push((kind, from));
    }

    /// Lowers a statement block. `pred`/`kind` describe the dangling edge
    /// entering the block; returns the dangling edge leaving it.
    fn lower_block(
        &mut self,
        stmts: &[Stmt],
        mut pred: CfgNodeId,
        mut kind: EdgeKind,
    ) -> (CfgNodeId, EdgeKind) {
        for stmt in stmts {
            let (p, k) = self.lower_stmt(stmt, pred, kind);
            pred = p;
            kind = k;
        }
        (pred, kind)
    }

    fn lower_stmt(
        &mut self,
        stmt: &Stmt,
        pred: CfgNodeId,
        kind: EdgeKind,
    ) -> (CfgNodeId, EdgeKind) {
        match &stmt.kind {
            StmtKind::Assign { name, value } => {
                let n = self.add_node(
                    CfgNode::Assign {
                        name: name.clone(),
                        value: value.clone(),
                    },
                    stmt.span,
                );
                self.add_edge(pred, kind, n);
                (n, EdgeKind::Seq)
            }
            StmtKind::Send { value, dest } => {
                let n = self.add_node(
                    CfgNode::Send {
                        value: value.clone(),
                        dest: dest.clone(),
                    },
                    stmt.span,
                );
                self.add_edge(pred, kind, n);
                (n, EdgeKind::Seq)
            }
            StmtKind::Recv { var, src } => {
                let n = self.add_node(
                    CfgNode::Recv {
                        var: var.clone(),
                        src: src.clone(),
                    },
                    stmt.span,
                );
                self.add_edge(pred, kind, n);
                (n, EdgeKind::Seq)
            }
            StmtKind::Print(e) => {
                let n = self.add_node(CfgNode::Print(e.clone()), stmt.span);
                self.add_edge(pred, kind, n);
                (n, EdgeKind::Seq)
            }
            StmtKind::Assume(e) => {
                let n = self.add_node(CfgNode::Assume(e.clone()), stmt.span);
                self.add_edge(pred, kind, n);
                (n, EdgeKind::Seq)
            }
            StmtKind::Skip => {
                let n = self.add_node(CfgNode::Skip, stmt.span);
                self.add_edge(pred, kind, n);
                (n, EdgeKind::Seq)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let b = self.add_node(CfgNode::Branch { cond: cond.clone() }, stmt.span);
                self.add_edge(pred, kind, b);
                // Join node so both arms re-converge at a single point.
                let join = self.add_node(CfgNode::Skip, stmt.span);
                let (tp, tk) = self.lower_block(then_branch, b, EdgeKind::True);
                self.add_edge(tp, tk, join);
                let (ep, ek) = self.lower_block(else_branch, b, EdgeKind::False);
                self.add_edge(ep, ek, join);
                (join, EdgeKind::Seq)
            }
            StmtKind::While { cond, body } => {
                let b = self.add_node(CfgNode::Branch { cond: cond.clone() }, stmt.span);
                self.add_edge(pred, kind, b);
                let (bp, bk) = self.lower_block(body, b, EdgeKind::True);
                self.add_edge(bp, bk, b);
                (b, EdgeKind::False)
            }
            StmtKind::For {
                var,
                from,
                to,
                body,
            } => {
                // Desugar: var := from; while var <= to do body; var := var + 1; end
                let init = self.add_node(
                    CfgNode::Assign {
                        name: var.clone(),
                        value: from.clone(),
                    },
                    stmt.span,
                );
                self.add_edge(pred, kind, init);
                let cond = Expr::binary(BinOp::Le, Expr::var(var.clone()), to.clone());
                let b = self.add_node(CfgNode::Branch { cond }, stmt.span);
                self.add_edge(init, EdgeKind::Seq, b);
                let (bp, bk) = self.lower_block(body, b, EdgeKind::True);
                let inc = self.add_node(
                    CfgNode::Assign {
                        name: var.clone(),
                        value: Expr::binary(BinOp::Add, Expr::var(var.clone()), Expr::Int(1)),
                    },
                    stmt.span,
                );
                self.add_edge(bp, bk, inc);
                self.add_edge(inc, EdgeKind::Seq, b);
                (b, EdgeKind::False)
            }
        }
    }

    /// The entry node id.
    #[must_use]
    pub fn entry(&self) -> CfgNodeId {
        ENTRY
    }

    /// The exit node id.
    #[must_use]
    pub fn exit(&self) -> CfgNodeId {
        EXIT
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The statement at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    #[must_use]
    pub fn node(&self, id: CfgNodeId) -> &CfgNode {
        &self.nodes[id.0 as usize]
    }

    /// The source span of the statement at `id` (empty for entry/exit and
    /// synthesized nodes).
    #[must_use]
    pub fn span(&self, id: CfgNodeId) -> Span {
        self.spans[id.0 as usize]
    }

    /// Outgoing edges of `id`.
    #[must_use]
    pub fn succs(&self, id: CfgNodeId) -> &[(EdgeKind, CfgNodeId)] {
        &self.succs[id.0 as usize]
    }

    /// Incoming edges of `id`.
    #[must_use]
    pub fn preds(&self, id: CfgNodeId) -> &[(EdgeKind, CfgNodeId)] {
        &self.preds[id.0 as usize]
    }

    /// Iterates over all node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = CfgNodeId> + '_ {
        (0..self.nodes.len()).map(|i| CfgNodeId(i as u32))
    }

    /// The unique successor of a non-branch node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not have exactly one successor.
    #[must_use]
    pub fn sole_succ(&self, id: CfgNodeId) -> CfgNodeId {
        let succs = self.succs(id);
        assert_eq!(
            succs.len(),
            1,
            "node {id} ({}) has {} successors",
            self.node(id),
            succs.len()
        );
        succs[0].1
    }

    /// The successor reached along the edge labelled `kind` out of a
    /// branch node, if any.
    #[must_use]
    pub fn succ_along(&self, id: CfgNodeId, kind: EdgeKind) -> Option<CfgNodeId> {
        self.succs(id)
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, t)| t)
    }

    /// All send and receive node ids.
    #[must_use]
    pub fn comm_nodes(&self) -> Vec<CfgNodeId> {
        self.node_ids()
            .filter(|&id| self.node(id).is_comm_op())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::parse_program;

    fn cfg_of(src: &str) -> Cfg {
        Cfg::build(&parse_program(src).unwrap())
    }

    #[test]
    fn straight_line_chains_to_exit() {
        let cfg = cfg_of("x := 1; y := 2;");
        // entry -> assign -> assign -> exit
        let a = cfg.sole_succ(cfg.entry());
        assert!(matches!(cfg.node(a), CfgNode::Assign { name, .. } if name == "x"));
        let b = cfg.sole_succ(a);
        assert!(matches!(cfg.node(b), CfgNode::Assign { name, .. } if name == "y"));
        assert_eq!(cfg.sole_succ(b), cfg.exit());
    }

    #[test]
    fn empty_program_connects_entry_to_exit() {
        let cfg = cfg_of("");
        assert_eq!(cfg.sole_succ(cfg.entry()), cfg.exit());
        assert_eq!(cfg.node_count(), 2);
    }

    #[test]
    fn if_has_true_false_edges_and_join() {
        let cfg = cfg_of("if id = 0 then x := 1; else x := 2; end");
        let b = cfg.sole_succ(cfg.entry());
        assert!(matches!(cfg.node(b), CfgNode::Branch { .. }));
        let t = cfg.succ_along(b, EdgeKind::True).unwrap();
        let f = cfg.succ_along(b, EdgeKind::False).unwrap();
        assert!(matches!(cfg.node(t), CfgNode::Assign { .. }));
        assert!(matches!(cfg.node(f), CfgNode::Assign { .. }));
        // Both arms rejoin at the same node.
        assert_eq!(cfg.sole_succ(t), cfg.sole_succ(f));
    }

    #[test]
    fn if_without_else_false_edge_reaches_join() {
        let cfg = cfg_of("if id = 0 then x := 1; end y := 2;");
        let b = cfg.sole_succ(cfg.entry());
        let f = cfg.succ_along(b, EdgeKind::False).unwrap();
        // False edge goes directly to the join skip node.
        assert!(matches!(cfg.node(f), CfgNode::Skip));
    }

    #[test]
    fn while_loop_has_back_edge() {
        let cfg = cfg_of("while x < 3 do x := x + 1; end");
        let b = cfg.sole_succ(cfg.entry());
        assert!(matches!(cfg.node(b), CfgNode::Branch { .. }));
        let body = cfg.succ_along(b, EdgeKind::True).unwrap();
        // Body's successor loops back to the branch.
        assert_eq!(cfg.sole_succ(body), b);
        // False edge exits.
        assert_eq!(cfg.succ_along(b, EdgeKind::False).unwrap(), cfg.exit());
    }

    #[test]
    fn for_loop_desugars_to_init_branch_increment() {
        let cfg = cfg_of("for i = 1 to np - 1 do send 0 -> i; end");
        let init = cfg.sole_succ(cfg.entry());
        assert!(matches!(cfg.node(init), CfgNode::Assign { name, .. } if name == "i"));
        let b = cfg.sole_succ(init);
        let CfgNode::Branch { cond } = cfg.node(b) else {
            panic!("expected branch")
        };
        assert_eq!(cond.to_string(), "(i <= (np - 1))");
        let send = cfg.succ_along(b, EdgeKind::True).unwrap();
        assert!(cfg.node(send).is_comm_op());
        let inc = cfg.sole_succ(send);
        assert!(matches!(cfg.node(inc), CfgNode::Assign { name, .. } if name == "i"));
        assert_eq!(cfg.sole_succ(inc), b);
    }

    #[test]
    fn comm_nodes_found() {
        let cfg = cfg_of("send 1 -> 0; recv x <- 2; print x;");
        assert_eq!(cfg.comm_nodes().len(), 2);
    }

    #[test]
    fn preds_mirror_succs() {
        let cfg = cfg_of("if id = 0 then send 1 -> 1; else recv x <- 0; end");
        for id in cfg.node_ids() {
            for &(kind, succ) in cfg.succs(id) {
                assert!(cfg.preds(succ).contains(&(kind, id)));
            }
        }
    }

    #[test]
    fn exit_has_no_successors() {
        let cfg = cfg_of("x := 1; if x = 1 then skip; end");
        assert!(cfg.succs(cfg.exit()).is_empty());
    }

    #[test]
    fn spans_preserved_for_diagnostics() {
        let cfg = cfg_of("x := 1;\nsend x -> 1;");
        let send = cfg.comm_nodes()[0];
        assert_eq!(cfg.span(send).line, 2);
    }
}
