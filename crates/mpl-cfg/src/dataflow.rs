//! A generic forward worklist dataflow solver over sequential CFGs.
//!
//! This is the classic framework the paper *extends*: facts flow along CFG
//! edges of a single process, with joins at merge points. It is used for
//! sequential baselines (constant propagation that must treat every `recv`
//! as unknown) against which the parallel pCFG analysis is compared.

use std::collections::VecDeque;

use crate::graph::{Cfg, CfgNodeId, EdgeKind};

/// A join-semilattice of dataflow facts.
pub trait JoinSemiLattice: Clone + PartialEq {
    /// Least upper bound. Returns `true` if `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// A forward dataflow problem over a [`Cfg`].
pub trait ForwardAnalysis {
    /// The fact attached to each CFG edge/node entry.
    type Fact: JoinSemiLattice;

    /// The fact holding at procedure entry.
    fn boundary(&self) -> Self::Fact;

    /// The fact for unreachable nodes (bottom).
    fn bottom(&self) -> Self::Fact;

    /// Transforms the fact entering `node` into the fact leaving it along
    /// an edge of kind `kind` (branch analyses may refine by outcome).
    fn transfer(&self, cfg: &Cfg, node: CfgNodeId, kind: EdgeKind, fact: &Self::Fact)
        -> Self::Fact;
}

/// Runs `analysis` to fixpoint and returns the fact holding *on entry to*
/// each node (indexed by node id).
pub fn solve_forward<A: ForwardAnalysis>(cfg: &Cfg, analysis: &A) -> Vec<A::Fact> {
    let n = cfg.node_count();
    let mut facts: Vec<A::Fact> = (0..n).map(|_| analysis.bottom()).collect();
    facts[cfg.entry().0 as usize] = analysis.boundary();

    let mut queue: VecDeque<CfgNodeId> = VecDeque::new();
    let mut queued = vec![false; n];
    queue.push_back(cfg.entry());
    queued[cfg.entry().0 as usize] = true;

    while let Some(node) = queue.pop_front() {
        queued[node.0 as usize] = false;
        let entry_fact = facts[node.0 as usize].clone();
        for &(kind, succ) in cfg.succs(node) {
            let out = analysis.transfer(cfg, node, kind, &entry_fact);
            if facts[succ.0 as usize].join(&out) && !queued[succ.0 as usize] {
                queued[succ.0 as usize] = true;
                queue.push_back(succ);
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CfgNode;
    use mpl_lang::ast::Expr;
    use mpl_lang::parse_program;
    use std::collections::BTreeMap;

    /// A tiny constant-propagation lattice for testing the solver: maps
    /// variable names to `Some(value)` (constant) or `None` (unknown).
    /// Missing variables are "unreached" (treated as constant-anything,
    /// i.e. bottom).
    #[derive(Clone, PartialEq, Debug, Default)]
    struct ConstMap {
        reachable: bool,
        vars: BTreeMap<String, Option<i64>>,
    }

    impl JoinSemiLattice for ConstMap {
        fn join(&mut self, other: &Self) -> bool {
            if !other.reachable {
                return false;
            }
            if !self.reachable {
                *self = other.clone();
                return true;
            }
            let mut changed = false;
            for (k, v) in &other.vars {
                match self.vars.get(k) {
                    None => {
                        self.vars.insert(k.clone(), *v);
                        changed = true;
                    }
                    Some(cur) if cur != v && cur.is_some() => {
                        self.vars.insert(k.clone(), None);
                        changed = true;
                    }
                    _ => {}
                }
            }
            // Variables known here but not in `other` become unknown.
            for (k, v) in self.vars.clone() {
                if v.is_some() && !other.vars.contains_key(&k) {
                    self.vars.insert(k, None);
                    changed = true;
                }
            }
            changed
        }
    }

    struct SeqConstProp;

    fn eval(e: &Expr, env: &BTreeMap<String, Option<i64>>) -> Option<i64> {
        use mpl_lang::ast::BinOp;
        match e {
            Expr::Int(n) => Some(*n),
            Expr::Bool(b) => Some(i64::from(*b)),
            Expr::Var(v) => env.get(v).copied().flatten(),
            Expr::Id | Expr::Np => None,
            Expr::Unary(mpl_lang::ast::UnOp::Neg, e) => eval(e, env).map(|v| -v),
            Expr::Unary(mpl_lang::ast::UnOp::Not, e) => eval(e, env).map(|v| i64::from(v == 0)),
            Expr::Binary(op, l, r) => {
                let (l, r) = (eval(l, env)?, eval(r, env)?);
                match op {
                    BinOp::Add => Some(l + r),
                    BinOp::Sub => Some(l - r),
                    BinOp::Mul => Some(l * r),
                    BinOp::Div => (r != 0).then(|| l.div_euclid(r)),
                    BinOp::Mod => (r != 0).then(|| l.rem_euclid(r)),
                    BinOp::Eq => Some(i64::from(l == r)),
                    BinOp::Ne => Some(i64::from(l != r)),
                    BinOp::Lt => Some(i64::from(l < r)),
                    BinOp::Le => Some(i64::from(l <= r)),
                    BinOp::Gt => Some(i64::from(l > r)),
                    BinOp::Ge => Some(i64::from(l >= r)),
                    BinOp::And => Some(i64::from(l != 0 && r != 0)),
                    BinOp::Or => Some(i64::from(l != 0 || r != 0)),
                }
            }
        }
    }

    impl ForwardAnalysis for SeqConstProp {
        type Fact = ConstMap;

        fn boundary(&self) -> ConstMap {
            ConstMap {
                reachable: true,
                vars: BTreeMap::new(),
            }
        }

        fn bottom(&self) -> ConstMap {
            ConstMap::default()
        }

        fn transfer(
            &self,
            cfg: &Cfg,
            node: CfgNodeId,
            _kind: EdgeKind,
            fact: &ConstMap,
        ) -> ConstMap {
            let mut out = fact.clone();
            match cfg.node(node) {
                CfgNode::Assign { name, value } => {
                    let v = eval(value, &fact.vars);
                    out.vars.insert(name.clone(), v);
                }
                // Sequential analysis cannot see through communication:
                // a received value is unknown.
                CfgNode::Recv { var, .. } => {
                    out.vars.insert(var.clone(), None);
                }
                _ => {}
            }
            out
        }
    }

    fn solve(src: &str) -> (Cfg, Vec<ConstMap>) {
        let cfg = Cfg::build(&parse_program(src).unwrap());
        let facts = solve_forward(&cfg, &SeqConstProp);
        (cfg, facts)
    }

    fn fact_at_print<'a>(cfg: &Cfg, facts: &'a [ConstMap]) -> &'a ConstMap {
        let print = cfg
            .node_ids()
            .find(|&id| matches!(cfg.node(id), CfgNode::Print(_)))
            .expect("no print node");
        &facts[print.0 as usize]
    }

    #[test]
    fn straight_line_constant_folds() {
        let (cfg, facts) = solve("x := 2; y := x * 3; print y;");
        let f = fact_at_print(&cfg, &facts);
        assert_eq!(f.vars["y"], Some(6));
    }

    #[test]
    fn join_of_different_constants_is_unknown() {
        let (cfg, facts) = solve("if id = 0 then x := 1; else x := 2; end print x;");
        let f = fact_at_print(&cfg, &facts);
        assert_eq!(f.vars["x"], None);
    }

    #[test]
    fn join_of_equal_constants_stays_constant() {
        let (cfg, facts) = solve("if id = 0 then x := 7; else x := 7; end print x;");
        let f = fact_at_print(&cfg, &facts);
        assert_eq!(f.vars["x"], Some(7));
    }

    #[test]
    fn loop_reaches_fixpoint() {
        let (cfg, facts) = solve("x := 0; while x < 5 do x := x + 1; end print x;");
        let f = fact_at_print(&cfg, &facts);
        // x is not constant at the print (it varies over iterations when
        // observed at the loop head join).
        assert_eq!(f.vars["x"], None);
    }

    #[test]
    fn recv_kills_constantness_sequentially() {
        // This is the motivating gap: sequentially, the received value is
        // unknown even though the parallel analysis can prove it is 5.
        let (cfg, facts) = solve("x := 5; send x -> 1; recv y <- 1; print y;");
        let f = fact_at_print(&cfg, &facts);
        assert_eq!(f.vars["x"], Some(5));
        assert_eq!(f.vars["y"], None);
    }

    #[test]
    fn unreachable_code_contributes_nothing() {
        let (cfg, facts) = solve("x := 1; if true then y := 2; end print x;");
        let f = fact_at_print(&cfg, &facts);
        assert_eq!(f.vars["x"], Some(1));
        assert!(f.reachable);
    }

    #[test]
    fn exit_fact_is_reachable() {
        let (cfg, facts) = solve("x := 1;");
        assert!(facts[cfg.exit().0 as usize].reachable);
    }
}
