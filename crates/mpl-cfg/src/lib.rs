//! # mpl-cfg — control-flow graphs and sequential dataflow for MPL
//!
//! This crate lowers an [`mpl_lang::Program`] into a control-flow graph
//! ([`Cfg`]) whose nodes are individual statements/branches — the exact
//! graph the CGO'09 pCFG framework is defined over (one CFG shared by all
//! processes of the SPMD program) — and provides a small *sequential*
//! forward-dataflow framework ([`dataflow`]) used for baseline analyses
//! (e.g. sequential constant propagation, which cannot see through
//! `send`/`recv` and therefore motivates the parallel framework).
//!
//! ```
//! use mpl_lang::parse_program;
//! use mpl_cfg::Cfg;
//!
//! let program = parse_program("x := 1; if id = 0 then send x -> 1; end")?;
//! let cfg = Cfg::build(&program);
//! assert!(cfg.node_count() >= 4); // entry, assign, branch, send, exit
//! # Ok::<(), mpl_lang::ParseError>(())
//! ```

pub mod dataflow;
pub mod dot;
pub mod graph;
pub mod scc;
pub mod seq_constprop;

pub use dataflow::{solve_forward, ForwardAnalysis, JoinSemiLattice};
pub use graph::{Cfg, CfgNode, CfgNodeId, EdgeKind};
pub use scc::SccRanks;
