//! # mpl-sim — a concrete executor for MPL programs
//!
//! Implements the execution model of §III of the CGO'09 paper: `np`
//! processes run the same program; each pair of processes is connected by
//! a FIFO channel; receives block until a message from the designated
//! sender arrives; sends are buffered (non-blocking) by default, with an
//! optional rendezvous (blocking) mode matching the simplification the
//! static analysis adopts.
//!
//! The simulator is the *ground-truth oracle* for the static analysis:
//!
//! * it records the runtime communication topology (which send statement's
//!   message was consumed by which receive statement, for which ranks),
//! * it detects deadlock and message leaks,
//! * it can run under many different schedules, which the test suite uses
//!   to check the paper's interleaving-obliviousness theorem empirically.
//!
//! ```
//! use mpl_sim::{Simulator, SimConfig};
//! use mpl_lang::parse_program;
//!
//! let program = parse_program(
//!     "if id = 0 then send 5 -> 1; else if id = 1 then recv x <- 0; end end",
//! )?;
//! let result = Simulator::new(&program, 4).run();
//! let outcome = result.expect("run succeeds");
//! assert!(outcome.is_complete());
//! assert_eq!(outcome.topology.edges().len(), 1);
//! # Ok::<(), mpl_lang::ParseError>(())
//! ```

pub mod machine;
pub mod topology;

pub use machine::{ExecError, Outcome, RunStatus, Schedule, SendMode, SimConfig, Simulator};
pub use topology::{RuntimeTopology, TopologyEdge};
