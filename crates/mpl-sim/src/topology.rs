//! Runtime communication topology recording.

use std::collections::BTreeSet;
use std::fmt;

use mpl_cfg::CfgNodeId;

/// One observed message delivery: the send statement, the receive
/// statement, and the concrete ranks involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TopologyEdge {
    /// CFG node of the `send`.
    pub send_node: CfgNodeId,
    /// CFG node of the `recv`.
    pub recv_node: CfgNodeId,
    /// Rank that executed the send.
    pub sender: u64,
    /// Rank that executed the receive.
    pub receiver: u64,
}

impl fmt::Display for TopologyEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} -> {}@{}",
            self.send_node, self.sender, self.recv_node, self.receiver
        )
    }
}

/// The set of all message deliveries observed during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeTopology {
    edges: BTreeSet<TopologyEdge>,
}

impl RuntimeTopology {
    /// Creates an empty topology.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a delivery.
    pub fn record(&mut self, edge: TopologyEdge) {
        self.edges.insert(edge);
    }

    /// All recorded edges in deterministic order.
    #[must_use]
    pub fn edges(&self) -> Vec<TopologyEdge> {
        self.edges.iter().copied().collect()
    }

    /// The set of (sender, receiver) rank pairs, ignoring statement sites.
    #[must_use]
    pub fn rank_pairs(&self) -> BTreeSet<(u64, u64)> {
        self.edges.iter().map(|e| (e.sender, e.receiver)).collect()
    }

    /// The set of (send statement, recv statement) pairs — directly
    /// comparable with the static analysis' `matches` component.
    #[must_use]
    pub fn site_pairs(&self) -> BTreeSet<(CfgNodeId, CfgNodeId)> {
        self.edges
            .iter()
            .map(|e| (e.send_node, e.recv_node))
            .collect()
    }

    /// Number of recorded deliveries (distinct edges).
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if no deliveries were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

impl fmt::Display for RuntimeTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.edges {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(s: u32, r: u32, sr: u64, rr: u64) -> TopologyEdge {
        TopologyEdge {
            send_node: CfgNodeId(s),
            recv_node: CfgNodeId(r),
            sender: sr,
            receiver: rr,
        }
    }

    #[test]
    fn records_and_deduplicates() {
        let mut t = RuntimeTopology::new();
        t.record(edge(3, 7, 0, 1));
        t.record(edge(3, 7, 0, 1));
        t.record(edge(3, 7, 0, 2));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn rank_and_site_projections() {
        let mut t = RuntimeTopology::new();
        t.record(edge(3, 7, 0, 1));
        t.record(edge(4, 8, 1, 0));
        assert_eq!(t.rank_pairs().len(), 2);
        assert!(t.rank_pairs().contains(&(0, 1)));
        assert!(t.site_pairs().contains(&(CfgNodeId(4), CfgNodeId(8))));
    }

    #[test]
    fn display_lists_edges() {
        let mut t = RuntimeTopology::new();
        t.record(edge(1, 2, 0, 3));
        assert_eq!(t.to_string(), "n1@0 -> n2@3\n");
    }
}
