//! The process machine: states, schedules, channels and the run loop.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;

use mpl_cfg::{Cfg, CfgNode, CfgNodeId, EdgeKind};
use mpl_lang::ast::{BinOp, Expr, Program, UnOp};
use mpl_rng::Rng64;

/// How `send` behaves (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SendMode {
    /// Non-blocking sends with unbounded in-flight messages — the paper's
    /// base execution model.
    #[default]
    Buffered,
    /// Blocking (rendezvous) sends — the simplification the static
    /// analysis adopts. A send completes only when its receiver is parked
    /// at the matching `recv`.
    Rendezvous,
}

/// Which process to step next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Cycle through runnable processes in rank order.
    #[default]
    RoundRobin,
    /// Pick a uniformly random runnable process, seeded for
    /// reproducibility. Used to test interleaving-obliviousness.
    Random { seed: u64 },
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Send semantics.
    pub send_mode: SendMode,
    /// Scheduling policy.
    pub schedule: Schedule,
    /// Abort after this many total steps (guards accidental infinite
    /// loops in test programs).
    pub max_steps: u64,
    /// Initial variable bindings installed in every process' store —
    /// used to give concrete values to symbolic parameters such as
    /// `nrows` when running the symbolic corpus programs.
    pub initial_vars: BTreeMap<String, i64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            send_mode: SendMode::Buffered,
            schedule: Schedule::RoundRobin,
            max_steps: 1_000_000,
            initial_vars: BTreeMap::new(),
        }
    }
}

/// A runtime error that aborts the whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Read of a variable that was never assigned.
    UninitializedVariable { rank: u64, name: String },
    /// Division or modulus by zero.
    DivisionByZero { rank: u64 },
    /// An `assume` evaluated to false at runtime.
    AssumeViolated { rank: u64, expr: String },
    /// A send/recv partner expression evaluated outside `0..np`.
    PartnerOutOfRange { rank: u64, partner: i64, np: u64 },
    /// The step budget was exhausted (probable infinite loop).
    StepLimitExceeded { limit: u64 },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UninitializedVariable { rank, name } => {
                write!(f, "rank {rank}: read of uninitialized variable `{name}`")
            }
            ExecError::DivisionByZero { rank } => write!(f, "rank {rank}: division by zero"),
            ExecError::AssumeViolated { rank, expr } => {
                write!(f, "rank {rank}: assume violated: {expr}")
            }
            ExecError::PartnerOutOfRange { rank, partner, np } => {
                write!(f, "rank {rank}: partner {partner} outside 0..{np}")
            }
            ExecError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} exceeded")
            }
        }
    }
}

impl Error for ExecError {}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Every process reached the exit node.
    Completed,
    /// No process could make progress; lists (rank, blocked CFG node).
    Deadlock { blocked: Vec<(u64, CfgNodeId)> },
}

/// A message left undelivered at the end of a run (a *message leak* in the
/// paper's terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LeakedMessage {
    /// The send statement.
    pub send_node: CfgNodeId,
    /// Sending rank.
    pub sender: u64,
    /// Intended receiving rank.
    pub receiver: u64,
}

/// The result of a completed (or deadlocked) run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Terminal status.
    pub status: RunStatus,
    /// Final variable store of each rank.
    pub stores: Vec<BTreeMap<String, i64>>,
    /// Values printed by each rank, in program order.
    pub prints: Vec<Vec<i64>>,
    /// Observed communication topology.
    pub topology: crate::topology::RuntimeTopology,
    /// Messages sent but never received.
    pub leaks: Vec<LeakedMessage>,
    /// Total scheduler steps taken.
    pub steps: u64,
    /// Per-rank logical communication clocks: each send ticks the
    /// sender's clock; each receive advances to one past the maximum of
    /// the receiver's clock and the message's timestamp. Deterministic
    /// under any schedule (interleaving-obliviousness extends to them).
    pub clocks: Vec<u64>,
}

impl Outcome {
    /// True if every process terminated normally.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.status == RunStatus::Completed
    }

    /// The communication critical path (makespan in message hops): the
    /// maximum logical clock over all ranks. The exchange-with-root of
    /// Fig 1 has a Θ(np) critical path while the transpose is Θ(1) —
    /// the quantitative case for collective replacement (§I).
    #[must_use]
    pub fn critical_path(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }
}

struct Proc {
    pc: CfgNodeId,
    store: BTreeMap<String, i64>,
    prints: Vec<i64>,
    clock: u64,
}

struct InFlight {
    value: i64,
    send_node: CfgNodeId,
    /// Sender's logical clock at the moment of sending.
    stamp: u64,
}

/// Drives an MPL program on `np` simulated processes.
///
/// The simulator owns a private copy of the program's CFG; use
/// [`Simulator::from_cfg`] to share one with a static analysis so that
/// node ids line up between the runtime topology and static matches.
pub struct Simulator {
    cfg: Cfg,
    np: u64,
    config: SimConfig,
}

impl Simulator {
    /// Creates a simulator for `program` on `np` processes with default
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `np == 0`.
    #[must_use]
    pub fn new(program: &Program, np: u64) -> Simulator {
        Simulator::from_cfg(Cfg::build(program), np)
    }

    /// Creates a simulator over an existing CFG (so node ids match a
    /// static analysis of the same graph).
    ///
    /// # Panics
    ///
    /// Panics if `np == 0`.
    #[must_use]
    pub fn from_cfg(cfg: Cfg, np: u64) -> Simulator {
        assert!(np > 0, "need at least one process");
        Simulator {
            cfg,
            np,
            config: SimConfig::default(),
        }
    }

    /// Replaces the configuration.
    #[must_use]
    pub fn with_config(mut self, config: SimConfig) -> Simulator {
        self.config = config;
        self
    }

    /// The CFG this simulator executes.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Runs the program to completion, deadlock, or error.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if any process performs an invalid
    /// operation (uninitialized read, division by zero, out-of-range
    /// partner, violated `assume`) or the step budget is exhausted.
    pub fn run(&self) -> Result<Outcome, ExecError> {
        let np = self.np;
        let mut procs: Vec<Proc> = (0..np)
            .map(|_| Proc {
                pc: self.cfg.entry(),
                store: self.config.initial_vars.clone(),
                prints: Vec::new(),
                clock: 0,
            })
            .collect();
        let mut channels: HashMap<(u64, u64), VecDeque<InFlight>> = HashMap::new();
        let mut topology = crate::topology::RuntimeTopology::new();
        let mut rng = match self.config.schedule {
            Schedule::Random { seed } => Some(Rng64::seed_from_u64(seed)),
            Schedule::RoundRobin => None,
        };

        let mut steps: u64 = 0;
        let mut rr_next: u64 = 0;
        loop {
            // Collect processes that can take a step right now.
            let mut runnable: Vec<u64> = Vec::new();
            for rank in 0..np {
                if self.can_step(rank, &procs, &channels)? {
                    runnable.push(rank);
                }
            }

            if runnable.is_empty() {
                let all_done = procs.iter().all(|p| p.pc == self.cfg.exit());
                let status = if all_done {
                    RunStatus::Completed
                } else {
                    let blocked = procs
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.pc != self.cfg.exit())
                        .map(|(r, p)| (r as u64, p.pc))
                        .collect();
                    RunStatus::Deadlock { blocked }
                };
                let mut leaks: Vec<LeakedMessage> = Vec::new();
                for (&(s, r), q) in &channels {
                    for m in q {
                        leaks.push(LeakedMessage {
                            send_node: m.send_node,
                            sender: s,
                            receiver: r,
                        });
                    }
                }
                leaks.sort_unstable();
                return Ok(Outcome {
                    status,
                    stores: procs.iter().map(|p| p.store.clone()).collect(),
                    prints: procs.iter().map(|p| p.prints.clone()).collect(),
                    topology,
                    leaks,
                    steps,
                    clocks: procs.iter().map(|p| p.clock).collect(),
                });
            }

            let rank = match &mut rng {
                Some(rng) => runnable[rng.index(runnable.len())],
                None => {
                    // Round-robin: first runnable at or after `rr_next`.
                    let pick = runnable
                        .iter()
                        .copied()
                        .find(|&r| r >= rr_next)
                        .unwrap_or(runnable[0]);
                    rr_next = (pick + 1) % np;
                    pick
                }
            };

            self.step(rank, &mut procs, &mut channels, &mut topology)?;
            steps += 1;
            if steps >= self.config.max_steps {
                return Err(ExecError::StepLimitExceeded {
                    limit: self.config.max_steps,
                });
            }
        }
    }

    /// Whether `rank` can currently take a step.
    fn can_step(
        &self,
        rank: u64,
        procs: &[Proc],
        channels: &HashMap<(u64, u64), VecDeque<InFlight>>,
    ) -> Result<bool, ExecError> {
        let p = &procs[rank as usize];
        Ok(match self.cfg.node(p.pc) {
            CfgNode::Exit => false,
            CfgNode::Recv { src, .. } => {
                let src = self.eval_partner(rank, src, &p.store)?;
                channels.get(&(src, rank)).is_some_and(|q| !q.is_empty())
            }
            CfgNode::Send { dest, .. } => match self.config.send_mode {
                SendMode::Buffered => true,
                SendMode::Rendezvous => {
                    let dest = self.eval_partner(rank, dest, &p.store)?;
                    // The receiver must be parked at a recv naming us.
                    let recv = &procs[dest as usize];
                    match self.cfg.node(recv.pc) {
                        CfgNode::Recv { src, .. } => {
                            self.eval_partner(dest, src, &recv.store)? == rank
                        }
                        _ => false,
                    }
                }
            },
            _ => true,
        })
    }

    /// Executes one step of `rank`. Must only be called when
    /// [`Simulator::can_step`] returned true.
    fn step(
        &self,
        rank: u64,
        procs: &mut [Proc],
        channels: &mut HashMap<(u64, u64), VecDeque<InFlight>>,
        topology: &mut crate::topology::RuntimeTopology,
    ) -> Result<(), ExecError> {
        let pc = procs[rank as usize].pc;
        match self.cfg.node(pc).clone() {
            CfgNode::Entry | CfgNode::Skip => {
                procs[rank as usize].pc = self.cfg.sole_succ(pc);
            }
            CfgNode::Exit => unreachable!("exit is never runnable"),
            CfgNode::Assign { name, value } => {
                let v = self.eval(rank, &value, &procs[rank as usize].store)?;
                let p = &mut procs[rank as usize];
                p.store.insert(name, v);
                p.pc = self.cfg.sole_succ(pc);
            }
            CfgNode::Print(e) => {
                let v = self.eval(rank, &e, &procs[rank as usize].store)?;
                let p = &mut procs[rank as usize];
                p.prints.push(v);
                p.pc = self.cfg.sole_succ(pc);
            }
            CfgNode::Assume(e) => {
                let v = self.eval(rank, &e, &procs[rank as usize].store)?;
                if v == 0 {
                    return Err(ExecError::AssumeViolated {
                        rank,
                        expr: e.to_string(),
                    });
                }
                procs[rank as usize].pc = self.cfg.sole_succ(pc);
            }
            CfgNode::Branch { cond } => {
                let v = self.eval(rank, &cond, &procs[rank as usize].store)?;
                let kind = if v != 0 {
                    EdgeKind::True
                } else {
                    EdgeKind::False
                };
                let next = self
                    .cfg
                    .succ_along(pc, kind)
                    .expect("branch node missing labelled successor");
                procs[rank as usize].pc = next;
            }
            CfgNode::Send { value, dest } => {
                let v = self.eval(rank, &value, &procs[rank as usize].store)?;
                let dest = self.eval_partner(rank, &dest, &procs[rank as usize].store)?;
                match self.config.send_mode {
                    SendMode::Buffered => {
                        procs[rank as usize].clock += 1;
                        let stamp = procs[rank as usize].clock;
                        channels
                            .entry((rank, dest))
                            .or_default()
                            .push_back(InFlight {
                                value: v,
                                send_node: pc,
                                stamp,
                            });
                        procs[rank as usize].pc = self.cfg.sole_succ(pc);
                    }
                    SendMode::Rendezvous => {
                        // can_step guaranteed the receiver is parked at a
                        // matching recv; transfer directly and advance both.
                        let recv_pc = procs[dest as usize].pc;
                        let CfgNode::Recv { var, .. } = self.cfg.node(recv_pc).clone() else {
                            unreachable!("rendezvous receiver not at recv");
                        };
                        topology.record(crate::topology::TopologyEdge {
                            send_node: pc,
                            recv_node: recv_pc,
                            sender: rank,
                            receiver: dest,
                        });
                        procs[rank as usize].clock += 1;
                        let stamp = procs[rank as usize].clock;
                        procs[dest as usize].clock = procs[dest as usize].clock.max(stamp) + 1;
                        procs[dest as usize].store.insert(var, v);
                        procs[dest as usize].pc = self.cfg.sole_succ(recv_pc);
                        procs[rank as usize].pc = self.cfg.sole_succ(pc);
                    }
                }
            }
            CfgNode::Recv { var, src } => {
                let src = self.eval_partner(rank, &src, &procs[rank as usize].store)?;
                let m = channels
                    .get_mut(&(src, rank))
                    .and_then(VecDeque::pop_front)
                    .expect("recv stepped with empty channel");
                topology.record(crate::topology::TopologyEdge {
                    send_node: m.send_node,
                    recv_node: pc,
                    sender: src,
                    receiver: rank,
                });
                let p = &mut procs[rank as usize];
                p.clock = p.clock.max(m.stamp) + 1;
                p.store.insert(var, m.value);
                p.pc = self.cfg.sole_succ(pc);
            }
        }
        Ok(())
    }

    fn eval_partner(
        &self,
        rank: u64,
        expr: &Expr,
        store: &BTreeMap<String, i64>,
    ) -> Result<u64, ExecError> {
        let v = self.eval(rank, expr, store)?;
        if v < 0 || (v as u64) >= self.np {
            return Err(ExecError::PartnerOutOfRange {
                rank,
                partner: v,
                np: self.np,
            });
        }
        // Self-messages are legal (a buffered send to oneself, as on the
        // diagonal of a transpose exchange); under rendezvous semantics a
        // self-send can never complete and surfaces as deadlock.
        Ok(v as u64)
    }

    fn eval(
        &self,
        rank: u64,
        expr: &Expr,
        store: &BTreeMap<String, i64>,
    ) -> Result<i64, ExecError> {
        Ok(match expr {
            Expr::Int(n) => *n,
            Expr::Bool(b) => i64::from(*b),
            Expr::Id => rank as i64,
            Expr::Np => self.np as i64,
            Expr::Var(name) => {
                *store
                    .get(name)
                    .ok_or_else(|| ExecError::UninitializedVariable {
                        rank,
                        name: name.clone(),
                    })?
            }
            Expr::Unary(UnOp::Neg, e) => -self.eval(rank, e, store)?,
            Expr::Unary(UnOp::Not, e) => i64::from(self.eval(rank, e, store)? == 0),
            Expr::Binary(op, l, r) => {
                let l = self.eval(rank, l, store)?;
                let r = self.eval(rank, r, store)?;
                match op {
                    BinOp::Add => l.wrapping_add(r),
                    BinOp::Sub => l.wrapping_sub(r),
                    BinOp::Mul => l.wrapping_mul(r),
                    BinOp::Div => {
                        if r == 0 {
                            return Err(ExecError::DivisionByZero { rank });
                        }
                        l.div_euclid(r)
                    }
                    BinOp::Mod => {
                        if r == 0 {
                            return Err(ExecError::DivisionByZero { rank });
                        }
                        l.rem_euclid(r)
                    }
                    BinOp::Eq => i64::from(l == r),
                    BinOp::Ne => i64::from(l != r),
                    BinOp::Lt => i64::from(l < r),
                    BinOp::Le => i64::from(l <= r),
                    BinOp::Gt => i64::from(l > r),
                    BinOp::Ge => i64::from(l >= r),
                    BinOp::And => i64::from(l != 0 && r != 0),
                    BinOp::Or => i64::from(l != 0 || r != 0),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::corpus;
    use mpl_lang::parse_program;

    fn run(src: &str, np: u64) -> Outcome {
        Simulator::new(&parse_program(src).unwrap(), np)
            .run()
            .unwrap()
    }

    #[test]
    fn fig2_exchange_prints_five_on_both() {
        let out = run(&corpus::fig2_exchange().source, 4);
        assert!(out.is_complete());
        assert_eq!(out.prints[0], vec![5]);
        assert_eq!(out.prints[1], vec![5]);
        assert!(out.prints[2].is_empty());
        assert_eq!(out.topology.rank_pairs().len(), 2);
        assert!(out.leaks.is_empty());
    }

    #[test]
    fn exchange_with_root_topology() {
        let out = run(&corpus::exchange_with_root().source, 5);
        assert!(out.is_complete());
        let pairs = out.topology.rank_pairs();
        for i in 1..5 {
            assert!(pairs.contains(&(0, i)), "missing 0->{i}");
            assert!(pairs.contains(&(i, 0)), "missing {i}->0");
        }
        assert_eq!(pairs.len(), 8);
    }

    #[test]
    fn fanout_broadcast_delivers_to_all() {
        let out = run(&corpus::fanout_broadcast().source, 6);
        assert!(out.is_complete());
        let pairs = out.topology.rank_pairs();
        assert_eq!(pairs.len(), 5);
        for i in 1..6 {
            assert_eq!(out.stores[i as usize]["y"], 42);
        }
    }

    #[test]
    fn gather_collects_from_all() {
        let out = run(&corpus::gather_to_root().source, 5);
        assert!(out.is_complete());
        assert_eq!(out.topology.rank_pairs().len(), 4);
    }

    #[test]
    fn nearest_neighbor_shift_propagates_left_values() {
        let out = run(&corpus::nearest_neighbor_shift().source, 6);
        assert!(out.is_complete());
        for i in 1..6usize {
            assert_eq!(out.stores[i]["y"], i as i64 - 1);
        }
        assert_eq!(out.topology.rank_pairs().len(), 5);
    }

    #[test]
    fn nas_cg_square_transpose_runs() {
        let p = corpus::nas_cg_transpose_square(corpus::GridDims::Concrete { nrows: 3, ncols: 3 });
        let out = Simulator::new(&p.program, 9).run().unwrap();
        assert!(out.is_complete());
        // Every process receives its transpose partner's rank (diagonal
        // ranks exchange with themselves via a buffered self-send).
        for rank in 0..9i64 {
            let partner = (rank % 3) * 3 + rank / 3;
            assert_eq!(out.stores[rank as usize]["y"], partner, "rank {rank}");
        }
        assert!(out.leaks.is_empty());
    }

    #[test]
    fn nas_cg_rect_transpose_runs() {
        let p = corpus::nas_cg_transpose_rect(corpus::GridDims::Concrete { nrows: 2, ncols: 4 });
        let out = Simulator::new(&p.program, 8).run().unwrap();
        assert!(out.is_complete());
        for rank in 0..8i64 {
            let f = |p: i64| 2 * 2 * ((p / 2) % 2) + 2 * (p / 4) + p % 2;
            assert_eq!(out.stores[rank as usize]["y"], f(rank), "rank {rank}");
        }
        assert!(out.leaks.is_empty());
    }

    #[test]
    fn ring_uniform_completes_buffered_but_deadlocks_rendezvous() {
        let p = corpus::ring_uniform();
        let out = Simulator::new(&p.program, 4).run().unwrap();
        assert!(out.is_complete());
        assert_eq!(out.topology.rank_pairs().len(), 4);

        let cfg_out = Simulator::new(&p.program, 4)
            .with_config(SimConfig {
                send_mode: SendMode::Rendezvous,
                ..SimConfig::default()
            })
            .run()
            .unwrap();
        // With blocking sends every process is stuck at `send`.
        assert!(matches!(cfg_out.status, RunStatus::Deadlock { .. }));
    }

    #[test]
    fn deadlock_pair_detected() {
        let out = run(&corpus::deadlock_pair().source, 2);
        let RunStatus::Deadlock { blocked } = &out.status else {
            panic!("expected deadlock")
        };
        assert_eq!(blocked.len(), 2);
    }

    #[test]
    fn message_leak_detected() {
        let out = run(&corpus::message_leak().source, 3);
        assert!(out.is_complete());
        assert_eq!(out.leaks.len(), 1);
        assert_eq!(out.leaks[0].sender, 0);
        assert_eq!(out.leaks[0].receiver, 1);
    }

    #[test]
    fn const_relay_prints_eleven_everywhere() {
        let out = run(&corpus::const_relay().source, 3);
        assert!(out.is_complete());
        for rank in 0..3 {
            assert_eq!(out.prints[rank], vec![11]);
        }
    }

    #[test]
    fn round_robin_and_random_schedules_agree() {
        // Interleaving-obliviousness (paper Appendix): final stores,
        // prints and topology are schedule-independent.
        for prog in [
            corpus::exchange_with_root(),
            corpus::fanout_broadcast(),
            corpus::nearest_neighbor_shift(),
            corpus::ring_conditional(),
        ] {
            let base = Simulator::new(&prog.program, 5).run().unwrap();
            for seed in 0..10 {
                let alt = Simulator::new(&prog.program, 5)
                    .with_config(SimConfig {
                        schedule: Schedule::Random { seed },
                        ..SimConfig::default()
                    })
                    .run()
                    .unwrap();
                assert_eq!(base.stores, alt.stores, "{} seed {seed}", prog.name);
                assert_eq!(base.prints, alt.prints, "{} seed {seed}", prog.name);
                assert_eq!(base.topology, alt.topology, "{} seed {seed}", prog.name);
            }
        }
    }

    #[test]
    fn rendezvous_matches_buffered_for_paired_patterns() {
        for prog in [
            corpus::fig2_exchange(),
            corpus::exchange_with_root(),
            corpus::fanout_broadcast(),
        ] {
            let buffered = Simulator::new(&prog.program, 4).run().unwrap();
            let rendezvous = Simulator::new(&prog.program, 4)
                .with_config(SimConfig {
                    send_mode: SendMode::Rendezvous,
                    ..SimConfig::default()
                })
                .run()
                .unwrap();
            assert!(rendezvous.is_complete(), "{}", prog.name);
            assert_eq!(buffered.topology, rendezvous.topology, "{}", prog.name);
        }
    }

    #[test]
    fn uninitialized_read_is_an_error() {
        let err = Simulator::new(&parse_program("y := q + 1;").unwrap(), 2)
            .run()
            .unwrap_err();
        assert!(matches!(err, ExecError::UninitializedVariable { .. }));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let err = Simulator::new(&parse_program("x := 1 / 0;").unwrap(), 1)
            .run()
            .unwrap_err();
        assert!(matches!(err, ExecError::DivisionByZero { .. }));
    }

    #[test]
    fn assume_violation_is_an_error() {
        let err = Simulator::new(&parse_program("assume np = 3;").unwrap(), 2)
            .run()
            .unwrap_err();
        assert!(matches!(err, ExecError::AssumeViolated { .. }));
    }

    #[test]
    fn partner_out_of_range_is_an_error() {
        let err = Simulator::new(&parse_program("send 1 -> np;").unwrap(), 2)
            .run()
            .unwrap_err();
        assert!(matches!(err, ExecError::PartnerOutOfRange { .. }));
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let config = SimConfig {
            max_steps: 1000,
            ..SimConfig::default()
        };
        let err = run_cfg_err(config, "while true do skip; end", 1);
        assert!(matches!(err, ExecError::StepLimitExceeded { .. }));
    }

    fn run_cfg_err(config: SimConfig, src: &str, np: u64) -> ExecError {
        Simulator::new(&parse_program(src).unwrap(), np)
            .with_config(config)
            .run()
            .unwrap_err()
    }

    #[test]
    fn initial_vars_parameterize_symbolic_programs() {
        let p = corpus::stencil_2d_vertical(corpus::GridDims::Symbolic);
        let mut initial = BTreeMap::new();
        initial.insert("nrows".to_owned(), 3i64);
        initial.insert("ncols".to_owned(), 3i64);
        let out = Simulator::new(&p.program, 9)
            .with_config(SimConfig {
                initial_vars: initial,
                ..SimConfig::default()
            })
            .run()
            .unwrap();
        assert!(out.is_complete());
        // 2 rows of 3 senders each.
        assert_eq!(out.topology.rank_pairs().len(), 6);
    }

    #[test]
    fn deterministic_prints_are_in_program_order() {
        let out = run("print 1; print 2; print 3;", 2);
        assert_eq!(out.prints[0], vec![1, 2, 3]);
        assert_eq!(out.prints[1], vec![1, 2, 3]);
    }

    #[test]
    fn run_reports_step_counts() {
        let out = run("x := 1;", 3);
        assert!(out.steps >= 3);
    }
}

#[cfg(test)]
mod clock_tests {
    use super::*;
    use mpl_lang::corpus;

    fn path(prog: &corpus::CorpusProgram, np: u64) -> u64 {
        Simulator::new(&prog.program, np)
            .run()
            .unwrap()
            .critical_path()
    }

    #[test]
    fn exchange_with_root_critical_path_is_linear() {
        // The root serializes 2 communications per partner.
        let prog = corpus::exchange_with_root();
        let p8 = path(&prog, 8);
        let p16 = path(&prog, 16);
        assert!(p8 >= 14, "got {p8}");
        assert!(
            p16 >= 2 * p8 - 4,
            "p8={p8} p16={p16}: expected linear growth"
        );
    }

    #[test]
    fn transpose_critical_path_is_constant() {
        for nrows in [2i64, 3, 4] {
            let prog = corpus::nas_cg_transpose_square(corpus::GridDims::Concrete {
                nrows,
                ncols: nrows,
            });
            let p = path(&prog, (nrows * nrows) as u64);
            assert!(p <= 3, "transpose should be O(1) hops, got {p}");
        }
    }

    #[test]
    fn shift_critical_path_is_linear_chain() {
        // Each hop depends on the previous one.
        let prog = corpus::nearest_neighbor_shift();
        assert!(path(&prog, 6) >= 6);
        assert!(path(&prog, 12) >= 12);
    }

    #[test]
    fn clocks_are_schedule_independent() {
        let prog = corpus::mdcask_full();
        let base = Simulator::new(&prog.program, 6).run().unwrap();
        for seed in 0..8 {
            let alt = Simulator::new(&prog.program, 6)
                .with_config(SimConfig {
                    schedule: Schedule::Random { seed },
                    ..SimConfig::default()
                })
                .run()
                .unwrap();
            assert_eq!(base.clocks, alt.clocks, "seed {seed}");
        }
    }

    #[test]
    fn no_comm_means_zero_critical_path() {
        let p = mpl_lang::parse_program("x := 1; print x;").unwrap();
        let out = Simulator::new(&p, 4).run().unwrap();
        assert_eq!(out.critical_path(), 0);
    }
}

#[cfg(test)]
mod fifo_tests {
    use super::*;
    use mpl_lang::parse_program;

    #[test]
    fn same_pair_messages_arrive_in_fifo_order() {
        // Rank 0 sends 10 then 20 to rank 1; FIFO guarantees a=10, b=20.
        let src = "\
            if id = 0 then\n  send 10 -> 1;\n  send 20 -> 1;\n\
            else\n  if id = 1 then\n    recv a <- 0;\n    recv b <- 0;\n  end\nend\n";
        let out = Simulator::new(&parse_program(src).unwrap(), 2)
            .run()
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.stores[1]["a"], 10);
        assert_eq!(out.stores[1]["b"], 20);
    }

    #[test]
    fn fifo_holds_under_random_schedules() {
        let src = "\
            if id = 0 then\n  send 1 -> 1;\n  send 2 -> 1;\n  send 3 -> 1;\n\
            else\n  if id = 1 then\n    recv a <- 0;\n    recv b <- 0;\n    recv c <- 0;\n  end\nend\n";
        let program = parse_program(src).unwrap();
        for seed in 0..16 {
            let out = Simulator::new(&program, 3)
                .with_config(SimConfig {
                    schedule: Schedule::Random { seed },
                    ..SimConfig::default()
                })
                .run()
                .unwrap();
            assert_eq!(out.stores[1]["a"], 1, "seed {seed}");
            assert_eq!(out.stores[1]["b"], 2, "seed {seed}");
            assert_eq!(out.stores[1]["c"], 3, "seed {seed}");
        }
    }

    #[test]
    fn self_send_buffered_works_rendezvous_deadlocks() {
        let src = "if id = 0 then send 7 -> 0; recv z <- 0; end";
        let program = parse_program(src).unwrap();
        let buffered = Simulator::new(&program, 2).run().unwrap();
        assert!(buffered.is_complete());
        assert_eq!(buffered.stores[0]["z"], 7);
        let rendezvous = Simulator::new(&program, 2)
            .with_config(SimConfig {
                send_mode: SendMode::Rendezvous,
                ..SimConfig::default()
            })
            .run()
            .unwrap();
        assert!(matches!(rendezvous.status, RunStatus::Deadlock { .. }));
    }

    #[test]
    fn interleaved_pairs_do_not_mix_channels() {
        // Channels are per-pair: messages 0->2 and 1->2 interleave but
        // each pair's stream stays ordered.
        let src = "\
            if id = 0 then\n  send 100 -> 2;\n  send 101 -> 2;\nelse\n\
            if id = 1 then\n  send 200 -> 2;\n  send 201 -> 2;\nelse\n\
            if id = 2 then\n  recv a <- 0;\n  recv b <- 1;\n  recv c <- 0;\n  recv d <- 1;\nend end end\n";
        let out = Simulator::new(&parse_program(src).unwrap(), 3)
            .run()
            .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.stores[2]["a"], 100);
        assert_eq!(out.stores[2]["b"], 200);
        assert_eq!(out.stores[2]["c"], 101);
        assert_eq!(out.stores[2]["d"], 201);
    }
}
