//! # mpl-domains — abstract domains for communication-sensitive dataflow
//!
//! Implements the dataflow state representation of §VII-A of the CGO'09
//! paper: **constraint graphs** — conjunctions of difference constraints
//! `i ≤ j + c` over variables — with the paper's two twists:
//!
//! 1. every variable is annotated with the *process-set id* that owns it
//!    (so invariants can relate variables of different process sets), and
//! 2. every process set gets its own copy of the special variable `id`.
//!
//! The constraint graph is a difference-bound matrix (DBM) with full
//! O(n³) transitive closure and an O(n²) single-edge incremental variant.
//! Both entry points are instrumented through [`stats::ClosureStats`],
//! which is how the benches reproduce the §IX profile (closure counts,
//! average variable counts, share of runtime).
//!
//! The crate also provides [`constenv::ConstEnv`], a flat
//! constant-propagation lattice used by the Fig 2 client and by the
//! "simpler dataflow state" ablation the paper's §IX roadmap calls for.

pub mod constenv;
pub mod constraint_graph;
pub mod linexpr;
pub mod stats;
pub mod var;

pub use constenv::ConstEnv;
pub use constraint_graph::ConstraintGraph;
pub use linexpr::LinExpr;
pub use stats::{force_full_closure, set_force_full_closure, ClosureStats};
pub use var::{NsVar, PsetId};
