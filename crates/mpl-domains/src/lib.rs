//! # mpl-domains — abstract domains for communication-sensitive dataflow
//!
//! Implements the dataflow state representation of §VII-A of the CGO'09
//! paper: **constraint graphs** — conjunctions of difference constraints
//! `i ≤ j + c` over variables — with the paper's two twists:
//!
//! 1. every variable is annotated with the *process-set id* that owns it
//!    (so invariants can relate variables of different process sets), and
//! 2. every process set gets its own copy of the special variable `id`.
//!
//! The constraint graph is a difference-bound matrix (DBM), dense over
//! interned [`var::VarId`] handles, with full O(n³) transitive closure
//! and an O(n²) single-edge incremental variant driven by a lazy dirty
//! set ([`ConstraintGraph::close`] is a no-op when nothing changed). Both
//! closure paths are instrumented through [`stats::ClosureStats`], which
//! is how the benches reproduce the §IX profile (closure counts, average
//! variable counts, share of runtime).
//!
//! The crate also provides [`constenv::ConstEnv`], a flat
//! constant-propagation lattice used by the Fig 2 client and by the
//! "simpler dataflow state" ablation the paper's §IX roadmap calls for.

pub mod constenv;
pub mod constraint_graph;
pub mod linexpr;
pub mod stats;
pub mod var;

pub use constenv::{ConstEnv, ConstVal};
pub use constraint_graph::{splitmix64, ConstraintGraph, DEFAULT_WIDEN_THRESHOLDS};
pub use linexpr::LinExpr;
pub use stats::{force_full_closure, set_force_full_closure, ClosureStats};
pub use var::{
    adopt_table, intern_name, reset_table, table_snapshot, with_table, NsVar, PsetId, VarId,
    VarKind, VarTable, MAX_PSET_ID,
};
