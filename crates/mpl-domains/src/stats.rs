//! Closure instrumentation, reproducing the measurements of §IX.
//!
//! The paper profiles its prototype and reports, for the fan-out
//! broadcast analysis: 217 executions of the O(n³) transitive closure
//! (average 52.3 variables), 78 executions of a cheaper O(n²) variant
//! (average 66.3 variables), together 92.5 % of total runtime. These
//! counters collect exactly those quantities for our implementation.
//!
//! Counters are thread-local so parallel test runs do not interfere.

use std::cell::Cell;
use std::time::Duration;

thread_local! {
    static FULL_CLOSURES: Cell<u64> = const { Cell::new(0) };
    static FULL_VARS: Cell<u64> = const { Cell::new(0) };
    static INCR_CLOSURES: Cell<u64> = const { Cell::new(0) };
    static INCR_VARS: Cell<u64> = const { Cell::new(0) };
    static CLOSURE_NANOS: Cell<u64> = const { Cell::new(0) };
    static FORCE_FULL: Cell<bool> = const { Cell::new(false) };
    static MATRIX_COPIES: Cell<u64> = const { Cell::new(0) };
}

/// Number of bound-matrix materializations (copy-on-write faults) on
/// this thread: how often a shared DBM allocation actually had to be
/// copied before a write. Kept out of [`ClosureStats`] so existing
/// machine-readable stats output is unchanged.
#[must_use]
pub fn matrix_copies() -> u64 {
    MATRIX_COPIES.with(Cell::get)
}

/// Resets the matrix-copy counter for the current thread.
pub fn reset_matrix_copies() {
    MATRIX_COPIES.with(|c| c.set(0));
}

/// Records one copy-on-write materialization of a shared bound matrix.
pub(crate) fn record_matrix_copy() {
    MATRIX_COPIES.with(|c| c.set(c.get() + 1));
}

/// When enabled, [`crate::ConstraintGraph::assert_le`] re-runs the full
/// O(n³) closure instead of the O(n²) incremental update — the behaviour
/// of the paper's unoptimized prototype, kept as an ablation switch
/// (§IX optimization roadmap).
pub fn set_force_full_closure(on: bool) {
    FORCE_FULL.with(|c| c.set(on));
}

/// True if the full-closure ablation is active on this thread.
#[must_use]
pub fn force_full_closure() -> bool {
    FORCE_FULL.with(Cell::get)
}

/// A snapshot of the closure counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClosureStats {
    /// Number of full O(n³) transitive closures performed.
    pub full_closures: u64,
    /// Sum of variable counts over all full closures.
    pub full_closure_vars: u64,
    /// Number of O(n²) incremental closure updates performed.
    pub incremental_closures: u64,
    /// Sum of variable counts over all incremental updates.
    pub incremental_closure_vars: u64,
    /// Total wall-clock time spent inside closure operations.
    pub closure_nanos: u64,
}

impl ClosureStats {
    /// Reads the counters for the current thread.
    #[must_use]
    pub fn snapshot() -> ClosureStats {
        ClosureStats {
            full_closures: FULL_CLOSURES.with(Cell::get),
            full_closure_vars: FULL_VARS.with(Cell::get),
            incremental_closures: INCR_CLOSURES.with(Cell::get),
            incremental_closure_vars: INCR_VARS.with(Cell::get),
            closure_nanos: CLOSURE_NANOS.with(Cell::get),
        }
    }

    /// Resets the counters for the current thread.
    pub fn reset() {
        FULL_CLOSURES.with(|c| c.set(0));
        FULL_VARS.with(|c| c.set(0));
        INCR_CLOSURES.with(|c| c.set(0));
        INCR_VARS.with(|c| c.set(0));
        CLOSURE_NANOS.with(|c| c.set(0));
    }

    /// The counter deltas accumulated since `earlier`.
    #[must_use]
    pub fn since(&self, earlier: &ClosureStats) -> ClosureStats {
        ClosureStats {
            full_closures: self.full_closures - earlier.full_closures,
            full_closure_vars: self.full_closure_vars - earlier.full_closure_vars,
            incremental_closures: self.incremental_closures - earlier.incremental_closures,
            incremental_closure_vars: self.incremental_closure_vars
                - earlier.incremental_closure_vars,
            closure_nanos: self.closure_nanos - earlier.closure_nanos,
        }
    }

    /// Field-wise sum of two counter snapshots — the merge path for
    /// aggregating per-job (and hence per-worker) deltas across a
    /// parallel batch run. Counters are thread-local, so a fleet total
    /// can only be built by merging the deltas each job reported.
    #[must_use]
    pub fn merged(&self, other: &ClosureStats) -> ClosureStats {
        ClosureStats {
            full_closures: self.full_closures + other.full_closures,
            full_closure_vars: self.full_closure_vars + other.full_closure_vars,
            incremental_closures: self.incremental_closures + other.incremental_closures,
            incremental_closure_vars: self.incremental_closure_vars
                + other.incremental_closure_vars,
            closure_nanos: self.closure_nanos + other.closure_nanos,
        }
    }

    /// In-place [`Self::merged`].
    pub fn merge(&mut self, other: &ClosureStats) {
        *self = self.merged(other);
    }

    /// Average variable count per full closure (the paper's "52.3").
    #[must_use]
    pub fn avg_full_vars(&self) -> f64 {
        if self.full_closures == 0 {
            0.0
        } else {
            self.full_closure_vars as f64 / self.full_closures as f64
        }
    }

    /// Average variable count per incremental update (the paper's "66.3").
    #[must_use]
    pub fn avg_incremental_vars(&self) -> f64 {
        if self.incremental_closures == 0 {
            0.0
        } else {
            self.incremental_closure_vars as f64 / self.incremental_closures as f64
        }
    }

    /// Total time spent in closures.
    #[must_use]
    pub fn closure_time(&self) -> Duration {
        Duration::from_nanos(self.closure_nanos)
    }
}

/// Records one full O(n³) closure over `nvars` variables taking `nanos`.
pub(crate) fn record_full(nvars: usize, nanos: u64) {
    FULL_CLOSURES.with(|c| c.set(c.get() + 1));
    FULL_VARS.with(|c| c.set(c.get() + nvars as u64));
    CLOSURE_NANOS.with(|c| c.set(c.get() + nanos));
}

/// Records one O(n²) incremental update over `nvars` variables taking
/// `nanos`.
pub(crate) fn record_incremental(nvars: usize, nanos: u64) {
    INCR_CLOSURES.with(|c| c.set(c.get() + 1));
    INCR_VARS.with(|c| c.set(c.get() + nvars as u64));
    CLOSURE_NANOS.with(|c| c.set(c.get() + nanos));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        ClosureStats::reset();
        record_full(10, 100);
        record_full(20, 100);
        record_incremental(5, 50);
        let s = ClosureStats::snapshot();
        assert_eq!(s.full_closures, 2);
        assert_eq!(s.full_closure_vars, 30);
        assert!((s.avg_full_vars() - 15.0).abs() < 1e-9);
        assert_eq!(s.incremental_closures, 1);
        assert!((s.avg_incremental_vars() - 5.0).abs() < 1e-9);
        assert_eq!(s.closure_nanos, 250);
        ClosureStats::reset();
        assert_eq!(ClosureStats::snapshot(), ClosureStats::default());
    }

    #[test]
    fn since_computes_deltas() {
        ClosureStats::reset();
        record_full(4, 10);
        let base = ClosureStats::snapshot();
        record_full(6, 20);
        let delta = ClosureStats::snapshot().since(&base);
        assert_eq!(delta.full_closures, 1);
        assert_eq!(delta.full_closure_vars, 6);
        assert_eq!(delta.closure_nanos, 20);
    }

    #[test]
    fn merge_is_fieldwise_sum() {
        let a = ClosureStats {
            full_closures: 2,
            full_closure_vars: 20,
            incremental_closures: 5,
            incremental_closure_vars: 55,
            closure_nanos: 100,
        };
        let b = ClosureStats {
            full_closures: 1,
            full_closure_vars: 7,
            incremental_closures: 3,
            incremental_closure_vars: 33,
            closure_nanos: 50,
        };
        let m = a.merged(&b);
        assert_eq!(m.full_closures, 3);
        assert_eq!(m.full_closure_vars, 27);
        assert_eq!(m.incremental_closures, 8);
        assert_eq!(m.incremental_closure_vars, 88);
        assert_eq!(m.closure_nanos, 150);
        // Identity and in-place variant.
        assert_eq!(a.merged(&ClosureStats::default()), a);
        let mut c = a;
        c.merge(&b);
        assert_eq!(c, m);
    }

    #[test]
    fn averages_handle_zero_counts() {
        ClosureStats::reset();
        let s = ClosureStats::snapshot();
        assert_eq!(s.avg_full_vars(), 0.0);
        assert_eq!(s.avg_incremental_vars(), 0.0);
        assert_eq!(s.closure_time(), Duration::ZERO);
    }
}
