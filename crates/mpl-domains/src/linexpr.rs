//! Linear expressions `var + c` — the currency of the constraint graph
//! and the §VII message-expression abstraction.

use std::fmt;

use crate::var::{NsVar, PsetId, VarId};

/// A linear expression of the form `var + offset` or a bare constant
/// (`var` absent). The base variable is an interned [`VarId`], making the
/// whole expression an 16-byte `Copy` value: alias sets in process-set
/// bounds and constraint-graph equality lists move without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinExpr {
    /// The optional base variable.
    pub var: Option<VarId>,
    /// The constant offset.
    pub offset: i64,
}

impl LinExpr {
    /// A bare constant.
    #[must_use]
    pub fn constant(c: i64) -> LinExpr {
        LinExpr {
            var: None,
            offset: c,
        }
    }

    /// `var + 0`.
    #[must_use]
    pub fn of_var(var: impl Into<VarId>) -> LinExpr {
        LinExpr {
            var: Some(var.into()),
            offset: 0,
        }
    }

    /// `var + c`.
    #[must_use]
    pub fn var_plus(var: impl Into<VarId>, c: i64) -> LinExpr {
        LinExpr {
            var: Some(var.into()),
            offset: c,
        }
    }

    /// Adds a constant.
    #[must_use]
    pub fn plus(&self, c: i64) -> LinExpr {
        LinExpr {
            var: self.var,
            offset: self.offset + c,
        }
    }

    /// True if this is a bare constant.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.var.is_none()
    }

    /// The constant value if this is a bare constant.
    #[must_use]
    pub fn as_constant(&self) -> Option<i64> {
        self.var.is_none().then_some(self.offset)
    }

    /// Rewrites a per-set base variable from namespace `from` to `to` —
    /// pure bit math on the packed id.
    #[must_use]
    pub fn renamed(&self, from: PsetId, to: PsetId) -> LinExpr {
        LinExpr {
            var: self.var.map(|v| v.renamed(from, to)),
            offset: self.offset,
        }
    }

    /// The difference `self - other` when both share the same base
    /// variable (or are both constants).
    #[must_use]
    pub fn diff_if_comparable(&self, other: &LinExpr) -> Option<i64> {
        (self.var == other.var).then(|| self.offset - other.offset)
    }

    /// True if composing this map with `other` yields the identity —
    /// the §VII matching condition for a send destination `id + c` and a
    /// receive source `id + d`: `(id + c) + d = id` iff `c + d = 0`.
    /// Only the offsets participate; the base variables live in different
    /// process-set namespaces and both denote the local rank.
    #[must_use]
    pub fn composes_to_identity_with(&self, other: &LinExpr) -> bool {
        self.offset + other.offset == 0
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.var, self.offset) {
            (None, c) => write!(f, "{c}"),
            (Some(v), 0) => write!(f, "{v}"),
            (Some(v), c) if c > 0 => write!(f, "{v}+{c}"),
            (Some(v), c) => write!(f, "{v}{c}"),
        }
    }
}

impl From<i64> for LinExpr {
    fn from(c: i64) -> LinExpr {
        LinExpr::constant(c)
    }
}

impl From<NsVar> for LinExpr {
    fn from(v: NsVar) -> LinExpr {
        LinExpr::of_var(v)
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> LinExpr {
        LinExpr::of_var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let c = LinExpr::constant(5);
        assert!(c.is_constant());
        assert_eq!(c.as_constant(), Some(5));
        let v = LinExpr::var_plus(NsVar::Np, -1);
        assert!(!v.is_constant());
        assert_eq!(v.as_constant(), None);
        assert_eq!(v.plus(1), LinExpr::of_var(NsVar::Np));
        assert_eq!(v.var, Some(VarId::NP));
    }

    #[test]
    fn display_forms() {
        assert_eq!(LinExpr::constant(-3).to_string(), "-3");
        assert_eq!(LinExpr::var_plus(NsVar::Np, -1).to_string(), "np-1");
        assert_eq!(LinExpr::var_plus(NsVar::Np, 2).to_string(), "np+2");
        assert_eq!(LinExpr::of_var(NsVar::Np).to_string(), "np");
    }

    #[test]
    fn diff_requires_same_base() {
        let a = LinExpr::var_plus(NsVar::Np, 3);
        let b = LinExpr::var_plus(NsVar::Np, 1);
        assert_eq!(a.diff_if_comparable(&b), Some(2));
        let c = LinExpr::constant(3);
        assert_eq!(a.diff_if_comparable(&c), None);
        assert_eq!(
            LinExpr::constant(7).diff_if_comparable(&LinExpr::constant(4)),
            Some(3)
        );
    }

    #[test]
    fn composition_identity_is_offset_cancellation() {
        // dest = id + 1 composed with src = id - 1 is the identity…
        let dest = LinExpr::var_plus(NsVar::pset(PsetId(0), "id"), 1);
        let src = LinExpr::var_plus(NsVar::pset(PsetId(1), "id"), -1);
        assert!(dest.composes_to_identity_with(&src));
        // …and the relation is symmetric; mismatched offsets are not.
        assert!(src.composes_to_identity_with(&dest));
        assert!(
            !dest.composes_to_identity_with(&LinExpr::var_plus(NsVar::pset(PsetId(1), "id"), -2))
        );
    }

    #[test]
    fn renamed_rewrites_base() {
        let x = LinExpr::var_plus(NsVar::pset(PsetId(0), "i"), 1);
        let y = x.renamed(PsetId(0), PsetId(9));
        assert_eq!(y.var, Some(VarId::from(NsVar::pset(PsetId(9), "i"))));
        assert_eq!(y.offset, 1);
    }
}
