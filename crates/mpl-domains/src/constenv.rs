//! A flat constant-propagation environment.
//!
//! This is the "simpler dataflow state representation than constraint
//! graphs" the paper's §IX roadmap calls for (item 1). The pCFG constant
//! propagation client (Fig 2) layers it next to — or instead of — the
//! constraint graph, and the ablation bench compares the two.

use std::collections::BTreeMap;
use std::fmt;

use crate::var::{PsetId, VarId};

/// The flat lattice over one variable: unknown (⊤ of the flat lattice) or
/// a known constant. Absent variables are unassigned (bottom).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstVal {
    /// Provably this constant on every process of the owning set.
    Known(i64),
    /// Possibly many values.
    Unknown,
}

/// A map from interned variables to flat constant values. Namespace
/// operations are bit tests on the packed [`VarId`] keys — no string
/// traffic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConstEnv {
    vals: BTreeMap<VarId, ConstVal>,
}

impl ConstEnv {
    /// An empty environment (nothing assigned yet).
    #[must_use]
    pub fn new() -> ConstEnv {
        ConstEnv::default()
    }

    /// Sets `v` to a known constant.
    pub fn set_const(&mut self, v: impl Into<VarId>, c: i64) {
        self.vals.insert(v.into(), ConstVal::Known(c));
    }

    /// Sets `v` to unknown.
    pub fn set_unknown(&mut self, v: impl Into<VarId>) {
        self.vals.insert(v.into(), ConstVal::Unknown);
    }

    /// The constant value of `v`, if known.
    #[must_use]
    pub fn const_of(&self, v: impl Into<VarId>) -> Option<i64> {
        match self.vals.get(&v.into()) {
            Some(ConstVal::Known(c)) => Some(*c),
            _ => None,
        }
    }

    /// The lattice value of `v` (`None` = never assigned).
    #[must_use]
    pub fn get(&self, v: impl Into<VarId>) -> Option<ConstVal> {
        self.vals.get(&v.into()).copied()
    }

    /// Number of tracked variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True if nothing is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Pointwise join: agreeing constants stay, disagreeing become
    /// unknown, one-sided entries become unknown (the other branch may
    /// hold any value).
    #[must_use]
    pub fn join(&self, other: &ConstEnv) -> ConstEnv {
        let mut out = BTreeMap::new();
        for (&k, v) in &self.vals {
            let merged = match (v, other.vals.get(&k)) {
                (ConstVal::Known(a), Some(ConstVal::Known(b))) if a == b => ConstVal::Known(*a),
                _ => ConstVal::Unknown,
            };
            out.insert(k, merged);
        }
        for &k in other.vals.keys() {
            out.entry(k).or_insert(ConstVal::Unknown);
        }
        ConstEnv { vals: out }
    }

    /// Renames every variable of namespace `from` into `to`.
    #[must_use]
    pub fn rename_namespace(&self, from: PsetId, to: PsetId) -> ConstEnv {
        ConstEnv {
            vals: self
                .vals
                .iter()
                .map(|(k, v)| (k.renamed(from, to), *v))
                .collect(),
        }
    }

    /// Copies every variable of namespace `src` into namespace `dst`.
    pub fn clone_namespace(&mut self, src: PsetId, dst: PsetId) {
        let copies: Vec<(VarId, ConstVal)> = self
            .vals
            .iter()
            .filter(|(k, _)| k.namespace() == Some(src))
            .map(|(k, v)| (k.renamed(src, dst), *v))
            .collect();
        self.vals.extend(copies);
    }

    /// Removes every variable of namespace `p`.
    pub fn drop_namespace(&mut self, p: PsetId) {
        self.vals.retain(|k, _| k.namespace() != Some(p));
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = (&VarId, &ConstVal)> {
        self.vals.iter()
    }

    /// Order-canonical 64-bit structural fingerprint: equal environments
    /// fingerprint equal, and (up to hash collisions) vice versa. Feeds
    /// the whole-state fingerprint used by the engine's admission dedup.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut fp = 0x5EED_C0D5_7E17_B00Du64;
        for (k, v) in &self.vals {
            let tag = match v {
                ConstVal::Known(c) => crate::constraint_graph::mix_for_fingerprint(*c as u64),
                ConstVal::Unknown => 0x0FF0_0FF0_0FF0_0FF0,
            };
            fp ^= crate::constraint_graph::mix_for_fingerprint(
                u64::from(k.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tag,
            );
        }
        fp
    }
}

impl fmt::Display for ConstEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.vals {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            match v {
                ConstVal::Known(c) => write!(f, "{k}={c}")?,
                ConstVal::Unknown => write!(f, "{k}=?")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::NsVar;

    fn v(p: u32, name: &str) -> NsVar {
        NsVar::pset(PsetId(p), name)
    }

    #[test]
    fn set_and_get() {
        let mut e = ConstEnv::new();
        e.set_const(v(0, "x"), 5);
        assert_eq!(e.const_of(v(0, "x")), Some(5));
        e.set_unknown(v(0, "x"));
        assert_eq!(e.const_of(v(0, "x")), None);
        assert_eq!(e.get(v(0, "x")), Some(ConstVal::Unknown));
        assert_eq!(e.get(v(0, "y")), None);
    }

    #[test]
    fn join_rules() {
        let mut a = ConstEnv::new();
        a.set_const(v(0, "x"), 1);
        a.set_const(v(0, "y"), 2);
        a.set_const(v(0, "only_a"), 3);
        let mut b = ConstEnv::new();
        b.set_const(v(0, "x"), 1);
        b.set_const(v(0, "y"), 9);
        b.set_const(v(0, "only_b"), 4);
        let j = a.join(&b);
        assert_eq!(j.const_of(v(0, "x")), Some(1));
        assert_eq!(j.const_of(v(0, "y")), None);
        assert_eq!(j.get(v(0, "only_a")), Some(ConstVal::Unknown));
        assert_eq!(j.get(v(0, "only_b")), Some(ConstVal::Unknown));
    }

    #[test]
    fn namespace_operations() {
        let mut e = ConstEnv::new();
        e.set_const(v(0, "x"), 1);
        e.set_const(v(1, "x"), 2);
        let renamed = e.rename_namespace(PsetId(0), PsetId(7));
        assert_eq!(renamed.const_of(v(7, "x")), Some(1));
        assert_eq!(renamed.const_of(v(1, "x")), Some(2));

        let mut e2 = e.clone();
        e2.clone_namespace(PsetId(1), PsetId(3));
        assert_eq!(e2.const_of(v(3, "x")), Some(2));
        assert_eq!(e2.const_of(v(1, "x")), Some(2));

        e2.drop_namespace(PsetId(1));
        assert_eq!(e2.get(v(1, "x")), None);
        assert_eq!(e2.const_of(v(3, "x")), Some(2));
    }

    #[test]
    fn display_is_compact() {
        let mut e = ConstEnv::new();
        e.set_const(v(0, "x"), 5);
        e.set_unknown(v(0, "y"));
        assert_eq!(e.to_string(), "P0.x=5, P0.y=?");
    }
}
