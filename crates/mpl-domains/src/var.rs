//! Namespaced variables: the paper's per-process-set variable copies.
//!
//! Two representations coexist:
//!
//! * [`NsVar`] — the rich, self-describing form (owns its name string).
//!   Convenient at API boundaries and in tests.
//! * [`VarId`] — a bit-packed `u32` handle interned through a
//!   [`VarTable`]. This is what the constraint graph, the constant
//!   environment and the process-set bounds are keyed by: namespace
//!   queries, renames and the distinguished per-set `id` variable are all
//!   pure bit arithmetic, with no string hashing or allocation.
//!
//! Packing layout (`u32`, tag in the top two bits):
//!
//! ```text
//! 00 | 0000…00 value      value 0 = Zero, 1 = Np
//! 01 | name-index (30b)   Global variable
//! 10 | pset (16b) | name-index (14b)   Per-set variable
//! ```
//!
//! The name `"id"` is pre-interned at index 0, so `VarId::id_of(p)` and
//! [`VarId::is_rank_id`] need no table access at all. The derived `Ord`
//! on the raw word preserves the `NsVar` variant order
//! (`Zero < Np < Global < Pset`, psets major within `Pset`).

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

/// Identifies one process set within a pCFG node. Process-set ids are
/// allocated by the analysis engine; the constraint graph only uses them
/// as namespaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PsetId(pub u32);

impl fmt::Display for PsetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A variable in the analysis state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NsVar {
    /// The distinguished constant-zero anchor: `v ≤ Zero + c` encodes
    /// `v ≤ c`.
    Zero,
    /// The global process count `np` (identical on every process).
    Np,
    /// A global symbolic parameter shared by all processes (e.g. the
    /// `nrows`/`ncols` grid dimensions once proven uniform).
    Global(String),
    /// A per-process-set variable. The name `"id"` is the set's copy of
    /// the rank variable.
    Pset(PsetId, String),
}

impl NsVar {
    /// The per-set rank variable.
    #[must_use]
    pub fn id_of(pset: PsetId) -> NsVar {
        NsVar::Pset(pset, "id".to_owned())
    }

    /// A per-set user variable.
    #[must_use]
    pub fn pset(pset: PsetId, name: impl Into<String>) -> NsVar {
        NsVar::Pset(pset, name.into())
    }

    /// The process set owning this variable, if any.
    #[must_use]
    pub fn namespace(&self) -> Option<PsetId> {
        match self {
            NsVar::Pset(p, _) => Some(*p),
            _ => None,
        }
    }

    /// Re-homes a per-set variable into namespace `to` (identity for
    /// globals).
    #[must_use]
    pub fn renamed(&self, from: PsetId, to: PsetId) -> NsVar {
        match self {
            NsVar::Pset(p, name) if *p == from => NsVar::Pset(to, name.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for NsVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NsVar::Zero => f.write_str("0"),
            NsVar::Np => f.write_str("np"),
            NsVar::Global(name) => write!(f, "{name}"),
            NsVar::Pset(p, name) => write!(f, "{p}.{name}"),
        }
    }
}

const TAG_SHIFT: u32 = 30;
const TAG_MASK: u32 = 0b11 << TAG_SHIFT;
const TAG_SPECIAL: u32 = 0b00 << TAG_SHIFT;
const TAG_GLOBAL: u32 = 0b01 << TAG_SHIFT;
const TAG_PSET: u32 = 0b10 << TAG_SHIFT;
const PSET_SHIFT: u32 = 14;
const PSET_NAME_MASK: u32 = (1 << PSET_SHIFT) - 1;
const GLOBAL_NAME_MASK: u32 = (1 << TAG_SHIFT) - 1;

/// The largest process-set id representable in a packed [`VarId`]
/// (16 bits). The engine's canonical renumbering keeps live ids tiny;
/// its two-phase rename uses a temporary band just below this limit.
pub const MAX_PSET_ID: u32 = (1 << 16) - 1;

/// The name index of the pre-interned rank variable `"id"`.
pub const ID_NAME: u32 = 0;

/// An interned, bit-packed variable handle (see the module docs for the
/// layout). `Copy`, 4 bytes, with namespace/rename/rank-id queries as
/// pure bit arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u32);

/// The unpacked shape of a [`VarId`] — what `match`es on [`NsVar`]
/// variants become after interning. Name components are indices into the
/// owning [`VarTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// The constant-zero anchor.
    Zero,
    /// The process count `np`.
    Np,
    /// A global parameter (name index).
    Global(u32),
    /// A per-set variable (owner, name index).
    Pset(PsetId, u32),
}

impl VarId {
    /// The constant-zero anchor.
    pub const ZERO: VarId = VarId(TAG_SPECIAL);
    /// The process count `np`.
    pub const NP: VarId = VarId(TAG_SPECIAL | 1);

    /// A global variable from an interned name index.
    #[must_use]
    pub fn global(name_idx: u32) -> VarId {
        assert!(name_idx <= GLOBAL_NAME_MASK, "global name index overflow");
        VarId(TAG_GLOBAL | name_idx)
    }

    /// A per-set variable from an interned name index.
    ///
    /// # Panics
    ///
    /// Panics if the pset id exceeds [`MAX_PSET_ID`] or the name index
    /// exceeds 14 bits.
    #[must_use]
    pub fn pset_var(pset: PsetId, name_idx: u32) -> VarId {
        assert!(
            pset.0 <= MAX_PSET_ID,
            "pset id {} overflows VarId packing",
            pset.0
        );
        assert!(name_idx <= PSET_NAME_MASK, "pset name index overflow");
        VarId(TAG_PSET | (pset.0 << PSET_SHIFT) | name_idx)
    }

    /// The per-set rank variable — no table access needed.
    #[must_use]
    pub fn id_of(pset: PsetId) -> VarId {
        VarId::pset_var(pset, ID_NAME)
    }

    /// The unpacked shape.
    #[must_use]
    pub fn kind(self) -> VarKind {
        match self.0 & TAG_MASK {
            TAG_SPECIAL => {
                if self == VarId::ZERO {
                    VarKind::Zero
                } else {
                    VarKind::Np
                }
            }
            TAG_GLOBAL => VarKind::Global(self.0 & GLOBAL_NAME_MASK),
            _ => VarKind::Pset(
                PsetId((self.0 >> PSET_SHIFT) & MAX_PSET_ID),
                self.0 & PSET_NAME_MASK,
            ),
        }
    }

    /// The process set owning this variable, if any — pure bit math.
    #[must_use]
    pub fn namespace(self) -> Option<PsetId> {
        (self.0 & TAG_MASK == TAG_PSET).then_some(PsetId((self.0 >> PSET_SHIFT) & MAX_PSET_ID))
    }

    /// The interned name index (globals and per-set variables).
    #[must_use]
    pub fn name_index(self) -> Option<u32> {
        match self.kind() {
            VarKind::Global(n) | VarKind::Pset(_, n) => Some(n),
            _ => None,
        }
    }

    /// True if this is some process set's rank variable `id`.
    #[must_use]
    pub fn is_rank_id(self) -> bool {
        self.0 & (TAG_MASK | PSET_NAME_MASK) == TAG_PSET | ID_NAME
    }

    /// Re-homes a per-set variable into namespace `to` (identity for
    /// globals and for other namespaces) — pure bit math.
    #[must_use]
    pub fn renamed(self, from: PsetId, to: PsetId) -> VarId {
        if self.namespace() == Some(from) {
            VarId::pset_var(to, self.0 & PSET_NAME_MASK)
        } else {
            self
        }
    }

    /// The rich form, resolved through the thread-local [`VarTable`].
    #[must_use]
    pub fn resolve(self) -> NsVar {
        with_table(|t| t.resolve(self))
    }

    /// The packed bit representation — fingerprint mixing within the
    /// crate only.
    #[must_use]
    pub(crate) const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            VarKind::Zero => f.write_str("0"),
            VarKind::Np => f.write_str("np"),
            VarKind::Global(n) => with_table(|t| f.write_str(t.name(n))),
            VarKind::Pset(p, n) => with_table(|t| write!(f, "{p}.{}", t.name(n))),
        }
    }
}

impl From<&NsVar> for VarId {
    fn from(v: &NsVar) -> VarId {
        with_table(|t| t.intern(v))
    }
}

impl From<NsVar> for VarId {
    fn from(v: NsVar) -> VarId {
        VarId::from(&v)
    }
}

impl From<&VarId> for VarId {
    fn from(v: &VarId) -> VarId {
        *v
    }
}

/// The variable-name interner backing [`VarId`]. A pure value type so it
/// can be unit-tested directly; analysis code uses the thread-local
/// instance through [`with_table`] (or the `From` conversions).
#[derive(Debug, Clone)]
pub struct VarTable {
    names: Vec<String>,
    lookup: HashMap<String, u32>,
}

impl Default for VarTable {
    fn default() -> Self {
        Self::new()
    }
}

impl VarTable {
    /// A fresh table with `"id"` pre-interned at index [`ID_NAME`].
    #[must_use]
    pub fn new() -> VarTable {
        let mut t = VarTable {
            names: Vec::new(),
            lookup: HashMap::new(),
        };
        let idx = t.intern_name("id");
        debug_assert_eq!(idx, ID_NAME);
        t
    }

    /// Interns a name, returning its stable index.
    pub fn intern_name(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.lookup.get(name) {
            return i;
        }
        let i = u32::try_from(self.names.len()).expect("name table overflow");
        self.names.push(name.to_owned());
        self.lookup.insert(name.to_owned(), i);
        i
    }

    /// The name at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was not produced by this table.
    #[must_use]
    pub fn name(&self, idx: u32) -> &str {
        &self.names[idx as usize]
    }

    /// Number of interned names.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if only the pre-interned `"id"` is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.len() <= 1
    }

    /// Packs an [`NsVar`] into its [`VarId`], interning the name.
    pub fn intern(&mut self, v: &NsVar) -> VarId {
        match v {
            NsVar::Zero => VarId::ZERO,
            NsVar::Np => VarId::NP,
            NsVar::Global(name) => VarId::global(self.intern_name(name)),
            NsVar::Pset(p, name) => VarId::pset_var(*p, self.intern_name(name)),
        }
    }

    /// Clears every interned name except the pre-interned `"id"`,
    /// restoring the fresh-table state.
    pub fn reset(&mut self) {
        *self = VarTable::new();
    }

    /// Unpacks a [`VarId`] back into its rich form.
    #[must_use]
    pub fn resolve(&self, v: VarId) -> NsVar {
        match v.kind() {
            VarKind::Zero => NsVar::Zero,
            VarKind::Np => NsVar::Np,
            VarKind::Global(n) => NsVar::Global(self.name(n).to_owned()),
            VarKind::Pset(p, n) => NsVar::Pset(p, self.name(n).to_owned()),
        }
    }
}

thread_local! {
    static TABLE: RefCell<VarTable> = RefCell::new(VarTable::new());
}

/// Runs `f` with the thread-local [`VarTable`]. All `VarId`s flowing
/// through one analysis live on one thread, so the table needs no
/// synchronization (the same pattern as [`crate::stats`]).
pub fn with_table<R>(f: impl FnOnce(&mut VarTable) -> R) -> R {
    TABLE.with(|t| f(&mut t.borrow_mut()))
}

/// Interns a bare name in the thread-local table.
pub fn intern_name(name: &str) -> u32 {
    with_table(|t| t.intern_name(name))
}

/// Resets the calling thread's interner to the fresh-table state.
///
/// Name *indices* — and therefore packed [`VarId`] words — depend on the
/// order names were first interned on the thread, so a worker that has
/// analyzed other programs carries their interning history. The batch
/// runtime calls this before each job so every analysis starts from the
/// same table and produces identical results no matter which worker (or
/// how many workers) ran it.
///
/// Any `VarId` produced before the reset is invalidated (its name index
/// may be reused for a different name); callers must not hold ids across
/// a reset.
pub fn reset_table() {
    with_table(VarTable::reset);
}

/// A clone of the calling thread's interner, for handing to worker
/// threads via [`adopt_table`].
///
/// Packed [`VarId`] words only mean the same thing on two threads when
/// both threads' tables map the same indices to the same names. The
/// parallel round executor snapshots the coordinating thread's table
/// once per round and has each worker adopt it before stepping, so every
/// id produced on a worker resolves identically on the main thread.
#[must_use]
pub fn table_snapshot() -> VarTable {
    with_table(|t| t.clone())
}

/// Replaces the calling thread's interner with `table` (see
/// [`table_snapshot`]).
///
/// Any `VarId` produced on this thread before the adoption is
/// invalidated unless the adopted table is a superset of the old one.
pub fn adopt_table(table: VarTable) {
    with_table(|t| *t = table);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_extraction() {
        assert_eq!(NsVar::Zero.namespace(), None);
        assert_eq!(NsVar::Np.namespace(), None);
        assert_eq!(NsVar::pset(PsetId(3), "x").namespace(), Some(PsetId(3)));
    }

    #[test]
    fn renamed_moves_only_matching_namespace() {
        let x = NsVar::pset(PsetId(1), "x");
        assert_eq!(x.renamed(PsetId(1), PsetId(2)), NsVar::pset(PsetId(2), "x"));
        assert_eq!(x.renamed(PsetId(3), PsetId(2)), x);
        assert_eq!(NsVar::Np.renamed(PsetId(1), PsetId(2)), NsVar::Np);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NsVar::id_of(PsetId(0)).to_string(), "P0.id");
        assert_eq!(NsVar::Global("nrows".into()).to_string(), "nrows");
        assert_eq!(NsVar::Zero.to_string(), "0");
    }

    #[test]
    fn intern_round_trips_every_variant() {
        let mut t = VarTable::new();
        for v in [
            NsVar::Zero,
            NsVar::Np,
            NsVar::Global("nrows".into()),
            NsVar::pset(PsetId(0), "x"),
            NsVar::pset(PsetId(7), "x"),
            NsVar::id_of(PsetId(3)),
        ] {
            let id = t.intern(&v);
            assert_eq!(t.resolve(id), v, "round trip for {v}");
            // Interning is idempotent.
            assert_eq!(t.intern(&v), id);
        }
    }

    #[test]
    fn interning_shares_names_across_namespaces() {
        let mut t = VarTable::new();
        let a = t.intern(&NsVar::pset(PsetId(0), "x"));
        let b = t.intern(&NsVar::pset(PsetId(1), "x"));
        let g = t.intern(&NsVar::Global("x".into()));
        assert_eq!(a.name_index(), b.name_index());
        assert_eq!(a.name_index(), g.name_index());
        assert_ne!(a, b);
        assert_ne!(a, g);
    }

    #[test]
    fn rank_id_is_pure_bit_math() {
        let mut t = VarTable::new();
        let id3 = VarId::id_of(PsetId(3));
        // Agrees with interning the rich form.
        assert_eq!(t.intern(&NsVar::id_of(PsetId(3))), id3);
        assert!(id3.is_rank_id());
        assert!(!t.intern(&NsVar::pset(PsetId(3), "x")).is_rank_id());
        assert!(!VarId::NP.is_rank_id());
        assert!(!VarId::ZERO.is_rank_id());
        assert!(!t.intern(&NsVar::Global("id".into())).is_rank_id());
    }

    #[test]
    fn namespace_and_rename_on_packed_ids() {
        let mut t = VarTable::new();
        let x1 = t.intern(&NsVar::pset(PsetId(1), "x"));
        assert_eq!(x1.namespace(), Some(PsetId(1)));
        assert_eq!(VarId::ZERO.namespace(), None);
        assert_eq!(VarId::NP.namespace(), None);
        assert_eq!(t.intern(&NsVar::Global("g".into())).namespace(), None);

        let x2 = x1.renamed(PsetId(1), PsetId(2));
        assert_eq!(t.resolve(x2), NsVar::pset(PsetId(2), "x"));
        assert_eq!(x1.renamed(PsetId(3), PsetId(2)), x1);
        assert_eq!(VarId::NP.renamed(PsetId(1), PsetId(2)), VarId::NP);
        // Rename round trip is the identity.
        assert_eq!(x2.renamed(PsetId(2), PsetId(1)), x1);
    }

    #[test]
    fn packed_order_matches_variant_order() {
        let mut t = VarTable::new();
        let g = t.intern(&NsVar::Global("a".into()));
        let p0 = t.intern(&NsVar::pset(PsetId(0), "a"));
        let p1 = t.intern(&NsVar::pset(PsetId(1), "a"));
        assert!(VarId::ZERO < VarId::NP);
        assert!(VarId::NP < g);
        assert!(g < p0);
        assert!(p0 < p1, "pset id is the major key within Pset");
    }

    #[test]
    fn thread_local_conversions_and_display() {
        let v = NsVar::pset(PsetId(2), "count");
        let id: VarId = (&v).into();
        assert_eq!(id.resolve(), v);
        assert_eq!(id.to_string(), "P2.count");
        assert_eq!(VarId::ZERO.to_string(), "0");
        assert_eq!(VarId::NP.to_string(), "np");
        assert_eq!(VarId::global(intern_name("nrows")).to_string(), "nrows");
    }

    #[test]
    #[should_panic(expected = "overflows VarId packing")]
    fn pset_id_overflow_panics() {
        let _ = VarId::pset_var(PsetId(MAX_PSET_ID + 1), 0);
    }
}
