//! Namespaced variables: the paper's per-process-set variable copies.

use std::fmt;

/// Identifies one process set within a pCFG node. Process-set ids are
/// allocated by the analysis engine; the constraint graph only uses them
/// as namespaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PsetId(pub u32);

impl fmt::Display for PsetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A variable in the analysis state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NsVar {
    /// The distinguished constant-zero anchor: `v ≤ Zero + c` encodes
    /// `v ≤ c`.
    Zero,
    /// The global process count `np` (identical on every process).
    Np,
    /// A global symbolic parameter shared by all processes (e.g. the
    /// `nrows`/`ncols` grid dimensions once proven uniform).
    Global(String),
    /// A per-process-set variable. The name `"id"` is the set's copy of
    /// the rank variable.
    Pset(PsetId, String),
}

impl NsVar {
    /// The per-set rank variable.
    #[must_use]
    pub fn id_of(pset: PsetId) -> NsVar {
        NsVar::Pset(pset, "id".to_owned())
    }

    /// A per-set user variable.
    #[must_use]
    pub fn pset(pset: PsetId, name: impl Into<String>) -> NsVar {
        NsVar::Pset(pset, name.into())
    }

    /// The process set owning this variable, if any.
    #[must_use]
    pub fn namespace(&self) -> Option<PsetId> {
        match self {
            NsVar::Pset(p, _) => Some(*p),
            _ => None,
        }
    }

    /// Re-homes a per-set variable into namespace `to` (identity for
    /// globals).
    #[must_use]
    pub fn renamed(&self, from: PsetId, to: PsetId) -> NsVar {
        match self {
            NsVar::Pset(p, name) if *p == from => NsVar::Pset(to, name.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for NsVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NsVar::Zero => f.write_str("0"),
            NsVar::Np => f.write_str("np"),
            NsVar::Global(name) => write!(f, "{name}"),
            NsVar::Pset(p, name) => write!(f, "{p}.{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_extraction() {
        assert_eq!(NsVar::Zero.namespace(), None);
        assert_eq!(NsVar::Np.namespace(), None);
        assert_eq!(NsVar::pset(PsetId(3), "x").namespace(), Some(PsetId(3)));
    }

    #[test]
    fn renamed_moves_only_matching_namespace() {
        let x = NsVar::pset(PsetId(1), "x");
        assert_eq!(x.renamed(PsetId(1), PsetId(2)), NsVar::pset(PsetId(2), "x"));
        assert_eq!(x.renamed(PsetId(3), PsetId(2)), x);
        assert_eq!(NsVar::Np.renamed(PsetId(1), PsetId(2)), NsVar::Np);
    }

    #[test]
    fn display_forms() {
        assert_eq!(NsVar::id_of(PsetId(0)).to_string(), "P0.id");
        assert_eq!(NsVar::Global("nrows".into()).to_string(), "nrows");
        assert_eq!(NsVar::Zero.to_string(), "0");
    }
}
