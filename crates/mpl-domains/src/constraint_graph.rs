//! Constraint graphs (§VII-A): conjunctions of difference constraints
//! `x ≤ y + c` over interned variables, stored as a dense difference-bound
//! matrix keyed by [`VarId`] with instrumented, *lazy* transitive closure.
//!
//! Writes record dirty edges; [`ConstraintGraph::close`] is a no-op when
//! nothing changed and otherwise drains the dirty set with per-edge O(n²)
//! incremental propagation, falling back to the full O(n³) Floyd–Warshall
//! pass only when enough of the matrix was touched to make that cheaper.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;
use std::time::Instant;

use crate::linexpr::LinExpr;
use crate::stats;
use crate::var::{PsetId, VarId};

/// "No constraint". Kept well below `i64::MAX` so bound additions cannot
/// overflow; any sum reaching `INF` is clamped back to `INF`.
const INF: i64 = i64::MAX / 4;

/// The widening threshold ladder used by [`ConstraintGraph::widen`] when
/// the client supplies none (see
/// [`ConstraintGraph::widen_with_thresholds`]).
pub const DEFAULT_WIDEN_THRESHOLDS: [i64; 7] = [-2, -1, 0, 1, 2, 4, 8];

fn add(a: i64, b: i64) -> i64 {
    if a >= INF || b >= INF {
        INF
    } else {
        (a + b).min(INF)
    }
}

/// A packed `VarId` is already well-mixed enough for an identity-style
/// hash: one multiply by a 64-bit golden-ratio constant replaces SipHash
/// on the hot index lookups.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = u64::from(v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type IdMap = HashMap<VarId, usize, BuildHasherDefault<IdHasher>>;

/// All bottoms fingerprint to this sentinel: once a negative cycle is
/// found, recorded bounds are meaningless and every bottom is the same
/// lattice element.
const BOTTOM_FP: u64 = 0x0B07_70B0_0B07_70B0;

/// SplitMix64 finalizer — the mixing behind the structural fingerprint.
/// Public because every fingerprint in the workspace (DBM structure,
/// constant environments, analysis-request content hashes) draws from
/// this one mixing function.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

use splitmix64 as mix64;

/// The fingerprint contribution of the bound `x ≤ y + c`.
fn edge_mix(x: VarId, y: VarId, c: i64) -> u64 {
    let pair = (u64::from(x.raw()) << 32) | u64::from(y.raw());
    mix64(pair.wrapping_add(mix64(c as u64 ^ 0x9E37_79B9_7F4A_7C15)))
}

/// The fingerprint contribution of tracking variable `x` at all.
fn var_mix(x: VarId) -> u64 {
    mix64(u64::from(x.raw()) ^ 0xD6E8_FEB8_6659_FD93)
}

/// The crate's shared fingerprint mixer — [`crate::ConstEnv`] reuses it
/// so all structural fingerprints draw from one mixing function.
pub(crate) fn mix_for_fingerprint(z: u64) -> u64 {
    mix64(z)
}

thread_local! {
    /// Reusable keep-list for projections: `remove_var` and
    /// `drop_namespace` recycle this instead of building a fresh
    /// `Vec<usize>` on every call.
    static KEEP_SCRATCH: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// A conjunction of difference constraints `x ≤ y + c`.
///
/// The distinguished variable [`VarId::ZERO`] is always present, so unary
/// bounds are expressed as differences against it (`x ≤ 5` is
/// `x ≤ Zero + 5`). An inconsistent conjunction (negative cycle) is the
/// explicit bottom element, reported by [`ConstraintGraph::is_bottom`].
///
/// Every variable-taking method accepts `impl Into<VarId>`, so call sites
/// may pass a packed [`VarId`] or a rich [`crate::NsVar`] (by value or
/// reference) interchangeably.
///
/// # Example
///
/// ```
/// use mpl_domains::{ConstraintGraph, NsVar, PsetId};
///
/// let mut g = ConstraintGraph::new();
/// let i = NsVar::pset(PsetId(0), "i");
/// g.assert_eq_const(&i, 1);                 // i = 1
/// g.assert_le(&i, &NsVar::Np, -1);          // i <= np - 1
/// assert_eq!(g.const_of(&i), Some(1));
/// assert!(g.implies_le(&NsVar::Zero, &NsVar::Np, -2)); // 0 <= np - 2
/// ```
#[derive(Clone)]
pub struct ConstraintGraph {
    vars: Vec<VarId>,
    index: IdMap,
    /// Row-major bound matrix with stride `cap ≥ n`; `m[i*cap + j] = c`
    /// means `vars[i] ≤ vars[j] + c`. The capacity grows geometrically so
    /// adding a variable does not reallocate the whole matrix.
    ///
    /// Shared copy-on-write: cloning a graph bumps a refcount, and the
    /// first mutation through [`ConstraintGraph::m_mut`] materializes a
    /// private copy. Read-only queries on an already-closed graph never
    /// copy, even through `&mut self` accessors.
    m: Arc<Vec<i64>>,
    cap: usize,
    closed: bool,
    infeasible: bool,
    /// Edges written since the matrix was last closed (only tracked while
    /// `closed`; an unclosed matrix is fully re-closed anyway).
    dirty: Vec<(u32, u32)>,
    /// Order-canonical structural fingerprint: XOR of [`var_mix`] per
    /// tracked variable and [`edge_mix`] per finite off-diagonal bound,
    /// maintained incrementally by every mutating operation.
    fp: u64,
}

impl Default for ConstraintGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl ConstraintGraph {
    /// An unconstrained, feasible graph containing only [`VarId::ZERO`].
    #[must_use]
    pub fn new() -> ConstraintGraph {
        let mut g = ConstraintGraph {
            vars: Vec::new(),
            index: IdMap::default(),
            m: Arc::new(Vec::new()),
            cap: 0,
            closed: true,
            infeasible: false,
            dirty: Vec::new(),
            fp: 0,
        };
        g.ensure_var(VarId::ZERO);
        g
    }

    /// The canonical bottom element.
    #[must_use]
    pub fn bottom() -> ConstraintGraph {
        let mut g = ConstraintGraph::new();
        g.infeasible = true;
        g
    }

    /// True if the constraints are known unsatisfiable. Detection of a
    /// contradiction introduced by a deferred edge happens at the next
    /// [`ConstraintGraph::close`] (the engine always closes before
    /// checking); the common direct cycle is caught eagerly at
    /// [`ConstraintGraph::assert_le`] time.
    #[must_use]
    pub fn is_bottom(&self) -> bool {
        self.infeasible
    }

    /// Number of tracked variables (including `Zero`).
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// All tracked variables.
    #[must_use]
    pub fn variables(&self) -> &[VarId] {
        &self.vars
    }

    /// True if `v` is tracked.
    #[must_use]
    pub fn has_var(&self, v: impl Into<VarId>) -> bool {
        self.index.contains_key(&v.into())
    }

    fn n(&self) -> usize {
        self.vars.len()
    }

    fn at(&self, i: usize, j: usize) -> i64 {
        self.m[i * self.cap + j]
    }

    /// Mutable access to the bound matrix, materializing a private copy
    /// when the allocation is shared (copy-on-write).
    fn m_mut(&mut self) -> &mut Vec<i64> {
        if Arc::strong_count(&self.m) != 1 {
            stats::record_matrix_copy();
        }
        Arc::make_mut(&mut self.m)
    }

    fn set(&mut self, i: usize, j: usize, c: i64) {
        let idx = i * self.cap + j;
        let old = self.m[idx];
        if old == c {
            return;
        }
        if i != j {
            let (x, y) = (self.vars[i], self.vars[j]);
            if old < INF {
                self.fp ^= edge_mix(x, y, old);
            }
            if c < INF {
                self.fp ^= edge_mix(x, y, c);
            }
        }
        self.m_mut()[idx] = c;
    }

    /// True if every recorded bound is already propagated — no closure
    /// work pending.
    fn is_effectively_closed(&self) -> bool {
        self.infeasible || (self.closed && self.dirty.is_empty())
    }

    /// Order-canonical 64-bit structural fingerprint.
    ///
    /// Equal fingerprints stand for structural equality (same tracked
    /// variables, same finite recorded bounds, or both bottom): the value
    /// is an XOR of per-variable and per-bound mixes, so it is
    /// independent of insertion order and matrix layout. Different
    /// fingerprints say nothing — the caller falls back to a full walk.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        if self.infeasible {
            BOTTOM_FP
        } else {
            self.fp
        }
    }

    /// The fingerprint recomputed from scratch — the oracle the
    /// incremental maintenance is property-tested against.
    #[doc(hidden)]
    #[must_use]
    pub fn recomputed_fingerprint(&self) -> u64 {
        if self.infeasible {
            return BOTTOM_FP;
        }
        let mut fp = 0;
        for &v in &self.vars {
            fp ^= var_mix(v);
        }
        for i in 0..self.n() {
            for j in 0..self.n() {
                if i != j {
                    let c = self.at(i, j);
                    if c < INF {
                        fp ^= edge_mix(self.vars[i], self.vars[j], c);
                    }
                }
            }
        }
        fp
    }

    /// True if the two graphs record identical constraints: the same
    /// variable set and the same finite bounds (positions may differ).
    /// Any two bottoms compare equal. This is the structural equality
    /// that fingerprint equality stands for.
    #[must_use]
    pub fn same_shape(&self, other: &ConstraintGraph) -> bool {
        if self.infeasible || other.infeasible {
            return self.infeasible && other.infeasible;
        }
        if self.vars.len() != other.vars.len() {
            return false;
        }
        let mut map = Vec::with_capacity(self.vars.len());
        for v in &self.vars {
            match other.index.get(v) {
                Some(&oi) => map.push(oi),
                None => return false,
            }
        }
        for i in 0..self.n() {
            for j in 0..self.n() {
                if i == j {
                    continue;
                }
                let a = self.at(i, j);
                let b = other.at(map[i], map[j]);
                if a < INF {
                    if a != b {
                        return false;
                    }
                } else if b < INF {
                    return false;
                }
            }
        }
        true
    }

    /// Heap footprint of the bound matrix together with an identity for
    /// its (possibly shared) allocation, so a store of CoW states can
    /// estimate bytes without double-counting shared matrices.
    #[must_use]
    pub fn matrix_id_and_bytes(&self) -> (usize, usize) {
        (
            Arc::as_ptr(&self.m) as usize,
            self.m.len() * std::mem::size_of::<i64>(),
        )
    }

    /// Heap bytes owned uniquely by this graph value (variable list and
    /// index), excluding the possibly-shared matrix.
    #[must_use]
    pub fn side_bytes(&self) -> usize {
        self.vars.capacity() * std::mem::size_of::<VarId>()
            + self.index.capacity() * std::mem::size_of::<(VarId, usize, u64)>()
            + self.dirty.capacity() * std::mem::size_of::<(u32, u32)>()
    }

    /// Adds `v` (unconstrained) if missing; returns its index.
    pub fn ensure_var(&mut self, v: impl Into<VarId>) -> usize {
        let v = v.into();
        if let Some(&i) = self.index.get(&v) {
            return i;
        }
        let old_n = self.n();
        if old_n == self.cap {
            let new_cap = (old_n + 1).next_power_of_two().max(8);
            let mut m = vec![INF; new_cap * new_cap];
            for i in 0..old_n {
                m[i * new_cap..i * new_cap + old_n]
                    .copy_from_slice(&self.m[i * self.cap..i * self.cap + old_n]);
            }
            self.m = Arc::new(m);
            self.cap = new_cap;
        } else {
            // Clear the stale row/column left behind by compaction
            // (outside the live region, so no fingerprint delta).
            let cap = self.cap;
            let m = self.m_mut();
            for k in 0..=old_n {
                m[old_n * cap + k] = INF;
                m[k * cap + old_n] = INF;
            }
        }
        self.set(old_n, old_n, 0);
        self.vars.push(v);
        self.index.insert(v, old_n);
        self.fp ^= var_mix(v);
        // An unconstrained variable cannot invalidate closure.
        old_n
    }

    /// Runs the full O(n³) Floyd–Warshall closure (instrumented).
    fn full_close(&mut self) {
        if self.infeasible {
            return;
        }
        let start = Instant::now();
        let n = self.n();
        for k in 0..n {
            for i in 0..n {
                let ik = self.at(i, k);
                if ik >= INF {
                    continue;
                }
                for j in 0..n {
                    let through = add(ik, self.at(k, j));
                    if through < self.at(i, j) {
                        self.set(i, j, through);
                    }
                }
            }
        }
        for i in 0..n {
            if self.at(i, i) < 0 {
                self.infeasible = true;
                break;
            }
        }
        self.closed = true;
        stats::record_full(n, start.elapsed().as_nanos() as u64);
    }

    /// Propagates the single edge `vars[i] ≤ vars[j] + m[i][j]` through an
    /// otherwise closed matrix: the O(n²) incremental step (instrumented).
    fn propagate_edge(&mut self, i: usize, j: usize) {
        let start = Instant::now();
        let n = self.n();
        let c = self.at(i, j);
        // Paths p -> i -> j -> q through the new edge.
        for p in 0..n {
            let pi = self.at(p, i);
            if pi >= INF {
                continue;
            }
            let via = add(pi, c);
            for q in 0..n {
                let cand = add(via, self.at(j, q));
                if cand < self.at(p, q) {
                    self.set(p, q, cand);
                }
            }
        }
        for p in 0..n {
            if self.at(p, p) < 0 {
                self.infeasible = true;
                break;
            }
        }
        stats::record_incremental(n, start.elapsed().as_nanos() as u64);
    }

    /// Restores closure. A no-op when nothing changed since the last
    /// closure; otherwise drains the dirty edges one incremental O(n²)
    /// step each, or falls back to one full O(n³) pass when the dirty set
    /// is large enough (or the matrix was never closed).
    ///
    /// Draining sequentially is complete: each propagation runs against a
    /// matrix already closed with respect to all previously drained
    /// edges, so every shortest path using several new edges is built up
    /// edge by edge.
    pub fn close(&mut self) {
        if self.infeasible {
            return;
        }
        if !self.closed {
            self.dirty.clear();
            self.full_close();
            return;
        }
        if self.dirty.is_empty() {
            return;
        }
        if self.dirty.len() * 2 >= self.n() {
            self.dirty.clear();
            self.closed = false;
            self.full_close();
            return;
        }
        let dirty = std::mem::take(&mut self.dirty);
        for (i, j) in dirty {
            if self.infeasible {
                break;
            }
            self.propagate_edge(i as usize, j as usize);
        }
    }

    fn ensure_closed(&mut self) {
        self.close();
    }

    /// Asserts `x ≤ y + c`.
    ///
    /// Missing variables are added. The edge is recorded and closure is
    /// deferred to the next query or explicit [`ConstraintGraph::close`];
    /// only a direct contradiction (`y ≤ x + c'` with `c + c' < 0`) is
    /// detected immediately.
    pub fn assert_le(&mut self, x: impl Into<VarId>, y: impl Into<VarId>, c: i64) {
        if self.infeasible {
            return;
        }
        let i = self.ensure_var(x.into());
        let j = self.ensure_var(y.into());
        if i == j {
            if c < 0 {
                self.infeasible = true;
            }
            return;
        }
        if c >= self.at(i, j) {
            return; // No new information.
        }
        self.set(i, j, c);
        if !self.closed {
            return; // A full closure is pending anyway.
        }
        if stats::force_full_closure() {
            // Ablation mode: behave like the paper's unoptimized
            // prototype and re-run the full O(n³) closure immediately.
            self.dirty.clear();
            self.closed = false;
            self.full_close();
            return;
        }
        if add(c, self.at(j, i)) < 0 {
            self.infeasible = true;
            return;
        }
        self.dirty.push((i as u32, j as u32));
    }

    /// Asserts `x = y + c`.
    pub fn assert_eq_offset(&mut self, x: impl Into<VarId>, y: impl Into<VarId>, c: i64) {
        let (x, y) = (x.into(), y.into());
        self.assert_le(x, y, c);
        self.assert_le(y, x, -c);
    }

    /// Asserts `x = c`.
    pub fn assert_eq_const(&mut self, x: impl Into<VarId>, c: i64) {
        self.assert_eq_offset(x.into(), VarId::ZERO, c);
    }

    /// Asserts `x = e` for a linear expression.
    pub fn assert_eq_expr(&mut self, x: impl Into<VarId>, e: &LinExpr) {
        match e.var {
            Some(v) => self.assert_eq_offset(x.into(), v, e.offset),
            None => self.assert_eq_const(x.into(), e.offset),
        }
    }

    /// Asserts `x ≤ e`.
    pub fn assert_le_expr(&mut self, x: impl Into<VarId>, e: &LinExpr) {
        self.assert_le(x.into(), e.var.unwrap_or(VarId::ZERO), e.offset);
    }

    /// Asserts `e ≤ x`.
    pub fn assert_ge_expr(&mut self, x: impl Into<VarId>, e: &LinExpr) {
        self.assert_le(e.var.unwrap_or(VarId::ZERO), x.into(), -e.offset);
    }

    /// The tightest known `c` with `x ≤ y + c`, or `None` if unconstrained
    /// (or either variable is untracked).
    #[must_use = "returns the bound without modifying the graph"]
    pub fn le_bound(&mut self, x: impl Into<VarId>, y: impl Into<VarId>) -> Option<i64> {
        let (x, y) = (x.into(), y.into());
        self.ensure_closed();
        if self.infeasible {
            return Some(i64::MIN / 4); // Bottom entails everything.
        }
        let i = *self.index.get(&x)?;
        let j = *self.index.get(&y)?;
        let c = self.at(i, j);
        (c < INF).then_some(c)
    }

    /// True if the constraints imply `x ≤ y + c`.
    pub fn implies_le(&mut self, x: impl Into<VarId>, y: impl Into<VarId>, c: i64) -> bool {
        match self.le_bound(x.into(), y.into()) {
            Some(b) => b <= c,
            None => false,
        }
    }

    /// `Some(c)` if the constraints imply `x = y + c`. Returns `None` on
    /// bottom (an unreachable state pins nothing down usefully).
    pub fn eq_offset(&mut self, x: impl Into<VarId>, y: impl Into<VarId>) -> Option<i64> {
        let (x, y) = (x.into(), y.into());
        self.ensure_closed();
        if self.infeasible {
            return None;
        }
        let upper = self.le_bound(x, y)?;
        let lower = self.le_bound(y, x)?;
        (upper == -lower).then_some(upper)
    }

    /// The constant value of `x` if the constraints pin it down.
    pub fn const_of(&mut self, x: impl Into<VarId>) -> Option<i64> {
        self.eq_offset(x.into(), VarId::ZERO)
    }

    /// Every expression `y + c` (with `y ≠ x`) that provably equals `x`,
    /// including `Zero + c` for constants. This powers the paper's
    /// multi-expression process-set bounds (Fig 5's `[1,i..1,i]`). A
    /// single scan of `x`'s row/column of the closed matrix — no clones,
    /// no per-pair lookups.
    pub fn equalities_of(&mut self, x: impl Into<VarId>) -> Vec<LinExpr> {
        let x = x.into();
        if self.infeasible || !self.has_var(x) {
            return Vec::new();
        }
        self.ensure_closed();
        if self.infeasible {
            return Vec::new();
        }
        let i = self.index[&x];
        let mut out = Vec::new();
        for j in 0..self.n() {
            if j == i {
                continue;
            }
            let up = self.at(i, j);
            let down = self.at(j, i);
            if up < INF && down < INF && up == -down {
                let y = self.vars[j];
                if y == VarId::ZERO {
                    out.push(LinExpr::constant(up));
                } else {
                    out.push(LinExpr::var_plus(y, up));
                }
            }
        }
        out.sort();
        out
    }

    /// Evaluates a linear expression to a constant if possible.
    pub fn eval_expr(&mut self, e: &LinExpr) -> Option<i64> {
        match e.var {
            None => Some(e.offset),
            Some(v) => self.const_of(v).map(|c| c + e.offset),
        }
    }

    /// Compares two linear expressions: `Some(Ordering)` when the graph
    /// proves a relation, `None` when incomparable. Equal means provably
    /// equal.
    pub fn compare_exprs(&mut self, a: &LinExpr, b: &LinExpr) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        let av = a.var.unwrap_or(VarId::ZERO);
        let bv = b.var.unwrap_or(VarId::ZERO);
        let delta = a.offset - b.offset;
        // a - b ≤ hi where av ≤ bv + u gives hi = u + delta;
        // a - b ≥ lo where bv ≤ av + l gives lo = delta - l.
        let hi = self.le_bound(av, bv).map(|u| u + delta);
        let lo = self.le_bound(bv, av).map(|l| delta - l);
        match (hi, lo) {
            (Some(0), Some(0)) => Some(Ordering::Equal),
            (Some(hi), _) if hi < 0 => Some(Ordering::Less),
            (_, Some(lo)) if lo > 0 => Some(Ordering::Greater),
            _ => None,
        }
    }

    /// True if the graph proves `a ≤ b` (for linear expressions).
    pub fn proves_le(&mut self, a: &LinExpr, b: &LinExpr) -> bool {
        let av = a.var.unwrap_or(VarId::ZERO);
        let bv = b.var.unwrap_or(VarId::ZERO);
        match self.le_bound(av, bv) {
            Some(u) => u + a.offset - b.offset <= 0,
            None => false,
        }
    }

    /// True if the graph proves `a = b`.
    pub fn proves_eq(&mut self, a: &LinExpr, b: &LinExpr) -> bool {
        self.proves_le(a, b) && self.proves_le(b, a)
    }

    /// Removes all constraints mentioning `x` (keeping consequences
    /// routed through it), leaving `x` tracked but unconstrained.
    pub fn havoc(&mut self, x: impl Into<VarId>) {
        let x = x.into();
        if self.infeasible {
            return;
        }
        self.ensure_closed();
        let Some(&i) = self.index.get(&x) else {
            self.ensure_var(x);
            return;
        };
        let n = self.n();
        for k in 0..n {
            self.set(i, k, INF);
            self.set(k, i, INF);
        }
        self.set(i, i, 0);
    }

    /// Assigns `x := e`. Handles the self-referential case `x := x + c`
    /// by translating `x`'s constraints.
    pub fn assign(&mut self, x: impl Into<VarId>, e: &LinExpr) {
        let x = x.into();
        if self.infeasible {
            return;
        }
        if e.var == Some(x) {
            // x := x + c — shift every bound involving x.
            let c = e.offset;
            self.ensure_closed();
            let i = self.ensure_var(x);
            let n = self.n();
            for k in 0..n {
                if k == i {
                    continue;
                }
                let xk = self.at(i, k);
                if xk < INF {
                    self.set(i, k, add(xk, c));
                }
                let kx = self.at(k, i);
                if kx < INF {
                    self.set(k, i, add(kx, -c));
                }
            }
            return;
        }
        self.havoc(x);
        self.assert_eq_expr(x, e);
    }

    /// Assigns `x` a completely unknown value.
    pub fn assign_unknown(&mut self, x: impl Into<VarId>) {
        self.havoc(x.into());
    }

    /// Compacts the matrix in place onto the (ascending) kept indices.
    /// Reads always sit at or beyond the write cursor, so no scratch
    /// matrix is needed; the capacity is retained for reuse.
    fn compact_keep(&mut self, keep: &[usize]) {
        let cap = self.cap;
        let m = self.m_mut();
        for (a, &oa) in keep.iter().enumerate() {
            for (b, &ob) in keep.iter().enumerate() {
                m[a * cap + b] = m[oa * cap + ob];
            }
        }
        self.vars = keep.iter().map(|&k| self.vars[k]).collect();
        self.index.clear();
        for (k, &v) in self.vars.iter().enumerate() {
            self.index.insert(v, k);
        }
        // Dropping a variable erases a whole row and column of bounds;
        // a from-scratch recompute matches the O(n²) move cost above.
        self.fp = self.recomputed_fingerprint();
    }

    /// Removes `x` entirely (projecting the constraints onto the rest).
    pub fn remove_var(&mut self, x: impl Into<VarId>) {
        let x = x.into();
        if !self.has_var(x) {
            return;
        }
        self.ensure_closed();
        let i = self.index[&x];
        KEEP_SCRATCH.with(|s| {
            let mut keep = s.borrow_mut();
            keep.clear();
            keep.extend((0..self.n()).filter(|&k| k != i));
            self.compact_keep(&keep);
        });
    }

    /// Removes every variable owned by process set `p` in one projection
    /// pass.
    pub fn drop_namespace(&mut self, p: PsetId) {
        if !self.vars.iter().any(|v| v.namespace() == Some(p)) {
            return;
        }
        self.ensure_closed();
        KEEP_SCRATCH.with(|s| {
            let mut keep = s.borrow_mut();
            keep.clear();
            keep.extend((0..self.n()).filter(|&k| self.vars[k].namespace() != Some(p)));
            self.compact_keep(&keep);
        });
    }

    /// Renames every variable of namespace `from` into namespace `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` already owns a variable with a clashing name.
    pub fn rename_namespace(&mut self, from: PsetId, to: PsetId) {
        if from == to {
            return;
        }
        let n = self.n();
        // Collect the renamed positions first, checking collisions
        // against the pre-rename index (renaming preserves the name
        // part, so two sources can never map to one destination).
        let mut renamed: Vec<(usize, VarId, VarId)> = Vec::new();
        for (k, &v) in self.vars.iter().enumerate() {
            if v.namespace() == Some(from) {
                let r = v.renamed(from, to);
                assert!(!self.index.contains_key(&r), "rename collision on {r}");
                renamed.push((k, v, r));
            }
        }
        if renamed.is_empty() {
            return;
        }
        // Fingerprint delta: re-mix every bound touching a renamed
        // variable under its new id — O(renamed · n), not O(n²).
        let mut new_id: Vec<Option<VarId>> = vec![None; n];
        for &(k, _, r) in &renamed {
            new_id[k] = Some(r);
        }
        for &(i, oi, ni) in &renamed {
            self.fp ^= var_mix(oi) ^ var_mix(ni);
            for (j, nid) in new_id.iter().enumerate() {
                if i == j {
                    continue;
                }
                let oj = self.vars[j];
                let nj = nid.unwrap_or(oj);
                let c = self.at(i, j);
                if c < INF {
                    self.fp ^= edge_mix(oi, oj, c) ^ edge_mix(ni, nj, c);
                }
                // Bounds *into* i from a non-renamed row are not covered
                // by any renamed row's pass — re-mix them here.
                if nid.is_none() {
                    let c = self.at(j, i);
                    if c < INF {
                        self.fp ^= edge_mix(oj, oi, c) ^ edge_mix(oj, ni, c);
                    }
                }
            }
        }
        for &(k, _, r) in &renamed {
            self.vars[k] = r;
        }
        self.index.clear();
        for (k, &v) in self.vars.iter().enumerate() {
            self.index.insert(v, k);
        }
    }

    /// Duplicates every variable of namespace `src` into namespace `dst`
    /// (which must be empty), copying all internal and external
    /// constraints — the state-copy used when a process set splits.
    pub fn clone_namespace(&mut self, src: PsetId, dst: PsetId) {
        assert!(
            !self.vars.iter().any(|v| v.namespace() == Some(dst)),
            "destination namespace {dst} not empty"
        );
        if self.infeasible {
            return;
        }
        self.ensure_closed();
        let src_idx: Vec<usize> = (0..self.n())
            .filter(|&i| self.vars[i].namespace() == Some(src))
            .collect();
        // Add the copies.
        let mut pairs: Vec<(usize, usize)> = Vec::new(); // (src index, dst index)
        for &si in &src_idx {
            let copy = self.vars[si].renamed(src, dst);
            let di = self.ensure_var(copy);
            pairs.push((si, di));
        }
        // Copy constraints. Internal (dst-dst) pairs mirror the src-src
        // bounds; dst-to-external pairs mirror src-to-external bounds.
        // Crucially, no constraint is added between a copy and its
        // original: after a process-set split the two subsets' variables
        // need not agree pointwise, so equating them would be unsound.
        let n = self.n();
        let src_of: HashMap<usize, usize> = pairs.iter().map(|&(s, d)| (d, s)).collect();
        let is_src: Vec<bool> = (0..n)
            .map(|k| self.vars[k].namespace() == Some(src))
            .collect();
        for &(si, di) in &pairs {
            for (k, &k_is_src) in is_src.iter().enumerate().take(n) {
                if k == di {
                    continue;
                }
                let mirror = match src_of.get(&k) {
                    Some(&sk) => sk,              // k is a fellow copy
                    None if k_is_src => continue, // never relate copy to original
                    None => k,                    // external variable
                };
                let down = self.at(si, mirror);
                if down < self.at(di, k) {
                    self.set(di, k, down);
                }
                let up = self.at(mirror, si);
                if up < self.at(k, di) {
                    self.set(k, di, up);
                }
            }
        }
        // Complete the copy-to-original bounds implied through shared
        // externals (e.g. both pinned to the same constant via Zero):
        // m[si][di] = min over external k of m[si][k] + m[k][di], and
        // symmetrically. This O(n_src · n) pass keeps the matrix closed
        // enough for sound queries without a full O(n³) re-closure per
        // process-set split; any residual un-closure only loses
        // precision, never soundness (INF reads as "no constraint").
        if self.closed {
            for &(si, di) in &pairs {
                let mut down = INF;
                let mut up = INF;
                for k in 0..n {
                    if k == si || k == di {
                        continue;
                    }
                    down = down.min(add(self.at(si, k), self.at(k, di)));
                    up = up.min(add(self.at(di, k), self.at(k, si)));
                }
                if down < self.at(si, di) {
                    self.set(si, di, down);
                }
                if up < self.at(di, si) {
                    self.set(di, si, up);
                }
            }
        }
    }

    /// Least upper bound: keeps each bound only at the weaker of the two
    /// values, over the intersection of the variable sets. Operands that
    /// are already closed are borrowed, not cloned.
    #[must_use]
    pub fn join(&self, other: &ConstraintGraph) -> ConstraintGraph {
        if self.infeasible {
            return other.clone();
        }
        if other.infeasible {
            return self.clone();
        }
        let a_store;
        let a = if self.is_effectively_closed() {
            self
        } else {
            let mut g = self.clone();
            g.ensure_closed();
            a_store = g;
            &a_store
        };
        let b_store;
        let b = if other.is_effectively_closed() {
            other
        } else {
            let mut g = other.clone();
            g.ensure_closed();
            b_store = g;
            &b_store
        };
        let mut out = ConstraintGraph::new();
        // (index in a, index in b, index in out) per common variable.
        let mut triples: Vec<(usize, usize, usize)> = Vec::new();
        for (ai, &v) in a.vars.iter().enumerate() {
            if let Some(&bi) = b.index.get(&v) {
                let oi = out.ensure_var(v);
                triples.push((ai, bi, oi));
            }
        }
        for &(ai, bi, oi) in &triples {
            for &(aj, bj, oj) in &triples {
                if oi == oj {
                    continue;
                }
                let bound = a.at(ai, aj).max(b.at(bi, bj));
                if bound < INF {
                    out.set(oi, oj, bound);
                }
            }
        }
        // The pointwise max of two closed DBMs is closed.
        out.closed = true;
        out
    }

    /// Widening with the default threshold ladder
    /// ([`DEFAULT_WIDEN_THRESHOLDS`]).
    #[must_use]
    pub fn widen(&self, newer: &ConstraintGraph) -> ConstraintGraph {
        self.widen_with_thresholds(newer, &DEFAULT_WIDEN_THRESHOLDS)
    }

    /// Widening: keeps a bound only if the newer state did not weaken it.
    /// A weakened bound is snapped up to the smallest *threshold* in the
    /// given ascending set that still accommodates the newer bound
    /// (widening with thresholds — needed to retain loop facts like
    /// `i ≤ np` in Fig 5, whose exit edge derives `i = np`); beyond the
    /// largest threshold the bound is dropped to ∞. A finite threshold
    /// set guarantees a finite ascending chain. The result is
    /// deliberately *not* re-closed (re-closing a widened DBM can defeat
    /// termination).
    #[must_use]
    pub fn widen_with_thresholds(
        &self,
        newer: &ConstraintGraph,
        thresholds: &[i64],
    ) -> ConstraintGraph {
        if self.infeasible {
            return newer.clone();
        }
        if newer.infeasible {
            return self.clone();
        }
        let a_store;
        let a = if self.is_effectively_closed() {
            self
        } else {
            let mut g = self.clone();
            g.ensure_closed();
            a_store = g;
            &a_store
        };
        let b_store;
        let b = if newer.is_effectively_closed() {
            newer
        } else {
            let mut g = newer.clone();
            g.ensure_closed();
            b_store = g;
            &b_store
        };
        let mut out = ConstraintGraph::new();
        let mut triples: Vec<(usize, usize, usize)> = Vec::new();
        for (ai, &v) in a.vars.iter().enumerate() {
            if let Some(&bi) = b.index.get(&v) {
                let oi = out.ensure_var(v);
                triples.push((ai, bi, oi));
            }
        }
        for &(ai, bi, oi) in &triples {
            for &(aj, bj, oj) in &triples {
                if oi == oj {
                    continue;
                }
                let old = a.at(ai, aj);
                let new = b.at(bi, bj);
                let widened = if new <= old {
                    old
                } else {
                    thresholds
                        .iter()
                        .copied()
                        .find(|&t| t >= new)
                        .unwrap_or(INF)
                };
                if widened < INF {
                    out.set(oi, oj, widened);
                }
            }
        }
        // Treat as closed: queries read recorded bounds only, which is
        // sound (possibly imprecise) and preserves termination.
        out.closed = true;
        out
    }

    /// True if `self` entails `other` (every constraint of `other` is
    /// implied by `self`): the `⊑` order of the lattice.
    pub fn entails(&mut self, other: &ConstraintGraph) -> bool {
        if self.infeasible {
            return true;
        }
        if other.infeasible {
            return false;
        }
        self.ensure_closed();
        if self.infeasible {
            return true;
        }
        let b_store;
        let b = if other.is_effectively_closed() {
            other
        } else {
            let mut g = other.clone();
            g.ensure_closed();
            b_store = g;
            &b_store
        };
        for (i, &x) in b.vars.iter().enumerate() {
            for (j, &y) in b.vars.iter().enumerate() {
                if i == j {
                    continue;
                }
                let bound = b.at(i, j);
                if bound >= INF {
                    continue;
                }
                // `self` must imply x ≤ y + bound; an untracked or
                // unconstrained pair implies nothing.
                let (Some(&si), Some(&sj)) = (self.index.get(&x), self.index.get(&y)) else {
                    return false;
                };
                if self.at(si, sj) > bound {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for ConstraintGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infeasible {
            return f.write_str("ConstraintGraph(⊥)");
        }
        let n = self.n();
        let mut constraints = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j && self.at(i, j) < INF {
                    constraints.push(format!(
                        "{} <= {}+{}",
                        self.vars[i],
                        self.vars[j],
                        self.at(i, j)
                    ));
                }
            }
        }
        write!(f, "ConstraintGraph{{{}}}", constraints.join(", "))
    }
}

impl fmt::Display for ConstraintGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::NsVar;

    fn v(name: &str) -> NsVar {
        NsVar::pset(PsetId(0), name)
    }

    #[test]
    fn transitivity_through_closure() {
        let mut g = ConstraintGraph::new();
        g.assert_le(v("a"), v("b"), 2);
        g.assert_le(v("b"), v("c"), 3);
        assert_eq!(g.le_bound(v("a"), v("c")), Some(5));
    }

    #[test]
    fn constants_via_zero() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(v("x"), 5);
        assert_eq!(g.const_of(v("x")), Some(5));
        g.assert_eq_offset(v("y"), v("x"), 2);
        assert_eq!(g.const_of(v("y")), Some(7));
    }

    #[test]
    fn negative_cycle_is_bottom() {
        let mut g = ConstraintGraph::new();
        g.assert_le(v("a"), v("b"), -1);
        g.assert_le(v("b"), v("a"), -1);
        g.close();
        assert!(g.is_bottom());
    }

    #[test]
    fn contradictory_constants_are_bottom() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(v("x"), 1);
        g.assert_eq_const(v("x"), 2);
        g.close();
        assert!(g.is_bottom());
    }

    #[test]
    fn self_edge_negative_is_bottom() {
        let mut g = ConstraintGraph::new();
        g.assert_le(v("a"), v("a"), -1);
        assert!(g.is_bottom());
    }

    #[test]
    fn havoc_keeps_routed_consequences() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_offset(v("a"), v("b"), 0);
        g.assert_eq_offset(v("b"), v("c"), 0);
        g.havoc(v("b"));
        // a = c survives even though it was only known through b.
        assert_eq!(g.eq_offset(v("a"), v("c")), Some(0));
        assert_eq!(g.eq_offset(v("a"), v("b")), None);
    }

    #[test]
    fn assign_self_increment_shifts_bounds() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(v("i"), 1);
        g.assign(v("i"), &LinExpr::var_plus(v("i"), 1));
        assert_eq!(g.const_of(v("i")), Some(2));
    }

    #[test]
    fn assign_var_links_and_breaks_old() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(v("x"), 10);
        g.assign(v("y"), &LinExpr::var_plus(v("x"), -1));
        assert_eq!(g.const_of(v("y")), Some(9));
        g.assign(v("x"), &LinExpr::constant(0));
        // y keeps its old value; the link was to x's *old* value.
        assert_eq!(g.const_of(v("y")), Some(9));
    }

    #[test]
    fn assign_self_preserves_relations_to_others() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_offset(v("i"), &NsVar::Np, -3); // i = np - 3
        g.assign(v("i"), &LinExpr::var_plus(v("i"), 1));
        assert_eq!(g.eq_offset(v("i"), &NsVar::Np), Some(-2));
    }

    #[test]
    fn remove_var_projects() {
        let mut g = ConstraintGraph::new();
        g.assert_le(v("a"), v("b"), 1);
        g.assert_le(v("b"), v("c"), 1);
        g.remove_var(v("b"));
        assert!(!g.has_var(v("b")));
        assert_eq!(g.le_bound(v("a"), v("c")), Some(2));
    }

    #[test]
    fn join_keeps_common_weaker_bounds() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(v("x"), 1);
        let mut g2 = ConstraintGraph::new();
        g2.assert_eq_const(v("x"), 3);
        let mut j = g1.join(&g2);
        assert_eq!(j.const_of(v("x")), None);
        assert_eq!(j.le_bound(v("x"), &NsVar::Zero), Some(3)); // x <= 3
        assert_eq!(j.le_bound(&NsVar::Zero, v("x")), Some(-1)); // x >= 1
    }

    #[test]
    fn join_drops_one_sided_vars() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(v("x"), 1);
        let g2 = ConstraintGraph::new();
        let j = g1.join(&g2);
        assert!(!j.has_var(v("x")));
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(v("x"), 4);
        let mut j1 = g.join(&ConstraintGraph::bottom());
        let mut j2 = ConstraintGraph::bottom().join(&g);
        assert_eq!(j1.const_of(v("x")), Some(4));
        assert_eq!(j2.const_of(v("x")), Some(4));
    }

    #[test]
    fn widen_drops_growing_bounds_keeps_stable() {
        // i = 1 widened with i = 2 under i <= np-1 in both.
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(v("i"), 1);
        g1.assert_le(v("i"), &NsVar::Np, -1);
        g1.assert_le(&NsVar::Zero, &NsVar::Np, -2); // np >= 2
        let mut g2 = ConstraintGraph::new();
        g2.assert_eq_const(v("i"), 2);
        g2.assert_le(v("i"), &NsVar::Np, -1);
        g2.assert_le(&NsVar::Zero, &NsVar::Np, -2);
        let mut w = g1.widen(&g2);
        // Upper bound by constant grew 1 -> 2: snapped to the threshold 2
        // (widening with thresholds). Lower bound (i >= 1) held.
        // Relation i <= np - 1 held.
        assert_eq!(w.le_bound(v("i"), &NsVar::Zero), Some(2));
        assert_eq!(w.le_bound(&NsVar::Zero, v("i")), Some(-1));
        assert!(w.implies_le(v("i"), &NsVar::Np, -1));
        // Repeated widening eventually drops the growing bound entirely.
        let mut g3 = ConstraintGraph::new();
        g3.assert_eq_const(v("i"), 100);
        let mut w2 = w.widen(&g3);
        assert_eq!(w2.le_bound(v("i"), &NsVar::Zero), None);
    }

    #[test]
    fn widen_with_custom_thresholds() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_le(v("i"), &NsVar::Zero, 1);
        let mut g2 = ConstraintGraph::new();
        g2.assert_le(v("i"), &NsVar::Zero, 9);
        let mut w = g1.widen_with_thresholds(&g2, &[0, 16, 64]);
        assert_eq!(w.le_bound(v("i"), &NsVar::Zero), Some(16));
        let mut dropped = g1.widen_with_thresholds(&g2, &[0, 4]);
        assert_eq!(dropped.le_bound(v("i"), &NsVar::Zero), None);
    }

    #[test]
    fn entails_is_reflexive_and_detects_strengthening() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(v("x"), 5);
        let snapshot = g1.clone();
        assert!(g1.entails(&snapshot));
        let mut weaker = ConstraintGraph::new();
        weaker.assert_le(v("x"), &NsVar::Zero, 10);
        assert!(g1.entails(&weaker));
        let mut wk = weaker.clone();
        assert!(!wk.entails(&g1.clone()));
    }

    #[test]
    fn clone_namespace_copies_internal_and_external_constraints() {
        let mut g = ConstraintGraph::new();
        let x0 = NsVar::pset(PsetId(0), "x");
        let id0 = NsVar::id_of(PsetId(0));
        g.assert_eq_offset(&x0, &id0, 3); // x = id + 3
        g.assert_le(&id0, &NsVar::Np, -1); // id <= np - 1
        g.clone_namespace(PsetId(0), PsetId(1));
        let x1 = NsVar::pset(PsetId(1), "x");
        let id1 = NsVar::id_of(PsetId(1));
        assert_eq!(g.eq_offset(&x1, &id1), Some(3));
        assert!(g.implies_le(&id1, &NsVar::Np, -1));
        // The copies are not spuriously equated with the originals.
        assert_eq!(g.eq_offset(&id0, &id1), None);
        // Originals unchanged.
        assert_eq!(g.eq_offset(&x0, &id0), Some(3));
    }

    #[test]
    fn rename_namespace_moves_constraints() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(NsVar::pset(PsetId(2), "k"), 9);
        g.rename_namespace(PsetId(2), PsetId(5));
        assert_eq!(g.const_of(NsVar::pset(PsetId(5), "k")), Some(9));
        assert!(!g.has_var(NsVar::pset(PsetId(2), "k")));
    }

    #[test]
    fn drop_namespace_removes_all_set_vars() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(NsVar::pset(PsetId(1), "a"), 1);
        g.assert_eq_const(NsVar::pset(PsetId(1), "b"), 2);
        g.assert_eq_const(NsVar::pset(PsetId(2), "c"), 3);
        g.drop_namespace(PsetId(1));
        assert!(!g.has_var(NsVar::pset(PsetId(1), "a")));
        assert_eq!(g.const_of(NsVar::pset(PsetId(2), "c")), Some(3));
    }

    #[test]
    fn equalities_of_lists_all_aliases() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(v("i"), 1);
        g.assert_eq_const(v("one"), 1);
        let eqs = g.equalities_of(v("i"));
        assert!(eqs.contains(&LinExpr::constant(1)));
        assert!(eqs.contains(&LinExpr::of_var(v("one"))));
    }

    #[test]
    fn proves_le_and_eq_on_expressions() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_offset(v("i"), &NsVar::Np, 0); // i = np
        assert!(g.proves_eq(
            &LinExpr::var_plus(v("i"), -1),
            &LinExpr::var_plus(NsVar::Np, -1)
        ));
        assert!(g.proves_le(&LinExpr::var_plus(v("i"), -1), &LinExpr::of_var(NsVar::Np)));
        assert!(!g.proves_le(&LinExpr::var_plus(v("i"), 1), &LinExpr::of_var(NsVar::Np)));
    }

    #[test]
    fn compare_exprs_detects_equal_and_strict() {
        use std::cmp::Ordering;
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(v("i"), 4);
        assert_eq!(
            g.compare_exprs(&LinExpr::of_var(v("i")), &LinExpr::constant(4)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            g.compare_exprs(&LinExpr::of_var(v("i")), &LinExpr::constant(9)),
            Some(Ordering::Less)
        );
        assert_eq!(
            g.compare_exprs(&LinExpr::of_var(v("i")), &LinExpr::constant(0)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            g.compare_exprs(&LinExpr::of_var(v("q")), &LinExpr::constant(0)),
            None
        );
    }

    #[test]
    fn closure_stats_are_recorded() {
        crate::stats::ClosureStats::reset();
        let mut g = ConstraintGraph::new();
        g.assert_le(v("a"), v("b"), 1);
        g.close(); // drains the one dirty edge incrementally
        g.closed = false;
        g.close(); // full
        let s = crate::stats::ClosureStats::snapshot();
        assert!(s.full_closures >= 1);
        assert!(s.incremental_closures >= 1);
    }

    #[test]
    fn close_is_noop_when_clean() {
        crate::stats::ClosureStats::reset();
        let mut g = ConstraintGraph::new();
        g.assert_le(v("a"), v("b"), 1);
        g.close();
        let before = crate::stats::ClosureStats::snapshot();
        g.close();
        g.close();
        let after = crate::stats::ClosureStats::snapshot().since(&before);
        assert_eq!(after.full_closures, 0);
        assert_eq!(after.incremental_closures, 0);
    }

    #[test]
    fn eval_expr_resolves_constants() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(v("n"), 6);
        assert_eq!(g.eval_expr(&LinExpr::var_plus(v("n"), -2)), Some(4));
        assert_eq!(g.eval_expr(&LinExpr::constant(3)), Some(3));
        assert_eq!(g.eval_expr(&LinExpr::of_var(v("unknown"))), None);
    }

    #[test]
    fn incremental_matches_full_closure() {
        // Property-style check: building a random-ish chain via
        // assert_le (lazy dirty edges, drained on query) matches
        // rebuilding with a single full closure.
        let edges = [
            ("a", "b", 3),
            ("b", "c", -1),
            ("c", "d", 4),
            ("a", "d", 10),
            ("d", "a", -5),
            ("b", "d", 2),
        ];
        let mut incr = ConstraintGraph::new();
        for (x, y, c) in edges {
            incr.assert_le(v(x), v(y), c);
        }
        let mut full = ConstraintGraph::new();
        full.closed = false;
        for (x, y, c) in edges {
            let i = full.ensure_var(v(x));
            let j = full.ensure_var(v(y));
            let cur = full.at(i, j);
            if c < cur {
                full.set(i, j, c);
            }
        }
        full.close();
        for x in ["a", "b", "c", "d"] {
            for y in ["a", "b", "c", "d"] {
                assert_eq!(
                    incr.le_bound(v(x), v(y)),
                    full.le_bound(v(x), v(y)),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn lazy_drain_matches_full_closure() {
        // A dirty set small relative to n takes the per-edge incremental
        // path; the result must equal a from-scratch full closure even
        // when the drained edges interact.
        let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let mut g = ConstraintGraph::new();
        for w in names.windows(2) {
            g.assert_le(v(w[0]), v(w[1]), 1);
        }
        g.close();
        crate::stats::ClosureStats::reset();
        g.assert_le(v("h"), v("a"), 2); // closes a non-negative cycle
        g.assert_le(v("b"), v("g"), -4); // tighter than the chain path
        let mut full = g.clone();
        full.closed = false;
        full.dirty.clear();
        full.close();
        g.close();
        let s = crate::stats::ClosureStats::snapshot();
        assert_eq!(s.incremental_closures, 2, "both edges drained per-edge");
        for x in names {
            for y in names {
                assert_eq!(
                    g.le_bound(v(x), v(y)),
                    full.le_bound(v(x), v(y)),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn large_dirty_set_falls_back_to_full_closure() {
        let mut g = ConstraintGraph::new();
        for (k, name) in ["a", "b", "c"].iter().enumerate() {
            g.assert_le(v(name), &NsVar::Zero, k as i64);
        }
        crate::stats::ClosureStats::reset();
        g.close(); // 3 dirty edges vs n = 4 (2*3 >= 4): full fallback
        let s = crate::stats::ClosureStats::snapshot();
        assert_eq!(s.full_closures, 1);
        assert_eq!(s.incremental_closures, 0);
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::stats;
    use crate::var::NsVar;

    fn v(name: &str) -> NsVar {
        NsVar::pset(PsetId(0), name)
    }

    #[test]
    #[should_panic(expected = "rename collision")]
    fn rename_collision_panics() {
        let mut g = ConstraintGraph::new();
        g.ensure_var(NsVar::pset(PsetId(0), "x"));
        g.ensure_var(NsVar::pset(PsetId(1), "x"));
        g.rename_namespace(PsetId(0), PsetId(1));
    }

    #[test]
    #[should_panic(expected = "not empty")]
    fn clone_into_occupied_namespace_panics() {
        let mut g = ConstraintGraph::new();
        g.ensure_var(NsVar::pset(PsetId(0), "x"));
        g.ensure_var(NsVar::pset(PsetId(1), "y"));
        g.clone_namespace(PsetId(0), PsetId(1));
    }

    #[test]
    fn operations_on_bottom_are_inert() {
        let mut g = ConstraintGraph::bottom();
        g.assert_le(v("a"), v("b"), 1);
        g.assign(v("a"), &LinExpr::constant(5));
        g.havoc(v("a"));
        g.close();
        assert!(g.is_bottom());
        assert_eq!(g.const_of(v("a")), None);
        assert!(g.equalities_of(v("a")).is_empty());
    }

    #[test]
    fn widen_then_rewiden_terminates_at_infinity() {
        // An ever-growing bound must pass through the threshold ladder
        // and reach "no constraint" in finitely many widenings.
        let mut cur = ConstraintGraph::new();
        cur.assert_le(v("x"), &NsVar::Zero, -10);
        let mut steps = 0;
        loop {
            let mut next = ConstraintGraph::new();
            next.assert_le(v("x"), &NsVar::Zero, -10 + steps * 7);
            let w = cur.widen(&next);
            let mut probe = w.clone();
            if probe.le_bound(v("x"), &NsVar::Zero).is_none() {
                break; // Reached top for this bound.
            }
            cur = w;
            steps += 1;
            assert!(steps < 20, "widening did not terminate");
        }
    }

    #[test]
    fn force_full_closure_switch_changes_instrumentation() {
        stats::ClosureStats::reset();
        let mut g = ConstraintGraph::new();
        g.assert_le(v("a"), v("b"), 1);
        g.close();
        let before = stats::ClosureStats::snapshot();
        assert!(before.incremental_closures >= 1);

        stats::set_force_full_closure(true);
        let mut g2 = ConstraintGraph::new();
        g2.assert_le(v("a"), v("b"), 1);
        g2.assert_le(v("b"), v("c"), 1);
        stats::set_force_full_closure(false);
        let after = stats::ClosureStats::snapshot().since(&before);
        assert!(after.full_closures >= 1, "{after:?}");
        // Behaviour is unchanged, only the algorithm differs.
        assert_eq!(g2.le_bound(v("a"), v("c")), Some(2));
    }

    #[test]
    fn join_of_disjoint_carriers_is_unconstrained() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(v("only_left"), 1);
        let mut g2 = ConstraintGraph::new();
        g2.assert_eq_const(v("only_right"), 2);
        let mut j = g1.join(&g2);
        assert!(!j.has_var(v("only_left")));
        assert!(!j.has_var(v("only_right")));
        assert!(!j.is_bottom());
        assert_eq!(j.le_bound(&NsVar::Zero, &NsVar::Zero), Some(0));
    }

    #[test]
    fn fingerprint_is_order_canonical() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_le(v("a"), v("b"), 2);
        g1.assert_eq_const(v("c"), 7);
        let mut g2 = ConstraintGraph::new();
        g2.assert_eq_const(v("c"), 7);
        g2.assert_le(v("a"), v("b"), 2);
        g1.close();
        g2.close();
        assert_eq!(g1.fingerprint(), g2.fingerprint());
        assert!(g1.same_shape(&g2));
        g2.assert_le(v("a"), v("b"), 1);
        g2.close();
        assert_ne!(g1.fingerprint(), g2.fingerprint());
        assert!(!g1.same_shape(&g2));
    }

    #[test]
    fn all_bottoms_share_one_fingerprint() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(v("x"), 1);
        g1.assert_eq_const(v("x"), 2);
        g1.close();
        let mut g2 = ConstraintGraph::new();
        g2.assert_le(v("y"), v("y"), -1);
        assert!(g1.is_bottom() && g2.is_bottom());
        assert_eq!(g1.fingerprint(), g2.fingerprint());
        assert!(g1.same_shape(&g2));
        assert_eq!(g1.fingerprint(), ConstraintGraph::bottom().fingerprint());
    }

    #[test]
    fn clone_shares_the_matrix_until_written() {
        stats::reset_matrix_copies();
        let mut g = ConstraintGraph::new();
        for k in 0..6 {
            g.assert_eq_const(v(&format!("x{k}")), k);
        }
        g.close();
        let mut probe = g.clone();
        assert_eq!(stats::matrix_copies(), 0, "clone must not copy");
        // Read-only queries on a closed graph never materialize.
        assert_eq!(probe.const_of(v("x3")), Some(3));
        assert_eq!(stats::matrix_copies(), 0, "closed queries must not copy");
        // The first write faults in a private copy and leaves the
        // original untouched.
        probe.assert_eq_const(v("x3"), 99);
        probe.close();
        assert!(probe.is_bottom());
        assert!(stats::matrix_copies() >= 1);
        assert_eq!(g.const_of(v("x3")), Some(3));
        assert!(!g.is_bottom());
    }

    #[test]
    fn maintained_fingerprint_matches_recompute_over_random_ops() {
        // Property test: drive a graph through a pseudo-random mutation
        // sequence and check after every step that the incrementally
        // maintained fingerprint equals the from-scratch recompute.
        let mut rng: u64 = 0x1234_5678_9ABC_DEF0;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let names = ["a", "b", "c", "d", "e"];
        for round in 0..40 {
            let mut g = ConstraintGraph::new();
            let mut cloned_into = 3u32;
            for _ in 0..30 {
                let x = NsVar::pset(PsetId((next() % 2) as u32), names[(next() % 5) as usize]);
                let y = NsVar::pset(PsetId((next() % 2) as u32), names[(next() % 5) as usize]);
                let c = (next() % 13) as i64 - 4;
                match next() % 10 {
                    0..=3 => g.assert_le(&x, &y, c),
                    4 => g.assert_eq_const(&x, c),
                    5 => g.close(),
                    6 => g.havoc(&x),
                    7 => g.remove_var(&x),
                    8 => {
                        // Round-trip through a fresh namespace: two
                        // rename delta scans, net structural no-op.
                        g.rename_namespace(PsetId(0), PsetId(100 + cloned_into));
                        assert_eq!(g.fingerprint(), g.recomputed_fingerprint());
                        g.rename_namespace(PsetId(100 + cloned_into), PsetId(0));
                    }
                    _ => {
                        g.clone_namespace(PsetId(1), PsetId(cloned_into));
                        cloned_into += 1;
                    }
                }
                assert_eq!(
                    g.fingerprint(),
                    g.recomputed_fingerprint(),
                    "round {round}: {g:?}"
                );
            }
            let j = g.join(&ConstraintGraph::new());
            assert_eq!(j.fingerprint(), j.recomputed_fingerprint());
            let w = g.widen(&g.clone());
            assert_eq!(w.fingerprint(), w.recomputed_fingerprint());
        }
    }

    #[test]
    fn capacity_growth_and_compaction_reuse() {
        // Push past several capacity doublings, then remove and re-add:
        // the matrix must stay consistent through in-place compaction.
        let mut g = ConstraintGraph::new();
        for k in 0..20 {
            g.assert_eq_const(v(&format!("x{k}")), k);
        }
        for k in (0..20).step_by(2) {
            g.remove_var(v(&format!("x{k}")));
        }
        for k in (1..20).step_by(2) {
            assert_eq!(g.const_of(v(&format!("x{k}"))), Some(k), "x{k}");
        }
        // Re-added variables land on recycled slots and start fresh.
        g.assert_eq_const(v("x0"), 41);
        assert_eq!(g.const_of(v("x0")), Some(41));
        assert_eq!(g.const_of(v("x7")), Some(7));
    }
}
