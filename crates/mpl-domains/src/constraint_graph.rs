//! Constraint graphs (§VII-A): conjunctions of difference constraints
//! `x ≤ y + c` over namespaced variables, stored as a difference-bound
//! matrix with instrumented transitive closure.

use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

use crate::linexpr::LinExpr;
use crate::stats;
use crate::var::{NsVar, PsetId};

/// "No constraint". Kept well below `i64::MAX` so bound additions cannot
/// overflow; any sum reaching `INF` is clamped back to `INF`.
const INF: i64 = i64::MAX / 4;

fn add(a: i64, b: i64) -> i64 {
    if a >= INF || b >= INF {
        INF
    } else {
        (a + b).min(INF)
    }
}

/// A conjunction of difference constraints `x ≤ y + c`.
///
/// The distinguished variable [`NsVar::Zero`] is always present, so unary
/// bounds are expressed as differences against it (`x ≤ 5` is
/// `x ≤ Zero + 5`). An inconsistent conjunction (negative cycle) is the
/// explicit bottom element, reported by [`ConstraintGraph::is_bottom`].
///
/// # Example
///
/// ```
/// use mpl_domains::{ConstraintGraph, NsVar, PsetId};
///
/// let mut g = ConstraintGraph::new();
/// let i = NsVar::pset(PsetId(0), "i");
/// g.assert_eq_const(&i, 1);                 // i = 1
/// g.assert_le(&i, &NsVar::Np, -1);          // i <= np - 1
/// assert_eq!(g.const_of(&i), Some(1));
/// assert!(g.implies_le(&NsVar::Zero, &NsVar::Np, -2)); // 0 <= np - 2
/// ```
#[derive(Clone)]
pub struct ConstraintGraph {
    vars: Vec<NsVar>,
    index: HashMap<NsVar, usize>,
    /// Row-major `n*n` bound matrix; `m[i*n + j] = c` means
    /// `vars[i] ≤ vars[j] + c`.
    m: Vec<i64>,
    closed: bool,
    infeasible: bool,
}

impl Default for ConstraintGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl ConstraintGraph {
    /// An unconstrained, feasible graph containing only [`NsVar::Zero`].
    #[must_use]
    pub fn new() -> ConstraintGraph {
        let mut g = ConstraintGraph {
            vars: Vec::new(),
            index: HashMap::new(),
            m: Vec::new(),
            closed: true,
            infeasible: false,
        };
        g.ensure_var(&NsVar::Zero);
        g
    }

    /// The canonical bottom element.
    #[must_use]
    pub fn bottom() -> ConstraintGraph {
        let mut g = ConstraintGraph::new();
        g.infeasible = true;
        g
    }

    /// True if the constraints are unsatisfiable.
    #[must_use]
    pub fn is_bottom(&self) -> bool {
        self.infeasible
    }

    /// Number of tracked variables (including `Zero`).
    #[must_use]
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// All tracked variables.
    #[must_use]
    pub fn variables(&self) -> &[NsVar] {
        &self.vars
    }

    /// True if `v` is tracked.
    #[must_use]
    pub fn has_var(&self, v: &NsVar) -> bool {
        self.index.contains_key(v)
    }

    fn n(&self) -> usize {
        self.vars.len()
    }

    fn at(&self, i: usize, j: usize) -> i64 {
        self.m[i * self.n() + j]
    }

    fn set(&mut self, i: usize, j: usize, c: i64) {
        let n = self.n();
        self.m[i * n + j] = c;
    }

    /// Adds `v` (unconstrained) if missing; returns its index.
    pub fn ensure_var(&mut self, v: &NsVar) -> usize {
        if let Some(&i) = self.index.get(v) {
            return i;
        }
        let old_n = self.n();
        let new_n = old_n + 1;
        let mut m = vec![INF; new_n * new_n];
        for i in 0..old_n {
            for j in 0..old_n {
                m[i * new_n + j] = self.m[i * old_n + j];
            }
        }
        m[old_n * new_n + old_n] = 0;
        self.m = m;
        self.vars.push(v.clone());
        self.index.insert(v.clone(), old_n);
        // An unconstrained variable cannot invalidate closure.
        old_n
    }

    /// Runs the full O(n³) Floyd–Warshall closure (instrumented).
    pub fn close(&mut self) {
        if self.infeasible {
            return;
        }
        let start = Instant::now();
        let n = self.n();
        for k in 0..n {
            for i in 0..n {
                let ik = self.at(i, k);
                if ik >= INF {
                    continue;
                }
                for j in 0..n {
                    let through = add(ik, self.at(k, j));
                    if through < self.at(i, j) {
                        self.set(i, j, through);
                    }
                }
            }
        }
        for i in 0..n {
            if self.at(i, i) < 0 {
                self.infeasible = true;
                break;
            }
        }
        self.closed = true;
        stats::record_full(n, start.elapsed().as_nanos() as u64);
    }

    fn ensure_closed(&mut self) {
        if !self.closed {
            self.close();
        }
    }

    /// Asserts `x ≤ y + c`.
    ///
    /// Missing variables are added. If the matrix was closed, an O(n²)
    /// incremental update (instrumented) restores closure; otherwise the
    /// edge is recorded and closure is deferred.
    pub fn assert_le(&mut self, x: &NsVar, y: &NsVar, c: i64) {
        if self.infeasible {
            return;
        }
        let i = self.ensure_var(x);
        let j = self.ensure_var(y);
        if i == j {
            if c < 0 {
                self.infeasible = true;
            }
            return;
        }
        if c >= self.at(i, j) {
            return; // No new information.
        }
        self.set(i, j, c);
        if !self.closed {
            return;
        }
        if stats::force_full_closure() {
            // Ablation mode: behave like the paper's unoptimized
            // prototype and re-run the full O(n³) closure.
            self.closed = false;
            self.close();
            return;
        }
        let start = Instant::now();
        let n = self.n();
        // Propagate paths p -> i -> j -> q through the new edge.
        for p in 0..n {
            let pi = self.at(p, i);
            if pi >= INF {
                continue;
            }
            let via = add(pi, c);
            for q in 0..n {
                let cand = add(via, self.at(j, q));
                if cand < self.at(p, q) {
                    self.set(p, q, cand);
                }
            }
        }
        for p in 0..n {
            if self.at(p, p) < 0 {
                self.infeasible = true;
                break;
            }
        }
        stats::record_incremental(n, start.elapsed().as_nanos() as u64);
    }

    /// Asserts `x = y + c`.
    pub fn assert_eq_offset(&mut self, x: &NsVar, y: &NsVar, c: i64) {
        self.assert_le(x, y, c);
        self.assert_le(y, x, -c);
    }

    /// Asserts `x = c`.
    pub fn assert_eq_const(&mut self, x: &NsVar, c: i64) {
        self.assert_eq_offset(x, &NsVar::Zero, c);
    }

    /// Asserts `x = e` for a linear expression.
    pub fn assert_eq_expr(&mut self, x: &NsVar, e: &LinExpr) {
        match &e.var {
            Some(v) => self.assert_eq_offset(x, v, e.offset),
            None => self.assert_eq_const(x, e.offset),
        }
    }

    /// Asserts `x ≤ e`.
    pub fn assert_le_expr(&mut self, x: &NsVar, e: &LinExpr) {
        match &e.var {
            Some(v) => self.assert_le(x, v, e.offset),
            None => self.assert_le(x, &NsVar::Zero, e.offset),
        }
    }

    /// Asserts `e ≤ x`.
    pub fn assert_ge_expr(&mut self, x: &NsVar, e: &LinExpr) {
        match &e.var {
            Some(v) => self.assert_le(v, x, -e.offset),
            None => self.assert_le(&NsVar::Zero, x, -e.offset),
        }
    }

    /// The tightest known `c` with `x ≤ y + c`, or `None` if unconstrained
    /// (or either variable is untracked).
    #[must_use = "returns the bound without modifying the graph"]
    pub fn le_bound(&mut self, x: &NsVar, y: &NsVar) -> Option<i64> {
        if self.infeasible {
            return Some(i64::MIN / 4); // Bottom entails everything.
        }
        self.ensure_closed();
        let i = *self.index.get(x)?;
        let j = *self.index.get(y)?;
        let c = self.at(i, j);
        (c < INF).then_some(c)
    }

    /// True if the constraints imply `x ≤ y + c`.
    pub fn implies_le(&mut self, x: &NsVar, y: &NsVar, c: i64) -> bool {
        match self.le_bound(x, y) {
            Some(b) => b <= c,
            None => false,
        }
    }

    /// `Some(c)` if the constraints imply `x = y + c`. Returns `None` on
    /// bottom (an unreachable state pins nothing down usefully).
    pub fn eq_offset(&mut self, x: &NsVar, y: &NsVar) -> Option<i64> {
        if self.infeasible {
            return None;
        }
        let upper = self.le_bound(x, y)?;
        let lower = self.le_bound(y, x)?;
        (upper == -lower).then_some(upper)
    }

    /// The constant value of `x` if the constraints pin it down.
    pub fn const_of(&mut self, x: &NsVar) -> Option<i64> {
        self.eq_offset(x, &NsVar::Zero)
    }

    /// Every expression `y + c` (with `y ≠ x`) that provably equals `x`,
    /// including `Zero + c` for constants. This powers the paper's
    /// multi-expression process-set bounds (Fig 5's `[1,i..1,i]`).
    pub fn equalities_of(&mut self, x: &NsVar) -> Vec<LinExpr> {
        if self.infeasible || !self.has_var(x) {
            return Vec::new();
        }
        self.ensure_closed();
        let mut out = Vec::new();
        for y in self.vars.clone() {
            if &y == x {
                continue;
            }
            if let Some(c) = self.eq_offset(x, &y) {
                if y == NsVar::Zero {
                    out.push(LinExpr::constant(c));
                } else {
                    out.push(LinExpr::var_plus(y, c));
                }
            }
        }
        out.sort();
        out
    }

    /// Evaluates a linear expression to a constant if possible.
    pub fn eval_expr(&mut self, e: &LinExpr) -> Option<i64> {
        match &e.var {
            None => Some(e.offset),
            Some(v) => self.const_of(v).map(|c| c + e.offset),
        }
    }

    /// Compares two linear expressions: `Some(Ordering)` when the graph
    /// proves a relation, `None` when incomparable. Equal means provably
    /// equal.
    pub fn compare_exprs(&mut self, a: &LinExpr, b: &LinExpr) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        let (av, bv) = (
            a.var.clone().unwrap_or(NsVar::Zero),
            b.var.clone().unwrap_or(NsVar::Zero),
        );
        let delta = a.offset - b.offset;
        // a - b ≤ hi where av ≤ bv + u gives hi = u + delta;
        // a - b ≥ lo where bv ≤ av + l gives lo = delta - l.
        let hi = self.le_bound(&av, &bv).map(|u| u + delta);
        let lo = self.le_bound(&bv, &av).map(|l| delta - l);
        match (hi, lo) {
            (Some(0), Some(0)) => Some(Ordering::Equal),
            (Some(hi), _) if hi < 0 => Some(Ordering::Less),
            (_, Some(lo)) if lo > 0 => Some(Ordering::Greater),
            _ => None,
        }
    }

    /// True if the graph proves `a ≤ b` (for linear expressions).
    pub fn proves_le(&mut self, a: &LinExpr, b: &LinExpr) -> bool {
        let av = a.var.clone().unwrap_or(NsVar::Zero);
        let bv = b.var.clone().unwrap_or(NsVar::Zero);
        match self.le_bound(&av, &bv) {
            Some(u) => u + a.offset - b.offset <= 0,
            None => false,
        }
    }

    /// True if the graph proves `a = b`.
    pub fn proves_eq(&mut self, a: &LinExpr, b: &LinExpr) -> bool {
        self.proves_le(a, b) && self.proves_le(b, a)
    }

    /// Removes all constraints mentioning `x` (keeping consequences
    /// routed through it), leaving `x` tracked but unconstrained.
    pub fn havoc(&mut self, x: &NsVar) {
        if self.infeasible {
            return;
        }
        self.ensure_closed();
        let Some(&i) = self.index.get(x) else {
            self.ensure_var(x);
            return;
        };
        let n = self.n();
        for k in 0..n {
            self.set(i, k, INF);
            self.set(k, i, INF);
        }
        self.set(i, i, 0);
    }

    /// Assigns `x := e`. Handles the self-referential case `x := x + c`
    /// by translating `x`'s constraints.
    pub fn assign(&mut self, x: &NsVar, e: &LinExpr) {
        if self.infeasible {
            return;
        }
        if e.var.as_ref() == Some(x) {
            // x := x + c — shift every bound involving x.
            let c = e.offset;
            self.ensure_closed();
            let i = self.ensure_var(x);
            let n = self.n();
            for k in 0..n {
                if k == i {
                    continue;
                }
                let xk = self.at(i, k);
                if xk < INF {
                    self.set(i, k, add(xk, c));
                }
                let kx = self.at(k, i);
                if kx < INF {
                    self.set(k, i, add(kx, -c));
                }
            }
            return;
        }
        self.havoc(x);
        self.assert_eq_expr(x, e);
    }

    /// Assigns `x` a completely unknown value.
    pub fn assign_unknown(&mut self, x: &NsVar) {
        self.havoc(x);
    }

    /// Removes `x` entirely (projecting the constraints onto the rest).
    pub fn remove_var(&mut self, x: &NsVar) {
        if !self.has_var(x) {
            return;
        }
        self.ensure_closed();
        let i = self.index[x];
        let old_n = self.n();
        let keep: Vec<usize> = (0..old_n).filter(|&k| k != i).collect();
        let new_n = keep.len();
        let mut m = vec![INF; new_n * new_n];
        for (a, &oa) in keep.iter().enumerate() {
            for (b, &ob) in keep.iter().enumerate() {
                m[a * new_n + b] = self.m[oa * old_n + ob];
            }
        }
        self.vars.remove(i);
        self.m = m;
        self.index.clear();
        for (k, v) in self.vars.iter().enumerate() {
            self.index.insert(v.clone(), k);
        }
    }

    /// Removes every variable owned by process set `p`.
    pub fn drop_namespace(&mut self, p: PsetId) {
        let doomed: Vec<NsVar> =
            self.vars.iter().filter(|v| v.namespace() == Some(p)).cloned().collect();
        for v in doomed {
            self.remove_var(&v);
        }
    }

    /// Renames every variable of namespace `from` into namespace `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` already owns a variable with a clashing name.
    pub fn rename_namespace(&mut self, from: PsetId, to: PsetId) {
        if from == to {
            return;
        }
        for v in &mut self.vars {
            if v.namespace() == Some(from) {
                let renamed = v.renamed(from, to);
                assert!(
                    !self.index.contains_key(&renamed),
                    "rename collision on {renamed}"
                );
                *v = renamed;
            }
        }
        self.index.clear();
        for (k, v) in self.vars.iter().enumerate() {
            self.index.insert(v.clone(), k);
        }
    }

    /// Duplicates every variable of namespace `src` into namespace `dst`
    /// (which must be empty), copying all internal and external
    /// constraints — the state-copy used when a process set splits.
    pub fn clone_namespace(&mut self, src: PsetId, dst: PsetId) {
        assert!(
            !self.vars.iter().any(|v| v.namespace() == Some(dst)),
            "destination namespace {dst} not empty"
        );
        if self.infeasible {
            return;
        }
        self.ensure_closed();
        let src_vars: Vec<(usize, NsVar)> = self
            .vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.namespace() == Some(src))
            .map(|(i, v)| (i, v.clone()))
            .collect();
        // Add the copies.
        let mut pairs: Vec<(usize, usize)> = Vec::new(); // (src index, dst index)
        for (si, v) in &src_vars {
            let copy = v.renamed(src, dst);
            let di = self.ensure_var(&copy);
            pairs.push((*si, di));
        }
        // Copy constraints. Internal (dst-dst) pairs mirror the src-src
        // bounds; dst-to-external pairs mirror src-to-external bounds.
        // Crucially, no constraint is added between a copy and its
        // original: after a process-set split the two subsets' variables
        // need not agree pointwise, so equating them would be unsound.
        let n = self.n();
        let src_of: HashMap<usize, usize> = pairs.iter().map(|&(s, d)| (d, s)).collect();
        let is_src: Vec<bool> = (0..n)
            .map(|k| self.vars[k].namespace() == Some(src))
            .collect();
        for &(si, di) in &pairs {
            for k in 0..n {
                if k == di {
                    continue;
                }
                let mirror = match src_of.get(&k) {
                    Some(&sk) => sk,          // k is a fellow copy
                    None if is_src[k] => continue, // never relate copy to original
                    None => k,                // external variable
                };
                let down = self.at(si, mirror);
                if down < self.at(di, k) {
                    self.set(di, k, down);
                }
                let up = self.at(mirror, si);
                if up < self.at(k, di) {
                    self.set(k, di, up);
                }
            }
        }
        // Complete the copy-to-original bounds implied through shared
        // externals (e.g. both pinned to the same constant via Zero):
        // m[si][di] = min over external k of m[si][k] + m[k][di], and
        // symmetrically. This O(n_src · n) pass keeps the matrix closed
        // enough for sound queries without a full O(n³) re-closure per
        // process-set split; any residual un-closure only loses
        // precision, never soundness (INF reads as "no constraint").
        if self.closed {
            let n = self.n();
            for &(si, di) in &pairs {
                let mut down = INF;
                let mut up = INF;
                for k in 0..n {
                    if k == si || k == di {
                        continue;
                    }
                    down = down.min(add(self.at(si, k), self.at(k, di)));
                    up = up.min(add(self.at(di, k), self.at(k, si)));
                }
                if down < self.at(si, di) {
                    self.set(si, di, down);
                }
                if up < self.at(di, si) {
                    self.set(di, si, up);
                }
            }
        }
    }

    /// Least upper bound: keeps each bound only at the weaker of the two
    /// values, over the intersection of the variable sets.
    #[must_use]
    pub fn join(&self, other: &ConstraintGraph) -> ConstraintGraph {
        if self.infeasible {
            return other.clone();
        }
        if other.infeasible {
            return self.clone();
        }
        let mut a = self.clone();
        a.ensure_closed();
        let mut b = other.clone();
        b.ensure_closed();
        let mut out = ConstraintGraph::new();
        let common: Vec<NsVar> =
            a.vars.iter().filter(|v| b.has_var(v)).cloned().collect();
        for v in &common {
            out.ensure_var(v);
        }
        out.closed = false;
        for x in &common {
            for y in &common {
                if x == y {
                    continue;
                }
                let (ai, aj) = (a.index[x], a.index[y]);
                let (bi, bj) = (b.index[x], b.index[y]);
                let bound = a.at(ai, aj).max(b.at(bi, bj));
                if bound < INF {
                    let (i, j) = (out.index[x], out.index[y]);
                    out.set(i, j, bound);
                }
            }
        }
        // The pointwise max of two closed DBMs is closed.
        out.closed = true;
        out
    }

    /// Widening: keeps a bound only if the newer state did not weaken it.
    /// A weakened bound is snapped up to the smallest *threshold* in a
    /// small fixed set that still accommodates the newer bound (widening
    /// with thresholds — needed to retain loop facts like `i ≤ np` in
    /// Fig 5, whose exit edge derives `i = np`); beyond the largest
    /// threshold the bound is dropped to ∞. The finite threshold set
    /// guarantees a finite ascending chain. The result is deliberately
    /// *not* re-closed (re-closing a widened DBM can defeat termination).
    #[must_use]
    pub fn widen(&self, newer: &ConstraintGraph) -> ConstraintGraph {
        if self.infeasible {
            return newer.clone();
        }
        if newer.infeasible {
            return self.clone();
        }
        let mut a = self.clone();
        a.ensure_closed();
        let mut b = newer.clone();
        b.ensure_closed();
        let mut out = ConstraintGraph::new();
        let common: Vec<NsVar> =
            a.vars.iter().filter(|v| b.has_var(v)).cloned().collect();
        for v in &common {
            out.ensure_var(v);
        }
        for x in &common {
            for y in &common {
                if x == y {
                    continue;
                }
                let (ai, aj) = (a.index[x], a.index[y]);
                let (bi, bj) = (b.index[x], b.index[y]);
                let old = a.at(ai, aj);
                let new = b.at(bi, bj);
                let widened = if new <= old {
                    old
                } else {
                    const THRESHOLDS: [i64; 7] = [-2, -1, 0, 1, 2, 4, 8];
                    THRESHOLDS.iter().copied().find(|&t| t >= new).unwrap_or(INF)
                };
                if widened < INF {
                    let (i, j) = (out.index[x], out.index[y]);
                    out.set(i, j, widened);
                }
            }
        }
        // Treat as closed: queries read recorded bounds only, which is
        // sound (possibly imprecise) and preserves termination.
        out.closed = true;
        out
    }

    /// True if `self` entails `other` (every constraint of `other` is
    /// implied by `self`): the `⊑` order of the lattice.
    pub fn entails(&mut self, other: &ConstraintGraph) -> bool {
        if self.infeasible {
            return true;
        }
        if other.infeasible {
            return false;
        }
        let mut b = other.clone();
        b.ensure_closed();
        for x in &b.vars.clone() {
            for y in &b.vars.clone() {
                if x == y {
                    continue;
                }
                let bound = b.at(b.index[x], b.index[y]);
                if bound < INF && !self.implies_le(x, y, bound) {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for ConstraintGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infeasible {
            return f.write_str("ConstraintGraph(⊥)");
        }
        let n = self.n();
        let mut constraints = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j && self.at(i, j) < INF {
                    constraints.push(format!("{} <= {}+{}", self.vars[i], self.vars[j], self.at(i, j)));
                }
            }
        }
        write!(f, "ConstraintGraph{{{}}}", constraints.join(", "))
    }
}

impl fmt::Display for ConstraintGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> NsVar {
        NsVar::pset(PsetId(0), name)
    }

    #[test]
    fn transitivity_through_closure() {
        let mut g = ConstraintGraph::new();
        g.assert_le(&v("a"), &v("b"), 2);
        g.assert_le(&v("b"), &v("c"), 3);
        assert_eq!(g.le_bound(&v("a"), &v("c")), Some(5));
    }

    #[test]
    fn constants_via_zero() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(&v("x"), 5);
        assert_eq!(g.const_of(&v("x")), Some(5));
        g.assert_eq_offset(&v("y"), &v("x"), 2);
        assert_eq!(g.const_of(&v("y")), Some(7));
    }

    #[test]
    fn negative_cycle_is_bottom() {
        let mut g = ConstraintGraph::new();
        g.assert_le(&v("a"), &v("b"), -1);
        g.assert_le(&v("b"), &v("a"), -1);
        g.close();
        assert!(g.is_bottom());
    }

    #[test]
    fn contradictory_constants_are_bottom() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(&v("x"), 1);
        g.assert_eq_const(&v("x"), 2);
        assert!(g.is_bottom());
    }

    #[test]
    fn self_edge_negative_is_bottom() {
        let mut g = ConstraintGraph::new();
        g.assert_le(&v("a"), &v("a"), -1);
        assert!(g.is_bottom());
    }

    #[test]
    fn havoc_keeps_routed_consequences() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_offset(&v("a"), &v("b"), 0);
        g.assert_eq_offset(&v("b"), &v("c"), 0);
        g.havoc(&v("b"));
        // a = c survives even though it was only known through b.
        assert_eq!(g.eq_offset(&v("a"), &v("c")), Some(0));
        assert_eq!(g.eq_offset(&v("a"), &v("b")), None);
    }

    #[test]
    fn assign_self_increment_shifts_bounds() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(&v("i"), 1);
        g.assign(&v("i"), &LinExpr::var_plus(v("i"), 1));
        assert_eq!(g.const_of(&v("i")), Some(2));
    }

    #[test]
    fn assign_var_links_and_breaks_old() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(&v("x"), 10);
        g.assign(&v("y"), &LinExpr::var_plus(v("x"), -1));
        assert_eq!(g.const_of(&v("y")), Some(9));
        g.assign(&v("x"), &LinExpr::constant(0));
        // y keeps its old value; the link was to x's *old* value.
        assert_eq!(g.const_of(&v("y")), Some(9));
    }

    #[test]
    fn assign_self_preserves_relations_to_others() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_offset(&v("i"), &NsVar::Np, -3); // i = np - 3
        g.assign(&v("i"), &LinExpr::var_plus(v("i"), 1));
        assert_eq!(g.eq_offset(&v("i"), &NsVar::Np), Some(-2));
    }

    #[test]
    fn remove_var_projects() {
        let mut g = ConstraintGraph::new();
        g.assert_le(&v("a"), &v("b"), 1);
        g.assert_le(&v("b"), &v("c"), 1);
        g.remove_var(&v("b"));
        assert!(!g.has_var(&v("b")));
        assert_eq!(g.le_bound(&v("a"), &v("c")), Some(2));
    }

    #[test]
    fn join_keeps_common_weaker_bounds() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(&v("x"), 1);
        let mut g2 = ConstraintGraph::new();
        g2.assert_eq_const(&v("x"), 3);
        let mut j = g1.join(&g2);
        assert_eq!(j.const_of(&v("x")), None);
        assert_eq!(j.le_bound(&v("x"), &NsVar::Zero), Some(3)); // x <= 3
        assert_eq!(j.le_bound(&NsVar::Zero, &v("x")), Some(-1)); // x >= 1
    }

    #[test]
    fn join_drops_one_sided_vars() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(&v("x"), 1);
        let g2 = ConstraintGraph::new();
        let j = g1.join(&g2);
        assert!(!j.has_var(&v("x")));
    }

    #[test]
    fn join_with_bottom_is_identity() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(&v("x"), 4);
        let mut j1 = g.join(&ConstraintGraph::bottom());
        let mut j2 = ConstraintGraph::bottom().join(&g);
        assert_eq!(j1.const_of(&v("x")), Some(4));
        assert_eq!(j2.const_of(&v("x")), Some(4));
    }

    #[test]
    fn widen_drops_growing_bounds_keeps_stable() {
        // i = 1 widened with i = 2 under i <= np-1 in both.
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(&v("i"), 1);
        g1.assert_le(&v("i"), &NsVar::Np, -1);
        g1.assert_le(&NsVar::Zero, &NsVar::Np, -2); // np >= 2
        let mut g2 = ConstraintGraph::new();
        g2.assert_eq_const(&v("i"), 2);
        g2.assert_le(&v("i"), &NsVar::Np, -1);
        g2.assert_le(&NsVar::Zero, &NsVar::Np, -2);
        let mut w = g1.widen(&g2);
        // Upper bound by constant grew 1 -> 2: snapped to the threshold 2
        // (widening with thresholds). Lower bound (i >= 1) held.
        // Relation i <= np - 1 held.
        assert_eq!(w.le_bound(&v("i"), &NsVar::Zero), Some(2));
        assert_eq!(w.le_bound(&NsVar::Zero, &v("i")), Some(-1));
        assert!(w.implies_le(&v("i"), &NsVar::Np, -1));
        // Repeated widening eventually drops the growing bound entirely.
        let mut g3 = ConstraintGraph::new();
        g3.assert_eq_const(&v("i"), 100);
        let mut w2 = w.widen(&g3);
        assert_eq!(w2.le_bound(&v("i"), &NsVar::Zero), None);
    }

    #[test]
    fn entails_is_reflexive_and_detects_strengthening() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(&v("x"), 5);
        let snapshot = g1.clone();
        assert!(g1.entails(&snapshot));
        let mut weaker = ConstraintGraph::new();
        weaker.assert_le(&v("x"), &NsVar::Zero, 10);
        assert!(g1.entails(&weaker));
        let mut wk = weaker.clone();
        assert!(!wk.entails(&g1.clone()));
    }

    #[test]
    fn clone_namespace_copies_internal_and_external_constraints() {
        let mut g = ConstraintGraph::new();
        let x0 = NsVar::pset(PsetId(0), "x");
        let id0 = NsVar::id_of(PsetId(0));
        g.assert_eq_offset(&x0, &id0, 3); // x = id + 3
        g.assert_le(&id0, &NsVar::Np, -1); // id <= np - 1
        g.clone_namespace(PsetId(0), PsetId(1));
        let x1 = NsVar::pset(PsetId(1), "x");
        let id1 = NsVar::id_of(PsetId(1));
        assert_eq!(g.eq_offset(&x1, &id1), Some(3));
        assert!(g.implies_le(&id1, &NsVar::Np, -1));
        // The copies are not spuriously equated with the originals.
        assert_eq!(g.eq_offset(&id0, &id1), None);
        // Originals unchanged.
        assert_eq!(g.eq_offset(&x0, &id0), Some(3));
    }

    #[test]
    fn rename_namespace_moves_constraints() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(&NsVar::pset(PsetId(2), "k"), 9);
        g.rename_namespace(PsetId(2), PsetId(5));
        assert_eq!(g.const_of(&NsVar::pset(PsetId(5), "k")), Some(9));
        assert!(!g.has_var(&NsVar::pset(PsetId(2), "k")));
    }

    #[test]
    fn drop_namespace_removes_all_set_vars() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(&NsVar::pset(PsetId(1), "a"), 1);
        g.assert_eq_const(&NsVar::pset(PsetId(1), "b"), 2);
        g.assert_eq_const(&NsVar::pset(PsetId(2), "c"), 3);
        g.drop_namespace(PsetId(1));
        assert!(!g.has_var(&NsVar::pset(PsetId(1), "a")));
        assert_eq!(g.const_of(&NsVar::pset(PsetId(2), "c")), Some(3));
    }

    #[test]
    fn equalities_of_lists_all_aliases() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(&v("i"), 1);
        g.assert_eq_const(&v("one"), 1);
        let eqs = g.equalities_of(&v("i"));
        assert!(eqs.contains(&LinExpr::constant(1)));
        assert!(eqs.contains(&LinExpr::of_var(v("one"))));
    }

    #[test]
    fn proves_le_and_eq_on_expressions() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_offset(&v("i"), &NsVar::Np, 0); // i = np
        assert!(g.proves_eq(
            &LinExpr::var_plus(v("i"), -1),
            &LinExpr::var_plus(NsVar::Np, -1)
        ));
        assert!(g.proves_le(&LinExpr::var_plus(v("i"), -1), &LinExpr::of_var(NsVar::Np)));
        assert!(!g.proves_le(&LinExpr::var_plus(v("i"), 1), &LinExpr::of_var(NsVar::Np)));
    }

    #[test]
    fn compare_exprs_detects_equal_and_strict() {
        use std::cmp::Ordering;
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(&v("i"), 4);
        assert_eq!(
            g.compare_exprs(&LinExpr::of_var(v("i")), &LinExpr::constant(4)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            g.compare_exprs(&LinExpr::of_var(v("i")), &LinExpr::constant(9)),
            Some(Ordering::Less)
        );
        assert_eq!(
            g.compare_exprs(&LinExpr::of_var(v("i")), &LinExpr::constant(0)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            g.compare_exprs(&LinExpr::of_var(v("q")), &LinExpr::constant(0)),
            None
        );
    }

    #[test]
    fn closure_stats_are_recorded() {
        crate::stats::ClosureStats::reset();
        let mut g = ConstraintGraph::new();
        g.assert_le(&v("a"), &v("b"), 1); // incremental (graph closed)
        g.closed = false;
        g.close(); // full
        let s = crate::stats::ClosureStats::snapshot();
        assert!(s.full_closures >= 1);
        assert!(s.incremental_closures >= 1);
    }

    #[test]
    fn eval_expr_resolves_constants() {
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(&v("n"), 6);
        assert_eq!(g.eval_expr(&LinExpr::var_plus(v("n"), -2)), Some(4));
        assert_eq!(g.eval_expr(&LinExpr::constant(3)), Some(3));
        assert_eq!(g.eval_expr(&LinExpr::of_var(v("unknown"))), None);
    }

    #[test]
    fn incremental_matches_full_closure() {
        // Property-style check: building a random-ish chain via
        // assert_le (incremental) matches rebuilding with a single full
        // closure.
        let edges = [
            ("a", "b", 3),
            ("b", "c", -1),
            ("c", "d", 4),
            ("a", "d", 10),
            ("d", "a", -5),
            ("b", "d", 2),
        ];
        let mut incr = ConstraintGraph::new();
        for (x, y, c) in edges {
            incr.assert_le(&v(x), &v(y), c);
        }
        let mut full = ConstraintGraph::new();
        full.closed = false;
        for (x, y, c) in edges {
            let i = full.ensure_var(&v(x));
            let j = full.ensure_var(&v(y));
            let cur = full.at(i, j);
            if c < cur {
                full.set(i, j, c);
            }
        }
        full.close();
        for x in ["a", "b", "c", "d"] {
            for y in ["a", "b", "c", "d"] {
                assert_eq!(
                    incr.le_bound(&v(x), &v(y)),
                    full.le_bound(&v(x), &v(y)),
                    "{x} vs {y}"
                );
            }
        }
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use crate::stats;

    fn v(name: &str) -> NsVar {
        NsVar::pset(PsetId(0), name)
    }

    #[test]
    #[should_panic(expected = "rename collision")]
    fn rename_collision_panics() {
        let mut g = ConstraintGraph::new();
        g.ensure_var(&NsVar::pset(PsetId(0), "x"));
        g.ensure_var(&NsVar::pset(PsetId(1), "x"));
        g.rename_namespace(PsetId(0), PsetId(1));
    }

    #[test]
    #[should_panic(expected = "not empty")]
    fn clone_into_occupied_namespace_panics() {
        let mut g = ConstraintGraph::new();
        g.ensure_var(&NsVar::pset(PsetId(0), "x"));
        g.ensure_var(&NsVar::pset(PsetId(1), "y"));
        g.clone_namespace(PsetId(0), PsetId(1));
    }

    #[test]
    fn operations_on_bottom_are_inert() {
        let mut g = ConstraintGraph::bottom();
        g.assert_le(&v("a"), &v("b"), 1);
        g.assign(&v("a"), &LinExpr::constant(5));
        g.havoc(&v("a"));
        g.close();
        assert!(g.is_bottom());
        assert_eq!(g.const_of(&v("a")), None);
        assert!(g.equalities_of(&v("a")).is_empty());
    }

    #[test]
    fn widen_then_rewiden_terminates_at_infinity() {
        // An ever-growing bound must pass through the threshold ladder
        // and reach "no constraint" in finitely many widenings.
        let mut cur = ConstraintGraph::new();
        cur.assert_le(&v("x"), &NsVar::Zero, -10);
        let mut steps = 0;
        loop {
            let mut next = ConstraintGraph::new();
            next.assert_le(&v("x"), &NsVar::Zero, -10 + steps * 7);
            let w = cur.widen(&next);
            let mut probe = w.clone();
            if probe.le_bound(&v("x"), &NsVar::Zero).is_none() {
                break; // Reached top for this bound.
            }
            cur = w;
            steps += 1;
            assert!(steps < 20, "widening did not terminate");
        }
    }

    #[test]
    fn force_full_closure_switch_changes_instrumentation() {
        stats::ClosureStats::reset();
        let mut g = ConstraintGraph::new();
        g.assert_le(&v("a"), &v("b"), 1);
        let before = stats::ClosureStats::snapshot();
        assert!(before.incremental_closures >= 1);

        stats::set_force_full_closure(true);
        let mut g2 = ConstraintGraph::new();
        g2.assert_le(&v("a"), &v("b"), 1);
        g2.assert_le(&v("b"), &v("c"), 1);
        stats::set_force_full_closure(false);
        let after = stats::ClosureStats::snapshot().since(&before);
        assert!(after.full_closures >= 1, "{after:?}");
        // Behaviour is unchanged, only the algorithm differs.
        assert_eq!(g2.le_bound(&v("a"), &v("c")), Some(2));
    }

    #[test]
    fn join_of_disjoint_carriers_is_unconstrained() {
        let mut g1 = ConstraintGraph::new();
        g1.assert_eq_const(&v("only_left"), 1);
        let mut g2 = ConstraintGraph::new();
        g2.assert_eq_const(&v("only_right"), 2);
        let mut j = g1.join(&g2);
        assert!(!j.has_var(&v("only_left")));
        assert!(!j.has_var(&v("only_right")));
        assert!(!j.is_bottom());
        assert_eq!(j.le_bound(&NsVar::Zero, &NsVar::Zero), Some(0));
    }
}
