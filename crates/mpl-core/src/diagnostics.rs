//! Error-detection clients (§I): message leaks and guaranteed deadlocks,
//! reported with source locations.

use std::fmt;

use mpl_cfg::{Cfg, CfgNodeId};
use mpl_lang::token::Span;

use crate::engine::{AnalysisResult, Verdict};

/// A diagnostic derived from an analysis result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnostic {
    /// A send whose message is provably never received.
    MessageLeak {
        /// The send statement.
        node: CfgNodeId,
        /// Its source location.
        span: Span,
        /// The statement text.
        statement: String,
    },
    /// Blocked receives that can never be satisfied.
    Deadlock {
        /// The blocked (statement, location, process range) triples.
        blocked: Vec<(CfgNodeId, Span, String)>,
    },
    /// The analysis could not establish the topology (⊤) — manual review
    /// required.
    Inconclusive {
        /// Why the analysis gave up.
        reason: String,
    },
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnostic::MessageLeak {
                span, statement, ..
            } => {
                write!(f, "message leak at {span}: `{statement}` is never received")
            }
            Diagnostic::Deadlock { blocked } => {
                write!(f, "guaranteed deadlock; blocked: ")?;
                for (i, (_, span, range)) in blocked.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "ranks {range} at {span}")?;
                }
                Ok(())
            }
            Diagnostic::Inconclusive { reason } => {
                write!(f, "analysis inconclusive: {reason}")
            }
        }
    }
}

/// Extracts diagnostics from an analysis result.
#[must_use]
pub fn diagnose(cfg: &Cfg, result: &AnalysisResult) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    match &result.verdict {
        Verdict::Exact => {}
        Verdict::Deadlock { blocked } => {
            out.push(Diagnostic::Deadlock {
                blocked: blocked
                    .iter()
                    .map(|(node, range)| (*node, cfg.span(*node), range.clone()))
                    .collect(),
            });
        }
        Verdict::Top { reason } => {
            out.push(Diagnostic::Inconclusive {
                reason: reason.to_string(),
            });
        }
    }
    for &node in &result.leaks {
        out.push(Diagnostic::MessageLeak {
            node,
            span: cfg.span(node),
            statement: cfg.node(node).to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{analyze_cfg, AnalysisConfig};
    use mpl_lang::corpus;

    #[test]
    fn message_leak_diagnosed_with_location() {
        let prog = corpus::message_leak();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let diags = diagnose(&cfg, &result);
        let leak = diags
            .iter()
            .find(|d| matches!(d, Diagnostic::MessageLeak { .. }))
            .expect("leak diagnostic");
        let text = leak.to_string();
        assert!(text.contains("never received"), "{text}");
        assert!(text.contains("send"), "{text}");
    }

    #[test]
    fn deadlock_diagnosed() {
        let prog = corpus::deadlock_pair();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let diags = diagnose(&cfg, &result);
        assert!(
            diags
                .iter()
                .any(|d| matches!(d, Diagnostic::Deadlock { .. })),
            "expected deadlock diagnostic, got {diags:?} (verdict {:?})",
            result.verdict
        );
    }

    #[test]
    fn clean_program_has_no_diagnostics() {
        let prog = corpus::fig2_exchange();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        assert!(diagnose(&cfg, &result).is_empty());
    }
}
