//! Crash-safe persistence for the serve result cache: an append-only,
//! checksummed NDJSON journal with torn-tail recovery.
//!
//! The daemon's reason to exist is that analyses are expensive (the
//! paper's §IX: 381 s for the fan-out kernel), so losing the result
//! cache with the process defeats the point. [`CacheJournal`] makes the
//! cache durable with the cheapest discipline that survives `kill -9`:
//!
//! * **Write-ahead append.** Every cache insert appends one NDJSON
//!   record — `{"v":1,"type":"cache-entry","key":…,"check":…,"body":…,
//!   "crc":…}` — and flushes it to the kernel before the insert is
//!   considered durable. No in-place rewrites, so a crash can only ever
//!   damage the *tail* of the file.
//! * **Checksummed records.** `crc` is a [`mpl_domains::splitmix64`]
//!   chain over the payload. Replay verifies it, so a torn write that
//!   happens to still parse as JSON is caught too.
//! * **Torn-tail recovery.** [`CacheJournal::replay_bytes`] accepts any
//!   byte prefix of a valid journal (plus arbitrary trailing garbage):
//!   it recovers every record up to the first incomplete, unparseable,
//!   or checksum-failing line and stops there — never a panic, never a
//!   partial record. [`CacheJournal::open`] then truncates the file back
//!   to that valid prefix so subsequent appends produce a well-formed
//!   journal again.
//! * **Compaction.** The journal grows by one record per insert; the
//!   service periodically rewrites it from the live cache (newest last,
//!   so replay reproduces recency order) into a temp file and atomically
//!   renames it into place.
//!
//! The module knows nothing about the cache or the service — it stores
//! `(key, check, body)` triples, the exact payload of
//! [`crate::cache::ResultCache`] entries.

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, Write as _};
use std::path::{Path, PathBuf};

use crate::json::{json_escape, parse, JsonValue};
use crate::request::PROTOCOL_VERSION;

/// File name of the journal inside `--cache-dir`.
pub const JOURNAL_FILE: &str = "cache-journal.ndjson";

/// One recovered cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The 64-bit request fingerprint.
    pub key: u64,
    /// The full collision-check string.
    pub check: String,
    /// The rendered response body.
    pub body: String,
}

/// The outcome of replaying a journal byte stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JournalReplay {
    /// Entries recovered, in journal (insertion) order.
    pub entries: Vec<JournalEntry>,
    /// Length of the longest valid prefix, in bytes.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix that were discarded (torn tail,
    /// corruption, or trailing garbage). Zero for a clean journal.
    pub torn_bytes: u64,
}

/// Counters describing a journal's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JournalStats {
    /// Entries recovered at open time.
    pub replayed: u64,
    /// Bytes discarded from the tail at open time.
    pub torn_bytes: u64,
    /// Records appended since open.
    pub appends: u64,
    /// Compactions performed since open.
    pub compactions: u64,
}

/// Checksum over one record's payload: a splitmix64 chain keyed by the
/// entry key and every payload byte, so bit-flips anywhere in the line
/// fail verification.
fn record_crc(key: u64, check: &str, body: &str) -> u64 {
    let mut h = mpl_domains::splitmix64(key ^ 0xC5A5_17E4_9D2B_0346);
    for part in [check.as_bytes(), body.as_bytes()] {
        for chunk in part.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            h = mpl_domains::splitmix64(h ^ u64::from_le_bytes(buf));
        }
        h = mpl_domains::splitmix64(h ^ part.len() as u64);
    }
    h
}

/// Renders one journal line (without the trailing newline).
fn render_record(key: u64, check: &str, body: &str) -> String {
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"type\":\"cache-entry\",\"key\":\"{key:016x}\",\
         \"check\":\"{}\",\"body\":\"{}\",\"crc\":\"{:016x}\"}}",
        json_escape(check),
        json_escape(body),
        record_crc(key, check, body)
    )
}

/// Parses one complete journal line into an entry; `None` for any
/// malformed or checksum-failing record.
fn parse_record(line: &str) -> Option<JournalEntry> {
    let value = parse(line).ok()?;
    if value.get("v").and_then(JsonValue::as_i64) != Some(PROTOCOL_VERSION) {
        return None;
    }
    if value.get("type").and_then(JsonValue::as_str) != Some("cache-entry") {
        return None;
    }
    let key = u64::from_str_radix(value.get("key")?.as_str()?, 16).ok()?;
    let check = value.get("check")?.as_str()?.to_owned();
    let body = value.get("body")?.as_str()?.to_owned();
    let crc = u64::from_str_radix(value.get("crc")?.as_str()?, 16).ok()?;
    (crc == record_crc(key, &check, &body)).then_some(JournalEntry { key, check, body })
}

/// The append-only journal behind a persistent result cache.
#[derive(Debug)]
pub struct CacheJournal {
    path: PathBuf,
    file: File,
    stats: JournalStats,
}

impl CacheJournal {
    /// Replays a journal byte stream, recovering the longest valid
    /// prefix. Pure and total: any input — including every possible
    /// truncation of a valid journal — yields a well-defined result,
    /// never a panic.
    #[must_use]
    pub fn replay_bytes(data: &[u8]) -> JournalReplay {
        let mut replay = JournalReplay::default();
        let mut offset = 0usize;
        while offset < data.len() {
            // A record is only complete once its newline is on disk; a
            // tail without one is torn by definition.
            let Some(nl) = data[offset..].iter().position(|&b| b == b'\n') else {
                break;
            };
            let line = &data[offset..offset + nl];
            let Some(entry) = std::str::from_utf8(line).ok().and_then(parse_record) else {
                break;
            };
            replay.entries.push(entry);
            offset += nl + 1;
        }
        replay.valid_bytes = offset as u64;
        replay.torn_bytes = (data.len() - offset) as u64;
        replay
    }

    /// Opens (creating if absent) the journal under `dir`, replaying
    /// whatever valid prefix survives there. A torn or corrupt tail is
    /// truncated away so the next append continues a well-formed file.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating the directory or opening, reading, or
    /// truncating the journal file.
    pub fn open(dir: &Path) -> io::Result<(CacheJournal, JournalReplay)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let replay = Self::replay_bytes(&data);
        if replay.torn_bytes > 0 {
            // Cut the garbage tail; reopen in plain write mode because
            // append handles on some platforms ignore seek positions.
            drop(file);
            let trunc = OpenOptions::new().write(true).open(&path)?;
            trunc.set_len(replay.valid_bytes)?;
            trunc.sync_all()?;
            drop(trunc);
            file = OpenOptions::new().read(true).append(true).open(&path)?;
        }
        file.seek(io::SeekFrom::End(0))?;
        let stats = JournalStats {
            replayed: replay.entries.len() as u64,
            torn_bytes: replay.torn_bytes,
            appends: 0,
            compactions: 0,
        };
        Ok((CacheJournal { path, file, stats }, replay))
    }

    /// Appends one entry and flushes it to the kernel (durable across a
    /// `kill -9`; full power-loss durability would need fsync per
    /// record, which the serving path does not pay).
    ///
    /// # Errors
    ///
    /// Any I/O failure writing or flushing.
    pub fn append(&mut self, key: u64, check: &str, body: &str) -> io::Result<()> {
        let mut line = render_record(key, check, body);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.stats.appends += 1;
        Ok(())
    }

    /// Rewrites the journal from `entries` (oldest first — replay
    /// reproduces the iteration order) into a temp file, syncs it, and
    /// atomically renames it over the journal.
    ///
    /// # Errors
    ///
    /// Any I/O failure writing, syncing, or renaming.
    pub fn compact<'a, I>(&mut self, entries: I) -> io::Result<()>
    where
        I: IntoIterator<Item = (u64, &'a str, &'a str)>,
    {
        let tmp_path = self.path.with_extension("ndjson.tmp");
        let mut tmp = File::create(&tmp_path)?;
        for (key, check, body) in entries {
            let mut line = render_record(key, check, body);
            line.push('\n');
            tmp.write_all(line.as_bytes())?;
        }
        tmp.sync_all()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        self.file.seek(io::SeekFrom::End(0))?;
        self.stats.compactions += 1;
        Ok(())
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mpl-persist-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_entries() -> Vec<(u64, String, String)> {
        vec![
            (
                1,
                "check one\nwith newline".to_owned(),
                "{\"body\":1}".to_owned(),
            ),
            (
                u64::MAX,
                "check \"two\"".to_owned(),
                "{\"body\":2}".to_owned(),
            ),
            (42, String::new(), String::new()),
        ]
    }

    #[test]
    fn round_trip_append_and_replay() {
        let dir = scratch_dir("roundtrip");
        {
            let (mut journal, replay) = CacheJournal::open(&dir).expect("open fresh");
            assert!(replay.entries.is_empty());
            for (k, c, b) in sample_entries() {
                journal.append(k, &c, &b).expect("append");
            }
            assert_eq!(journal.stats().appends, 3);
        }
        let (journal, replay) = CacheJournal::open(&dir).expect("reopen");
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.entries.len(), 3);
        for (entry, (k, c, b)) in replay.entries.iter().zip(sample_entries()) {
            assert_eq!((entry.key, &entry.check, &entry.body), (k, &c, &b));
        }
        assert_eq!(journal.stats().replayed, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_fails_checksum_and_ends_replay() {
        let mut data = Vec::new();
        for (k, c, b) in sample_entries() {
            data.extend_from_slice(render_record(k, &c, &b).as_bytes());
            data.push(b'\n');
        }
        // Flip one byte inside the *second* record's body payload.
        let second_start = data.iter().position(|&b| b == b'\n').unwrap() + 1;
        let target = second_start + 60;
        data[target] ^= 0x01;
        let replay = CacheJournal::replay_bytes(&data);
        assert_eq!(replay.entries.len(), 1, "replay stops at the bad record");
        assert_eq!(replay.valid_bytes as usize, second_start);
        assert!(replay.torn_bytes > 0);
    }

    #[test]
    fn open_truncates_torn_tail_and_appends_cleanly() {
        let dir = scratch_dir("torn");
        {
            let (mut journal, _) = CacheJournal::open(&dir).expect("open");
            journal.append(7, "c7", "b7").expect("append");
            journal.append(8, "c8", "b8").expect("append");
        }
        let path = dir.join(JOURNAL_FILE);
        // Tear the tail: drop the last 5 bytes of the final record.
        let data = std::fs::read(&path).expect("read journal");
        std::fs::write(&path, &data[..data.len() - 5]).expect("tear");
        let (mut journal, replay) = CacheJournal::open(&dir).expect("reopen torn");
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.entries[0].key, 7);
        assert_eq!(
            replay.valid_bytes + replay.torn_bytes,
            data.len() as u64 - 5,
            "every byte of the torn file is either kept or discarded"
        );
        // The file was truncated to the valid prefix, so a fresh append
        // yields a clean two-record journal again.
        journal.append(9, "c9", "b9").expect("append after tear");
        drop(journal);
        let (_, replay) = CacheJournal::open(&dir).expect("final open");
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(
            replay.entries.iter().map(|e| e.key).collect::<Vec<_>>(),
            vec![7, 9]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_rewrites_and_preserves_order() {
        let dir = scratch_dir("compact");
        let (mut journal, _) = CacheJournal::open(&dir).expect("open");
        for (k, c, b) in sample_entries() {
            journal.append(k, &c, &b).expect("append");
        }
        // Compact down to one surviving entry.
        journal
            .compact(vec![(99u64, "kept-check", "kept-body")])
            .expect("compact");
        assert_eq!(journal.stats().compactions, 1);
        // Appends continue after the rename onto the new file handle.
        journal.append(100, "after", "compaction").expect("append");
        drop(journal);
        let (_, replay) = CacheJournal::open(&dir).expect("reopen");
        assert_eq!(
            replay.entries.iter().map(|e| e.key).collect::<Vec<_>>(),
            vec![99, 100]
        );
        assert_eq!(replay.entries[0].check, "kept-check");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_garbage_is_discarded() {
        let mut data = Vec::new();
        data.extend_from_slice(render_record(1, "c", "b").as_bytes());
        data.push(b'\n');
        data.extend_from_slice(b"not json at all\n{\"v\":1}\n");
        let replay = CacheJournal::replay_bytes(&data);
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.torn_bytes, 24);
    }

    #[test]
    fn empty_and_garbage_only_inputs_are_fine() {
        assert_eq!(CacheJournal::replay_bytes(b""), JournalReplay::default());
        let replay = CacheJournal::replay_bytes(&[0xFF, 0xFE, b'\n', b'x']);
        assert!(replay.entries.is_empty());
        assert_eq!(replay.valid_bytes, 0);
        assert_eq!(replay.torn_bytes, 4);
    }
}
