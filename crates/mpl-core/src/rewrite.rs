//! Collective replacement — the transformation the paper's introduction
//! motivates (Fig 1): once the analysis proves a program's communication
//! is a fan-out broadcast, "we can significantly improve performance by
//! condensing it into … broadcast operations, since native communication
//! libraries provide very efficient implementations".
//!
//! MPL has no built-in collectives, so the rewriter targets the next best
//! thing: it replaces the detected linear fan-out (Θ(np) critical path,
//! the root serializes every send) with a **binomial-tree broadcast**
//! (Θ(log np) critical path) over plain sends and receives. The rewrite
//! is *verified*: tests check that every receiver ends with the same
//! value as in the original program while the logical critical path
//! drops from linear to logarithmic.

use mpl_cfg::{Cfg, CfgNode};
use mpl_lang::ast::{BinOp, Expr, Program, Stmt, StmtKind};

use crate::engine::AnalysisResult;
use crate::pattern::{classify, Pattern};

/// Why a rewrite was not performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The analysis did not classify the program as a plain broadcast.
    NotABroadcast(Pattern),
    /// The broadcast shape was detected but the payload or receiver
    /// variable could not be recovered from the matched statements.
    UnsupportedShape(String),
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::NotABroadcast(p) => {
                write!(f, "program is `{p}`, not a plain broadcast")
            }
            RewriteError::UnsupportedShape(why) => write!(f, "unsupported shape: {why}"),
        }
    }
}

impl std::error::Error for RewriteError {}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt::synthetic(kind)
}

/// Builds the binomial-tree broadcast equivalent: rank 0 seeds `var`
/// with `payload`; in round `k = 1, 2, 4, …` every rank below `k`
/// forwards `var` to rank `id + k`.
fn binomial_broadcast(var: &str, payload: &Expr) -> Vec<Stmt> {
    let var_e = || Expr::var(var.to_owned());
    vec![
        stmt(StmtKind::If {
            cond: Expr::binary(BinOp::Eq, Expr::Id, Expr::Int(0)),
            then_branch: vec![stmt(StmtKind::Assign {
                name: var.to_owned(),
                value: payload.clone(),
            })],
            else_branch: Vec::new(),
        }),
        stmt(StmtKind::Assign {
            name: "mpl_k".to_owned(),
            value: Expr::Int(1),
        }),
        stmt(StmtKind::While {
            cond: Expr::binary(BinOp::Lt, Expr::var("mpl_k"), Expr::Np),
            body: vec![
                stmt(StmtKind::If {
                    cond: Expr::binary(BinOp::Lt, Expr::Id, Expr::var("mpl_k")),
                    then_branch: vec![stmt(StmtKind::If {
                        cond: Expr::binary(
                            BinOp::Lt,
                            Expr::binary(BinOp::Add, Expr::Id, Expr::var("mpl_k")),
                            Expr::Np,
                        ),
                        then_branch: vec![stmt(StmtKind::Send {
                            value: var_e(),
                            dest: Expr::binary(BinOp::Add, Expr::Id, Expr::var("mpl_k")),
                        })],
                        else_branch: Vec::new(),
                    })],
                    else_branch: vec![stmt(StmtKind::If {
                        cond: Expr::binary(
                            BinOp::Lt,
                            Expr::Id,
                            Expr::binary(BinOp::Add, Expr::var("mpl_k"), Expr::var("mpl_k")),
                        ),
                        then_branch: vec![stmt(StmtKind::Recv {
                            var: var.to_owned(),
                            src: Expr::binary(BinOp::Sub, Expr::Id, Expr::var("mpl_k")),
                        })],
                        else_branch: Vec::new(),
                    })],
                }),
                stmt(StmtKind::Assign {
                    name: "mpl_k".to_owned(),
                    value: Expr::binary(BinOp::Add, Expr::var("mpl_k"), Expr::var("mpl_k")),
                }),
            ],
        }),
    ]
}

/// Rewrites a proven fan-out broadcast into a binomial-tree broadcast.
///
/// The returned program delivers the same payload into the same receiver
/// variable on ranks `1..np-1` (and defines it on rank 0 as well), with
/// a Θ(log np) instead of Θ(np) communication critical path.
///
/// # Errors
///
/// Fails when the analysis result does not classify the program as
/// [`Pattern::Broadcast`] anchored at rank 0, or when the matched send's
/// payload is not a uniform expression assigned before the broadcast.
pub fn rewrite_broadcast(
    program: &Program,
    cfg: &Cfg,
    result: &AnalysisResult,
) -> Result<Program, RewriteError> {
    let pattern = classify(result);
    if pattern != Pattern::Broadcast {
        return Err(RewriteError::NotABroadcast(pattern));
    }
    if result.events.iter().any(|e| e.s_const != Some(0)) {
        return Err(RewriteError::UnsupportedShape("root is not rank 0".into()));
    }
    // Recover payload expression and receiver variable from the match.
    let &(send_node, recv_node) = result
        .matches
        .iter()
        .next()
        .ok_or_else(|| RewriteError::UnsupportedShape("no matches".into()))?;
    let CfgNode::Send { value, .. } = cfg.node(send_node) else {
        return Err(RewriteError::UnsupportedShape("match without send".into()));
    };
    let CfgNode::Recv { var, .. } = cfg.node(recv_node) else {
        return Err(RewriteError::UnsupportedShape("match without recv".into()));
    };
    // Keep any prologue assignments (they may define the payload), drop
    // the communication skeleton, and append the tree broadcast.
    let mut stmts: Vec<Stmt> = Vec::new();
    for s in &program.stmts {
        if matches!(s.kind, StmtKind::Assign { .. }) {
            stmts.push(s.clone());
        }
    }
    stmts.extend(binomial_broadcast(var, value));
    Ok(Program::new(stmts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{analyze_cfg, AnalysisConfig};
    use mpl_lang::corpus;
    use mpl_sim::Simulator;

    #[test]
    fn broadcast_rewrites_to_logarithmic_tree() {
        let prog = corpus::fanout_broadcast();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let tree = rewrite_broadcast(&prog.program, &cfg, &result).expect("rewrite");

        for np in [4u64, 8, 16, 32] {
            let orig = Simulator::new(&prog.program, np).run().unwrap();
            let new = Simulator::new(&tree, np).run().unwrap();
            assert!(new.is_complete(), "np={np}");
            assert!(new.leaks.is_empty(), "np={np}");
            // Same delivered values on every non-root rank.
            for rank in 1..np as usize {
                assert_eq!(
                    orig.stores[rank]["y"], new.stores[rank]["y"],
                    "rank {rank} at np={np}"
                );
            }
            // Strictly better critical path at scale: 2*log2(np) vs np.
            if np >= 16 {
                assert!(
                    new.critical_path() < orig.critical_path(),
                    "np={np}: tree {} vs fan-out {}",
                    new.critical_path(),
                    orig.critical_path()
                );
                let log2 = 64 - (np - 1).leading_zeros() as u64;
                assert!(new.critical_path() <= 2 * log2, "np={np}");
            }
        }
    }

    #[test]
    fn rewrite_refuses_non_broadcasts() {
        let prog = corpus::exchange_with_root();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let err = rewrite_broadcast(&prog.program, &cfg, &result).unwrap_err();
        assert!(matches!(
            err,
            RewriteError::NotABroadcast(Pattern::ExchangeWithRoot)
        ));
    }

    #[test]
    fn rewrite_refuses_top_verdicts() {
        let prog = corpus::ring_uniform();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        assert!(rewrite_broadcast(&prog.program, &cfg, &result).is_err());
    }

    #[test]
    fn rewritten_program_parses_back_from_display() {
        let prog = corpus::fanout_broadcast();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let tree = rewrite_broadcast(&prog.program, &cfg, &result).unwrap();
        let printed = tree.to_string();
        let reparsed = mpl_lang::parse_program(&printed).expect("round trip");
        assert_eq!(printed, reparsed.to_string());
    }
}
