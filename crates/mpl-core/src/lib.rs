//! # mpl-core — communication-sensitive static dataflow over pCFGs
//!
//! The primary contribution of the CGO'09 paper *Communication-Sensitive
//! Static Dataflow for Parallel Message Passing Applications*: a dataflow
//! framework over **parallel control-flow graphs** (pCFGs) that
//! symbolically executes *sets* of processes over the shared CFG of an
//! SPMD program, matching send and receive operations exactly to discover
//! the application's communication topology for **unbounded `np`**.
//!
//! The engine ([`engine::analyze`]) follows §VI (Fig 4):
//!
//! * each analysis state holds `(dfState, pSets, matches)` — a
//!   constraint-graph dataflow state with per-process-set variable
//!   namespaces, symbolic rank ranges for the process sets, and the
//!   send/receive matches established so far;
//! * unblocked process sets advance along the CFG (transfer functions),
//!   splitting on `id`-dependent branches;
//! * when every set is blocked, `matchSendsRecvs` finds a sender/receiver
//!   pair whose expressions compose to the identity and whose image is
//!   surjective, releasing (and possibly splitting) the matched subsets;
//! * states are widened at recurring pCFG locations until fixpoint;
//! * if no exact match is possible the analysis returns ⊤ rather than
//!   guess (matching must be exact — §VI).
//!
//! Two client analyses instantiate the framework, exactly as in the
//! paper: the **simple symbolic client** (§VII, [`matcher::SimpleMatcher`];
//! message expressions of the form `var + c`) and the **cartesian
//! topology client** (§VIII, [`matcher::CartesianMatcher`], which adds
//! HSM-based matching for grid patterns such as the NAS-CG transpose).
//! Constant propagation (Fig 2) runs alongside either client via
//! [`mpl_domains::ConstEnv`].
//!
//! ```
//! use mpl_core::{analyze, AnalysisConfig, Client};
//! use mpl_lang::corpus;
//!
//! let prog = corpus::fig2_exchange();
//! let result = analyze(&prog.program, &AnalysisConfig::default());
//! assert!(result.is_exact());
//! assert_eq!(result.matches.len(), 2); // the two send-recv pairs
//! # let _ = Client::Simple;
//! ```

pub mod batch;
pub mod cache;
pub mod client;
pub mod config;
#[cfg(test)]
mod corpus_tests;
pub mod diagnostics;
pub mod engine;
pub mod infoflow;
pub mod json;
pub mod matcher;
pub mod mpicfg;
pub mod norm;
pub mod observer;
pub mod pattern;
pub mod persist;
pub mod request;
pub mod result;
pub mod rewrite;
pub mod scheduler;
pub mod service;
pub mod session;
pub mod share;
pub mod state;
pub mod topology;

pub use batch::{BatchAnalyzer, BatchJob, BatchReport, BatchSummary, Fault, JobOutcome, JobRecord};
pub use cache::{CacheStats, ResultCache};
pub use client::{CartesianClient, Client, ClientDomain, SymbolicClient};
pub use config::{AnalysisConfig, AnalysisConfigBuilder, ConfigError, ScheduleOrder};
pub use engine::{analyze, analyze_cfg, analyze_cfg_with};
pub use infoflow::{info_flow, info_flow_with_pairs, InfoFlow};
pub use json::{json_escape, parse as parse_json, JsonError, JsonValue};
pub use matcher::{CartesianMatcher, MatchOutcome, MatchStrategy, SimpleMatcher};
pub use mpicfg::{mpi_cfg_topology, MpiCfgTopology};
pub use mpl_runtime::{AdmissionGate, CancelToken, ClientQuotas, QuotaPolicy};
pub use observer::{
    AnalysisObserver, EngineProfile, EngineStats, NoopObserver, ObserverStack, StatsObserver,
    TraceObserver,
};
pub use pattern::{classify, classify_pairs, Pattern};
pub use persist::{CacheJournal, JournalEntry, JournalReplay, JournalStats};
pub use request::{
    summary_json_line, AnalysisRequest, AnalysisRequestBuilder, AnalysisResponse, BatchResponse,
    RequestBatch, RequestError, PROTOCOL_VERSION,
};
pub use result::{AnalysisResult, MatchEvent, PrintFact, TopReason, Verdict};
pub use rewrite::{rewrite_broadcast, RewriteError};
pub use scheduler::{LocationKey, StoredStats, CANCEL_CHECK_STEPS};
pub use service::{error_line, AnalysisService, Reply, ServiceConfig, ShutdownMode};
pub use session::AnalysisSession;
pub use share::Shared;
pub use state::{AnalysisState, PsetState};
pub use topology::StaticTopology;
