//! Parallel batch analysis: fan a corpus of independent analysis jobs
//! across a worker pool and merge the results deterministically.
//!
//! Each job is a `(program, config)` pair analyzed by [`engine::analyze`]
//! on whichever worker picks it up. Jobs never interact — the engine is a
//! pure function of its inputs apart from two pieces of thread-local
//! state, both of which this module brings under control:
//!
//! * the **variable interner** ([`mpl_domains::VarTable`]): name indices
//!   (and hence packed `VarId`s) depend on the order names were first
//!   interned on the thread, so a worker that has already analyzed other
//!   programs carries their history. [`BatchAnalyzer::run`] resets the
//!   calling thread's table before every job, so each analysis starts
//!   from the identical fresh-table state no matter which worker runs it;
//! * the **closure counters** ([`mpl_domains::ClosureStats`]): the engine
//!   already reports per-run deltas in [`AnalysisResult::closure_stats`],
//!   which this module sums field-wise into the fleet total.
//!
//! Results are collected by *submission index*, not completion order
//! (see [`mpl_runtime::run_ordered`]), so [`BatchReport::records`] is
//! byte-identical for any worker count. Only [`JobRecord::wall_nanos`]
//! and [`BatchSummary::wall_nanos`] vary between runs; callers that need
//! reproducible output (golden tests, corpus diffs) must exclude them.

use std::time::Instant;

use mpl_domains::ClosureStats;
use mpl_lang::ast::Program;

use crate::engine::{analyze, AnalysisConfig, AnalysisResult, Verdict};

/// One unit of batch work: a named program plus the configuration to
/// analyze it under.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name (typically the corpus program name).
    pub name: String,
    /// The program to analyze.
    pub program: Program,
    /// Engine configuration for this job.
    pub config: AnalysisConfig,
}

impl BatchJob {
    /// Creates a job.
    #[must_use]
    pub fn new(name: impl Into<String>, program: Program, config: AnalysisConfig) -> BatchJob {
        BatchJob {
            name: name.into(),
            program,
            config,
        }
    }
}

/// The outcome of one batch job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's display name.
    pub name: String,
    /// The analysis result.
    pub result: AnalysisResult,
    /// Wall-clock time for this job in nanoseconds. **Not deterministic**
    /// — excluded from reproducible output.
    pub wall_nanos: u64,
}

/// Aggregated statistics over a whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Total number of jobs run.
    pub programs: usize,
    /// Jobs whose verdict was [`Verdict::Exact`].
    pub exact: usize,
    /// Jobs whose verdict was [`Verdict::Deadlock`].
    pub deadlock: usize,
    /// Jobs whose verdict was [`Verdict::Top`].
    pub top: usize,
    /// Total message leaks found across all jobs.
    pub leaks: usize,
    /// Total send/recv matches established across all jobs.
    pub matches: usize,
    /// Total engine steps across all jobs.
    pub steps: u64,
    /// Sum of per-job wall times in nanoseconds (CPU work, not batch
    /// wall time). **Not deterministic.**
    pub wall_nanos: u64,
    /// Field-wise merge of every job's closure counters.
    pub closure: ClosureStats,
}

impl BatchSummary {
    /// Folds one record into the summary.
    fn absorb(&mut self, record: &JobRecord) {
        self.programs += 1;
        match &record.result.verdict {
            Verdict::Exact => self.exact += 1,
            Verdict::Deadlock { .. } => self.deadlock += 1,
            Verdict::Top { .. } => self.top += 1,
        }
        self.leaks += record.result.leaks.len();
        self.matches += record.result.matches.len();
        self.steps += record.result.steps;
        self.wall_nanos += record.wall_nanos;
        self.closure.merge(&record.result.closure_stats);
    }
}

/// A completed batch: per-job records in submission order plus the
/// aggregated summary.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One record per job, in the order the jobs were added.
    pub records: Vec<JobRecord>,
    /// Aggregated statistics.
    pub summary: BatchSummary,
    /// Number of workers the batch ran with.
    pub workers: usize,
}

/// Builder/runner for a parallel batch of analysis jobs.
///
/// ```
/// use mpl_core::{AnalysisConfig, BatchAnalyzer, BatchJob};
/// use mpl_lang::corpus;
///
/// let mut batch = BatchAnalyzer::new().workers(4);
/// for prog in corpus::all() {
///     batch.push(BatchJob::new(prog.name, prog.program, AnalysisConfig::default()));
/// }
/// let report = batch.run();
/// assert_eq!(report.summary.programs, corpus::all().len());
/// ```
#[derive(Debug, Default)]
pub struct BatchAnalyzer {
    jobs: Vec<BatchJob>,
    workers: usize,
}

impl BatchAnalyzer {
    /// Creates an empty batch that will run inline (one worker).
    #[must_use]
    pub fn new() -> BatchAnalyzer {
        BatchAnalyzer {
            jobs: Vec::new(),
            workers: 1,
        }
    }

    /// Sets the worker count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> BatchAnalyzer {
        self.workers = workers.max(1);
        self
    }

    /// Appends a job. Jobs run (logically) in insertion order and their
    /// records appear in the same order in the report.
    pub fn push(&mut self, job: BatchJob) {
        self.jobs.push(job);
    }

    /// Appends a job, builder style.
    #[must_use]
    pub fn job(mut self, job: BatchJob) -> BatchAnalyzer {
        self.push(job);
        self
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job across the worker pool and merges the results.
    ///
    /// Deterministic: apart from the wall-time fields, the report is
    /// identical for any worker count.
    #[must_use]
    pub fn run(self) -> BatchReport {
        let workers = self.workers;
        let records = mpl_runtime::run_ordered(workers, self.jobs, |_, job| {
            // Fresh interner per job: VarId assignment must not depend on
            // which programs this worker thread analyzed before.
            mpl_domains::reset_table();
            let start = Instant::now();
            let result = analyze(&job.program, &job.config);
            JobRecord {
                name: job.name,
                result,
                wall_nanos: start.elapsed().as_nanos() as u64,
            }
        });
        let mut summary = BatchSummary::default();
        for record in &records {
            summary.absorb(record);
        }
        BatchReport {
            records,
            summary,
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::corpus;

    fn corpus_batch(workers: usize) -> BatchReport {
        let mut batch = BatchAnalyzer::new().workers(workers);
        for prog in corpus::all() {
            batch.push(BatchJob::new(
                prog.name,
                prog.program,
                AnalysisConfig::default(),
            ));
        }
        batch.run()
    }

    /// Strips the non-deterministic wall-time fields for comparison.
    fn fingerprint(report: &BatchReport) -> Vec<String> {
        report
            .records
            .iter()
            .map(|r| {
                format!(
                    "{} {:?} matches={:?} leaks={:?} steps={} closure=({},{},{},{})",
                    r.name,
                    r.result.verdict,
                    r.result.matches,
                    r.result.leaks,
                    r.result.steps,
                    r.result.closure_stats.full_closures,
                    r.result.closure_stats.full_closure_vars,
                    r.result.closure_stats.incremental_closures,
                    r.result.closure_stats.incremental_closure_vars,
                )
            })
            .collect()
    }

    #[test]
    fn records_preserve_submission_order() {
        let report = corpus_batch(4);
        let names: Vec<&str> = report.records.iter().map(|r| r.name.as_str()).collect();
        let expected: Vec<&str> = corpus::all().iter().map(|p| p.name).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = fingerprint(&corpus_batch(1));
        for workers in [2, 4, 8] {
            let par = fingerprint(&corpus_batch(workers));
            assert_eq!(seq, par, "corpus results diverged at {workers} workers");
        }
    }

    #[test]
    fn summary_counts_are_consistent() {
        let report = corpus_batch(3);
        let s = report.summary;
        assert_eq!(s.programs, corpus::all().len());
        assert_eq!(s.programs, s.exact + s.deadlock + s.top);
        assert_eq!(
            s.matches,
            report
                .records
                .iter()
                .map(|r| r.result.matches.len())
                .sum::<usize>()
        );
        assert_eq!(
            s.steps,
            report.records.iter().map(|r| r.result.steps).sum::<u64>()
        );
        assert!(s.exact > 0, "corpus should contain exact programs");
        assert!(s.closure.full_closures > 0 || s.closure.incremental_closures > 0);
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let report = BatchAnalyzer::new().workers(8).run();
        assert!(report.records.is_empty());
        assert_eq!(report.summary, BatchSummary::default());
        assert_eq!(report.workers, 8);
    }
}
