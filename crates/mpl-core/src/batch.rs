//! Parallel batch analysis: fan a corpus of independent analysis jobs
//! across a worker pool and merge the results deterministically — and
//! *fault-tolerantly*: one bad job degrades that job's record, never the
//! fleet.
//!
//! Each job is a `(program, config)` pair analyzed by [`engine::analyze`]
//! on whichever worker picks it up. Jobs never interact — the engine is a
//! pure function of its inputs apart from two pieces of thread-local
//! state, both of which this module brings under control:
//!
//! * the **variable interner** ([`mpl_domains::VarTable`]): name indices
//!   (and hence packed `VarId`s) depend on the order names were first
//!   interned on the thread, so a worker that has already analyzed other
//!   programs carries their history. [`BatchAnalyzer::run`] resets the
//!   calling thread's table before every attempt of every job, so each
//!   analysis starts from the identical fresh-table state no matter which
//!   worker runs it (and retries stay deterministic);
//! * the **closure counters** ([`mpl_domains::ClosureStats`]): the engine
//!   already reports per-run deltas in [`AnalysisResult::closure_stats`],
//!   which this module sums field-wise into the fleet total.
//!
//! # Fault tolerance
//!
//! The paper's framework *fails soundly*: when a pattern exceeds the
//! abstraction it returns ⊤, never a wrong answer (§VI). The batch layer
//! extends that discipline from one analysis to a fleet of them:
//!
//! * **panic isolation** — every job runs under
//!   [`mpl_runtime::Pool::run_ordered_isolated`]; a panicking job becomes
//!   a [`JobOutcome::Panicked`] record (payload text plus the worker id in
//!   [`JobRecord::panic_worker`]) while the rest of the batch completes;
//! * **cooperative deadlines** — a fleet-wide [`BatchAnalyzer::timeout`]
//!   (overridable per job via [`BatchJob::timeout`]) hands each attempt a
//!   fresh [`CancelToken`] with that deadline; the engine polls it in its
//!   worklist loop and gives up with a sound ⊤
//!   ([`TopReason::Deadline`]). Because any partial progress at expiry is
//!   wall-clock-dependent, a [`JobOutcome::TimedOut`] record carries the
//!   *normalized* bare ⊤ ([`AnalysisResult::top`]) — zero matches, zero
//!   steps — so timed-out records are byte-identical for any worker count;
//! * **retry with degradation** — with [`BatchAnalyzer::retries`]` > 0`,
//!   a job that ⊤s on a resource budget ([`TopReason::StepBudget`] /
//!   [`TopReason::PsetBudget`]) or times out is re-run under an
//!   escalating coarsening ladder (earlier widening, fewer thresholds,
//!   smaller step budget). A retry that produces an answer yields
//!   [`JobOutcome::Degraded`]; if every attempt exhausts its budget the
//!   attempt-1 result (under the *requested* config) is reported.
//!
//! Results are collected by *submission index*, not completion order
//! (see [`mpl_runtime::Pool`]), so [`BatchReport::records`] is
//! byte-identical for any worker count. Only [`JobRecord::wall_nanos`],
//! [`BatchSummary::wall_nanos`] and [`JobRecord::panic_worker`] vary
//! between runs; callers that need reproducible output (golden tests,
//! corpus diffs) must exclude them.

use std::fmt;
use std::time::{Duration, Instant};

use mpl_domains::ClosureStats;
use mpl_lang::ast::Program;
use mpl_runtime::CancelToken;

use crate::config::AnalysisConfig;
use crate::engine::analyze;
use crate::result::{AnalysisResult, TopReason, Verdict};

/// A deterministic fault injected into a batch job — the test hook for
/// the fault-tolerance machinery. Injected via [`BatchJob::with_fault`]
/// or the magic corpus directive `// mpl:fault=<kind>` on its own line of
/// an `.mpl` source file (see [`Fault::from_directive`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// Panic on every attempt (directive `panic`). Exercises panic
    /// isolation: the job must become a [`JobOutcome::Panicked`] record.
    Panic,
    /// Run forever — poll the cancel token until the deadline fires
    /// (directive `spin`). Exercises the cooperative-deadline path end
    /// to end; a spin job without a configured timeout panics
    /// (deterministically) rather than hanging the fleet forever.
    Spin,
    /// Report a step-budget ⊤ on the first attempt and analyze normally
    /// on retries (directive `top-once`). Exercises the retry ladder
    /// deterministically.
    TopOnce,
}

impl Fault {
    /// Scans MPL source text for a `// mpl:fault=<kind>` directive line
    /// (`panic`, `spin`, or `top-once`). The directive is an ordinary
    /// line comment to the language, so faulted programs still parse.
    #[must_use]
    pub fn from_directive(source: &str) -> Option<Fault> {
        source.lines().find_map(
            |line| match line.trim().strip_prefix("// mpl:fault=")?.trim() {
                "panic" => Some(Fault::Panic),
                "spin" => Some(Fault::Spin),
                "top-once" => Some(Fault::TopOnce),
                _ => None,
            },
        )
    }
}

/// One unit of batch work: a named program plus the configuration to
/// analyze it under, with optional per-job deadline and fault injection.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name (typically the corpus program name).
    pub name: String,
    /// The program to analyze.
    pub program: Program,
    /// Engine configuration for this job.
    pub config: AnalysisConfig,
    /// Per-job deadline, overriding the fleet-wide
    /// [`BatchAnalyzer::timeout`] when set.
    pub timeout: Option<Duration>,
    /// Deterministic fault injection (tests and smoke runs only).
    pub fault: Option<Fault>,
}

impl BatchJob {
    /// Creates a job with no per-job deadline and no injected fault.
    #[must_use]
    pub fn new(name: impl Into<String>, program: Program, config: AnalysisConfig) -> BatchJob {
        BatchJob {
            name: name.into(),
            program,
            config,
            timeout: None,
            fault: None,
        }
    }

    /// Sets a per-job deadline (overrides the fleet-wide timeout).
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> BatchJob {
        self.timeout = Some(timeout);
        self
    }

    /// Injects a deterministic fault into this job.
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> BatchJob {
        self.fault = Some(fault);
        self
    }
}

/// How one batch job ended, as a typed taxonomy mirroring
/// [`TopReason`]'s style: [`Self::code`] is the stable kebab-case tag
/// machine output uses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobOutcome {
    /// The analysis ran to its natural end under the requested
    /// configuration (any verdict — ⊤ on a budget counts as completed
    /// when retries are off or exhausted).
    Completed,
    /// A budget-⊤ or timed-out job produced this answer on a retry under
    /// a coarsened configuration.
    Degraded {
        /// Total attempts made (≥ 2).
        attempts: u32,
    },
    /// Every attempt hit the cooperative deadline; the record carries the
    /// normalized bare ⊤.
    TimedOut,
    /// The job panicked; the fleet completed without it.
    Panicked {
        /// The panic payload, rendered to text.
        message: String,
    },
    /// The job could not even be constructed (e.g. its source failed to
    /// parse); queued via [`BatchAnalyzer::push_error`].
    Error {
        /// Why the job never ran.
        message: String,
    },
}

impl JobOutcome {
    /// A stable, machine-readable outcome code (kebab-case, mirroring
    /// [`TopReason::code`]; used by the corpus JSON output).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Degraded { .. } => "degraded",
            JobOutcome::TimedOut => "timed-out",
            JobOutcome::Panicked { .. } => "panicked",
            JobOutcome::Error { .. } => "error",
        }
    }

    /// True for the two success shapes ([`Self::Completed`] /
    /// [`Self::Degraded`]) — the ones that carry a result produced by a
    /// finished analysis run.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Completed | JobOutcome::Degraded { .. })
    }

    /// The failure detail for [`Self::Panicked`] / [`Self::Error`]
    /// records, if any.
    #[must_use]
    pub fn detail(&self) -> Option<&str> {
        match self {
            JobOutcome::Panicked { message } | JobOutcome::Error { message } => Some(message),
            _ => None,
        }
    }
}

impl fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobOutcome::Completed => f.write_str("completed"),
            JobOutcome::Degraded { attempts } => {
                write!(f, "degraded after {attempts} attempts")
            }
            JobOutcome::TimedOut => f.write_str("timed out"),
            JobOutcome::Panicked { message } => write!(f, "panicked: {message}"),
            JobOutcome::Error { message } => write!(f, "error: {message}"),
        }
    }
}

/// The outcome of one batch job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's display name.
    pub name: String,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// The analysis result. `None` exactly when the job produced no
    /// analysis at all ([`JobOutcome::Panicked`] / [`JobOutcome::Error`]);
    /// a timed-out job carries the normalized bare ⊤.
    pub result: Option<AnalysisResult>,
    /// Wall-clock time for this job in nanoseconds, summed over retries.
    /// **Not deterministic** — excluded from reproducible output.
    pub wall_nanos: u64,
    /// For panicked records: the pool worker the job ran on.
    /// Scheduling-dependent, hence **not deterministic** — excluded from
    /// reproducible output.
    pub panic_worker: Option<usize>,
}

/// Aggregated statistics over a whole batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Total number of jobs run (including panicked and error records).
    pub programs: usize,
    /// Jobs whose verdict was [`Verdict::Exact`].
    pub exact: usize,
    /// Jobs whose verdict was [`Verdict::Deadlock`].
    pub deadlock: usize,
    /// Jobs whose verdict was [`Verdict::Top`].
    pub top: usize,
    /// Jobs that ended [`JobOutcome::Completed`].
    pub completed: usize,
    /// Jobs that ended [`JobOutcome::Degraded`].
    pub degraded: usize,
    /// Jobs that ended [`JobOutcome::TimedOut`].
    pub timed_out: usize,
    /// Jobs that ended [`JobOutcome::Panicked`].
    pub panicked: usize,
    /// Jobs that ended [`JobOutcome::Error`] (never ran at all).
    pub errors: usize,
    /// Total message leaks found across all jobs.
    pub leaks: usize,
    /// Total send/recv matches established across all jobs.
    pub matches: usize,
    /// Total engine steps across all jobs.
    pub steps: u64,
    /// Sum of per-job wall times in nanoseconds (CPU work, not batch
    /// wall time). **Not deterministic.**
    pub wall_nanos: u64,
    /// Field-wise merge of every job's closure counters.
    pub closure: ClosureStats,
}

impl BatchSummary {
    /// Folds one record into the summary.
    fn absorb(&mut self, record: &JobRecord) {
        self.programs += 1;
        match &record.outcome {
            JobOutcome::Completed => self.completed += 1,
            JobOutcome::Degraded { .. } => self.degraded += 1,
            JobOutcome::TimedOut => self.timed_out += 1,
            JobOutcome::Panicked { .. } => self.panicked += 1,
            JobOutcome::Error { .. } => self.errors += 1,
        }
        if let Some(result) = &record.result {
            match &result.verdict {
                Verdict::Exact => self.exact += 1,
                Verdict::Deadlock { .. } => self.deadlock += 1,
                Verdict::Top { .. } => self.top += 1,
            }
            self.leaks += result.leaks.len();
            self.matches += result.matches.len();
            self.steps += result.steps;
            self.closure.merge(&result.closure_stats);
        }
        self.wall_nanos += record.wall_nanos;
    }

    /// Jobs that did not produce a finished analysis: timed out,
    /// panicked, or failed to load.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.timed_out + self.panicked + self.errors
    }
}

/// A completed batch: per-job records in submission order plus the
/// aggregated summary.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One record per job, in the order the jobs were added.
    pub records: Vec<JobRecord>,
    /// Aggregated statistics.
    pub summary: BatchSummary,
    /// Number of workers the batch ran with.
    pub workers: usize,
}

/// A queued unit: either a runnable job or a pre-failed record (e.g. a
/// corpus file that did not parse) that flows through in order.
#[derive(Debug, Clone)]
enum JobInput {
    Job(Box<BatchJob>),
    Error { name: String, message: String },
}

/// Builder/runner for a parallel batch of analysis jobs.
///
/// ```
/// use mpl_core::{AnalysisConfig, BatchAnalyzer, BatchJob};
/// use mpl_lang::corpus;
///
/// let mut batch = BatchAnalyzer::new().workers(4);
/// for prog in corpus::all() {
///     batch.push(BatchJob::new(prog.name, prog.program, AnalysisConfig::default()));
/// }
/// let report = batch.run();
/// assert_eq!(report.summary.programs, corpus::all().len());
/// assert_eq!(report.summary.completed, corpus::all().len());
/// ```
#[derive(Debug, Default)]
pub struct BatchAnalyzer {
    jobs: Vec<JobInput>,
    workers: usize,
    timeout: Option<Duration>,
    retries: u32,
}

impl BatchAnalyzer {
    /// Creates an empty batch that will run inline (one worker), with no
    /// deadline and no retries.
    #[must_use]
    pub fn new() -> BatchAnalyzer {
        BatchAnalyzer {
            jobs: Vec::new(),
            workers: 1,
            timeout: None,
            retries: 0,
        }
    }

    /// Sets the worker count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> BatchAnalyzer {
        self.workers = workers.max(1);
        self
    }

    /// Sets the fleet-wide per-job deadline. Each attempt of each job
    /// gets a fresh [`CancelToken`] with this deadline; jobs may override
    /// it via [`BatchJob::timeout`].
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> BatchAnalyzer {
        self.timeout = Some(timeout);
        self
    }

    /// Sets how many degraded retries a budget-⊤ or timed-out job gets
    /// (0, the default, disables the ladder).
    #[must_use]
    pub fn retries(mut self, retries: u32) -> BatchAnalyzer {
        self.retries = retries;
        self
    }

    /// Appends a job. Jobs run (logically) in insertion order and their
    /// records appear in the same order in the report.
    pub fn push(&mut self, job: BatchJob) {
        self.jobs.push(JobInput::Job(Box::new(job)));
    }

    /// Appends a pre-failed record — a job that could not be constructed
    /// (typically a corpus file that failed to parse). It occupies its
    /// submission-order slot as a [`JobOutcome::Error`] record instead of
    /// aborting the batch.
    pub fn push_error(&mut self, name: impl Into<String>, message: impl Into<String>) {
        self.jobs.push(JobInput::Error {
            name: name.into(),
            message: message.into(),
        });
    }

    /// Appends a job, builder style.
    #[must_use]
    pub fn job(mut self, job: BatchJob) -> BatchAnalyzer {
        self.push(job);
        self
    }

    /// Number of queued jobs (including pre-failed records).
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job across the worker pool and merges the results.
    ///
    /// Deterministic: apart from the wall-time and worker-id fields, the
    /// report is identical for any worker count. No panic escapes this
    /// call — a panicking job becomes its own [`JobOutcome::Panicked`]
    /// record.
    #[must_use]
    pub fn run(self) -> BatchReport {
        let workers = self.workers;
        let fleet_timeout = self.timeout;
        let retries = self.retries;
        let total = self.jobs.len();

        // Pre-failed records keep their submission slots; runnable jobs
        // go to the pool tagged with their original index.
        let mut slots: Vec<Option<JobRecord>> = (0..total).map(|_| None).collect();
        let mut runnable: Vec<(usize, BatchJob)> = Vec::new();
        for (index, input) in self.jobs.into_iter().enumerate() {
            match input {
                JobInput::Job(job) => runnable.push((index, *job)),
                JobInput::Error { name, message } => {
                    slots[index] = Some(JobRecord {
                        name,
                        outcome: JobOutcome::Error { message },
                        result: None,
                        wall_nanos: 0,
                        panic_worker: None,
                    });
                }
            }
        }
        // Names survive outside the pool so a panicked job (whose
        // closure state is lost) can still be named in its record.
        let names: Vec<(usize, String)> = runnable
            .iter()
            .map(|(index, job)| (*index, job.name.clone()))
            .collect();

        let pool = mpl_runtime::Pool::new(workers);
        let (results, _stats) = pool.run_ordered_isolated(runnable, |_, (index, job)| {
            let start = Instant::now();
            let (outcome, result) = run_job(&job, fleet_timeout, retries);
            (
                index,
                JobRecord {
                    name: job.name,
                    outcome,
                    result,
                    wall_nanos: start.elapsed().as_nanos() as u64,
                    panic_worker: None,
                },
            )
        });
        for (slot, outcome) in results.into_iter().enumerate() {
            match outcome {
                Ok((index, record)) => slots[index] = Some(record),
                Err(failure) => {
                    let (index, name) = &names[slot];
                    slots[*index] = Some(JobRecord {
                        name: name.clone(),
                        outcome: JobOutcome::Panicked {
                            message: failure.message,
                        },
                        result: None,
                        wall_nanos: 0,
                        panic_worker: Some(failure.worker),
                    });
                }
            }
        }

        let records: Vec<JobRecord> = slots
            .into_iter()
            .map(|slot| slot.expect("every job slot filled exactly once"))
            .collect();
        let mut summary = BatchSummary::default();
        for record in &records {
            summary.absorb(record);
        }
        BatchReport {
            records,
            summary,
            workers,
        }
    }
}

/// The degradation ladder: attempt 1 is the requested configuration;
/// every later attempt widens sooner (halved delay), snaps through half
/// as many thresholds, and burns a quarter of the step budget — so a job
/// that timed out converges (or fails fast with a sound budget-⊤)
/// instead of timing out again. A pure function of `(config, attempt)`,
/// so retries are deterministic.
fn degrade(config: &AnalysisConfig, attempt: u32) -> AnalysisConfig {
    let mut coarse = config.clone();
    if attempt <= 1 {
        return coarse;
    }
    let level = (attempt - 1).min(31);
    coarse.widen_delay >>= level;
    let keep = coarse.widen_thresholds.len() >> level;
    coarse.widen_thresholds.truncate(keep);
    coarse.max_steps = (coarse.max_steps >> (2 * u64::from(level)).min(63)).max(1_000);
    coarse
}

/// How a finished attempt steers the retry loop.
enum AttemptClass {
    /// The deadline fired: retry (degraded) or report `TimedOut`.
    Deadline,
    /// A resource-budget ⊤: retry (degraded) or keep the attempt-1 answer.
    Budget,
    /// A definitive answer (exact, deadlock, or a non-budget ⊤).
    Final,
}

fn classify(result: &AnalysisResult) -> AttemptClass {
    match &result.verdict {
        Verdict::Top {
            reason: TopReason::Deadline,
        } => AttemptClass::Deadline,
        Verdict::Top {
            reason: TopReason::StepBudget | TopReason::PsetBudget { .. },
        } => AttemptClass::Budget,
        _ => AttemptClass::Final,
    }
}

/// Runs one job through the attempt ladder. Panics (including injected
/// [`Fault::Panic`]) unwind out of here and are caught by the pool's
/// isolation layer — or, for single-request execution, by the
/// `catch_unwind` in [`crate::request::AnalysisRequest::execute`].
pub(crate) fn run_job(
    job: &BatchJob,
    fleet_timeout: Option<Duration>,
    retries: u32,
) -> (JobOutcome, Option<AnalysisResult>) {
    let timeout = job.timeout.or(fleet_timeout);
    let max_attempts = retries.saturating_add(1);
    // The attempt-1 budget-⊤ result, kept so exhausted retries still
    // report the answer produced under the *requested* configuration.
    let mut requested_top: Option<AnalysisResult> = None;
    for attempt in 1..=max_attempts {
        // Fresh interner per attempt: VarId assignment must not depend
        // on prior attempts or on which jobs this worker ran before.
        mpl_domains::reset_table();
        let token = timeout.map(CancelToken::with_deadline);
        let result = match job.fault {
            Some(Fault::Panic) => {
                panic!("injected fault: job `{}` panics by directive", job.name)
            }
            Some(Fault::Spin) => {
                let Some(token) = &token else {
                    // Spinning with no deadline would hang the worker
                    // forever; fail deterministically instead.
                    panic!(
                        "injected fault: job `{}` spins but no timeout is configured",
                        job.name
                    );
                };
                // Sleep-poll rather than busy-wait: the fault models a
                // job that never finishes, and must not starve the
                // fleet's real jobs of CPU on small machines.
                while !token.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                AnalysisResult::top(TopReason::Deadline)
            }
            Some(Fault::TopOnce) if attempt == 1 => AnalysisResult::top(TopReason::StepBudget),
            _ => {
                let mut config = degrade(&job.config, attempt);
                config.cancel = token;
                analyze(&job.program, &config)
            }
        };
        match classify(&result) {
            AttemptClass::Deadline => {
                if attempt >= max_attempts {
                    // Normalized bare ⊤: partial progress at expiry is
                    // wall-clock-dependent and must not leak into
                    // deterministic output.
                    return (
                        JobOutcome::TimedOut,
                        Some(AnalysisResult::top(TopReason::Deadline)),
                    );
                }
            }
            AttemptClass::Budget => {
                if attempt >= max_attempts {
                    return match requested_top {
                        // Prefer the budget-⊤ computed under the
                        // requested config over a coarsened one.
                        Some(original) => (JobOutcome::Completed, Some(original)),
                        None if attempt == 1 => (JobOutcome::Completed, Some(result)),
                        // Attempt 1 timed out; this coarsened budget-⊤
                        // is still the best sound answer available.
                        None => (JobOutcome::Degraded { attempts: attempt }, Some(result)),
                    };
                }
                if attempt == 1 {
                    requested_top = Some(result);
                }
            }
            AttemptClass::Final => {
                let outcome = if attempt == 1 {
                    JobOutcome::Completed
                } else {
                    JobOutcome::Degraded { attempts: attempt }
                };
                return (outcome, Some(result));
            }
        }
    }
    unreachable!("the attempt loop returns on its final attempt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::corpus;

    fn corpus_batch(workers: usize) -> BatchReport {
        let mut batch = BatchAnalyzer::new().workers(workers);
        for prog in corpus::all() {
            batch.push(BatchJob::new(
                prog.name,
                prog.program,
                AnalysisConfig::default(),
            ));
        }
        batch.run()
    }

    /// Strips the non-deterministic fields for comparison.
    fn fingerprint(report: &BatchReport) -> Vec<String> {
        report
            .records
            .iter()
            .map(|r| match &r.result {
                Some(res) => format!(
                    "{} [{}] {:?} matches={:?} leaks={:?} steps={} closure=({},{},{},{})",
                    r.name,
                    r.outcome.code(),
                    res.verdict,
                    res.matches,
                    res.leaks,
                    res.steps,
                    res.closure_stats.full_closures,
                    res.closure_stats.full_closure_vars,
                    res.closure_stats.incremental_closures,
                    res.closure_stats.incremental_closure_vars,
                ),
                None => format!("{} [{}] {:?}", r.name, r.outcome.code(), r.outcome),
            })
            .collect()
    }

    #[test]
    fn records_preserve_submission_order() {
        let report = corpus_batch(4);
        let names: Vec<&str> = report.records.iter().map(|r| r.name.as_str()).collect();
        let expected: Vec<&str> = corpus::all().iter().map(|p| p.name).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = fingerprint(&corpus_batch(1));
        for workers in [2, 4, 8] {
            let par = fingerprint(&corpus_batch(workers));
            assert_eq!(seq, par, "corpus results diverged at {workers} workers");
        }
    }

    #[test]
    fn summary_counts_are_consistent() {
        let report = corpus_batch(3);
        let s = report.summary;
        assert_eq!(s.programs, corpus::all().len());
        assert_eq!(s.programs, s.exact + s.deadlock + s.top);
        assert_eq!(s.programs, s.completed, "fault-free corpus completes");
        assert_eq!(s.failures(), 0);
        assert_eq!(
            s.matches,
            report
                .records
                .iter()
                .filter_map(|r| r.result.as_ref())
                .map(|res| res.matches.len())
                .sum::<usize>()
        );
        assert_eq!(
            s.steps,
            report
                .records
                .iter()
                .filter_map(|r| r.result.as_ref())
                .map(|res| res.steps)
                .sum::<u64>()
        );
        assert!(s.exact > 0, "corpus should contain exact programs");
        assert!(s.closure.full_closures > 0 || s.closure.incremental_closures > 0);
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let report = BatchAnalyzer::new().workers(8).run();
        assert!(report.records.is_empty());
        assert_eq!(report.summary, BatchSummary::default());
        assert_eq!(report.workers, 8);
    }

    #[test]
    fn panicking_job_is_isolated_and_named() {
        for workers in [1usize, 4] {
            let mut batch = BatchAnalyzer::new().workers(workers);
            let good = corpus::fig2_exchange();
            batch.push(BatchJob::new(
                "before",
                good.program.clone(),
                AnalysisConfig::default(),
            ));
            batch.push(
                BatchJob::new("poison", good.program.clone(), AnalysisConfig::default())
                    .with_fault(Fault::Panic),
            );
            batch.push(BatchJob::new(
                "after",
                good.program.clone(),
                AnalysisConfig::default(),
            ));
            let report = batch.run();
            let names: Vec<&str> = report.records.iter().map(|r| r.name.as_str()).collect();
            assert_eq!(names, ["before", "poison", "after"]);
            let poison = &report.records[1];
            assert!(matches!(poison.outcome, JobOutcome::Panicked { .. }));
            assert!(
                poison.outcome.detail().unwrap().contains("injected fault"),
                "{:?}",
                poison.outcome
            );
            assert!(poison.result.is_none());
            assert!(report.records[0].outcome.is_ok());
            assert!(report.records[2].outcome.is_ok());
            assert_eq!(report.summary.panicked, 1);
            assert_eq!(report.summary.completed, 2);
        }
    }

    #[test]
    fn spinning_job_times_out_with_normalized_top() {
        let fingerprint_at = |workers: usize| {
            let mut batch = BatchAnalyzer::new()
                .workers(workers)
                .timeout(Duration::from_millis(50));
            let good = corpus::fig2_exchange();
            batch.push(BatchJob::new(
                "good",
                good.program.clone(),
                AnalysisConfig::default(),
            ));
            batch.push(
                BatchJob::new("spinner", good.program.clone(), AnalysisConfig::default())
                    .with_fault(Fault::Spin),
            );
            let report = batch.run();
            let spinner = &report.records[1];
            assert_eq!(spinner.outcome, JobOutcome::TimedOut);
            let result = spinner.result.as_ref().unwrap();
            assert!(matches!(
                result.verdict,
                Verdict::Top {
                    reason: TopReason::Deadline
                }
            ));
            assert_eq!(result.steps, 0, "normalized ⊤ reports no progress");
            assert_eq!(report.summary.timed_out, 1);
            fingerprint(&report)
        };
        assert_eq!(fingerprint_at(1), fingerprint_at(8));
    }

    #[test]
    fn spin_without_timeout_panics_deterministically() {
        let good = corpus::fig2_exchange();
        let mut batch = BatchAnalyzer::new();
        batch.push(
            BatchJob::new("spinner", good.program, AnalysisConfig::default())
                .with_fault(Fault::Spin),
        );
        let report = batch.run();
        let rec = &report.records[0];
        assert!(matches!(rec.outcome, JobOutcome::Panicked { .. }));
        assert!(rec
            .outcome
            .detail()
            .unwrap()
            .contains("no timeout is configured"));
    }

    #[test]
    fn top_once_fault_degrades_with_retry_and_completes_without() {
        let good = corpus::fig2_exchange();
        // Without retries: the injected budget-⊤ is the final answer.
        let mut batch = BatchAnalyzer::new();
        batch.push(
            BatchJob::new("flaky", good.program.clone(), AnalysisConfig::default())
                .with_fault(Fault::TopOnce),
        );
        let report = batch.run();
        assert_eq!(report.records[0].outcome, JobOutcome::Completed);
        assert!(matches!(
            report.records[0].result.as_ref().unwrap().verdict,
            Verdict::Top {
                reason: TopReason::StepBudget
            }
        ));
        // With one retry: attempt 2 analyzes for real and recovers.
        let mut batch = BatchAnalyzer::new().retries(1);
        batch.push(
            BatchJob::new("flaky", good.program.clone(), AnalysisConfig::default())
                .with_fault(Fault::TopOnce),
        );
        let report = batch.run();
        assert_eq!(
            report.records[0].outcome,
            JobOutcome::Degraded { attempts: 2 }
        );
        let result = report.records[0].result.as_ref().unwrap();
        assert!(result.is_exact(), "{:?}", result.verdict);
        assert_eq!(report.summary.degraded, 1);
    }

    #[test]
    fn retry_ladder_is_deterministic_across_worker_counts() {
        let build = |workers: usize| {
            let mut batch = BatchAnalyzer::new().workers(workers).retries(2);
            for prog in corpus::all() {
                batch.push(BatchJob::new(
                    prog.name,
                    prog.program,
                    AnalysisConfig::default(),
                ));
            }
            let flaky = corpus::fig2_exchange();
            batch.push(
                BatchJob::new("flaky", flaky.program, AnalysisConfig::default())
                    .with_fault(Fault::TopOnce),
            );
            batch.run()
        };
        let seq = fingerprint(&build(1));
        for workers in [4, 8] {
            assert_eq!(seq, fingerprint(&build(workers)), "diverged at {workers}");
        }
    }

    #[test]
    fn exhausted_retries_report_the_requested_config_answer() {
        // A pset-budget ⊤ that no coarsening fixes: the record must carry
        // the attempt-1 result (budget ⊤ under max_psets=1), outcome
        // Completed, not Degraded.
        let prog = corpus::nearest_neighbor_shift();
        let config = AnalysisConfig::builder()
            .max_psets(1)
            .build()
            .expect("valid config");
        let mut batch = BatchAnalyzer::new().retries(2);
        batch.push(BatchJob::new("cramped", prog.program, config));
        let report = batch.run();
        let rec = &report.records[0];
        assert_eq!(rec.outcome, JobOutcome::Completed);
        assert!(matches!(
            rec.result.as_ref().unwrap().verdict,
            Verdict::Top {
                reason: TopReason::PsetBudget { max: 1 }
            }
        ));
    }

    #[test]
    fn error_records_flow_through_in_order() {
        let good = corpus::fig2_exchange();
        let mut batch = BatchAnalyzer::new().workers(4);
        batch.push(BatchJob::new(
            "first",
            good.program.clone(),
            AnalysisConfig::default(),
        ));
        batch.push_error("broken", "parse error at line 3: expected expression");
        batch.push(BatchJob::new(
            "last",
            good.program,
            AnalysisConfig::default(),
        ));
        assert_eq!(batch.len(), 3);
        let report = batch.run();
        let names: Vec<&str> = report.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["first", "broken", "last"]);
        assert!(matches!(
            report.records[1].outcome,
            JobOutcome::Error { .. }
        ));
        assert!(report.records[1].result.is_none());
        assert_eq!(report.summary.errors, 1);
        assert_eq!(report.summary.programs, 3);
        assert_eq!(report.summary.failures(), 1);
    }

    #[test]
    fn fault_directives_parse_from_source_comments() {
        assert_eq!(
            Fault::from_directive("x := 1;\n// mpl:fault=panic\n"),
            Some(Fault::Panic)
        );
        assert_eq!(
            Fault::from_directive("  // mpl:fault=spin\nx := 1;\n"),
            Some(Fault::Spin)
        );
        assert_eq!(
            Fault::from_directive("// mpl:fault=top-once\n"),
            Some(Fault::TopOnce)
        );
        assert_eq!(Fault::from_directive("// mpl:fault=unknown\n"), None);
        assert_eq!(Fault::from_directive("x := 1;\n"), None);
    }

    #[test]
    fn degradation_ladder_is_monotone_and_saturating() {
        let base = AnalysisConfig::default();
        let a1 = degrade(&base, 1);
        assert_eq!(a1.widen_delay, base.widen_delay);
        assert_eq!(a1.max_steps, base.max_steps);
        let a2 = degrade(&base, 2);
        assert!(a2.widen_delay <= a1.widen_delay);
        assert!(a2.widen_thresholds.len() <= a1.widen_thresholds.len());
        assert!(a2.max_steps <= a1.max_steps);
        // Deep attempts saturate instead of overflowing.
        let deep = degrade(&base, 40);
        assert_eq!(deep.widen_delay, 0);
        assert!(deep.widen_thresholds.is_empty());
        assert_eq!(deep.max_steps, 1_000);
    }

    #[test]
    fn outcome_codes_are_stable_kebab_case() {
        assert_eq!(JobOutcome::Completed.code(), "completed");
        assert_eq!(JobOutcome::Degraded { attempts: 2 }.code(), "degraded");
        assert_eq!(JobOutcome::TimedOut.code(), "timed-out");
        let panicked = JobOutcome::Panicked {
            message: "boom".to_owned(),
        };
        assert_eq!(panicked.code(), "panicked");
        assert_eq!(panicked.to_string(), "panicked: boom");
        let error = JobOutcome::Error {
            message: "bad file".to_owned(),
        };
        assert_eq!(error.code(), "error");
        assert!(!error.is_ok());
        assert!(JobOutcome::Completed.is_ok());
    }
}
