//! Send–receive matching: the heart of `matchSendsRecvs` (Fig 4).
//!
//! A *matching strategy* is the paper's "client analysis" choice of
//! message-expression abstraction:
//!
//! * [`SimpleMatcher`] — §VII: expressions of the form `var + c`
//!   (including `id + c` and constants), matched via constraint-graph
//!   comparisons over symbolic process ranges;
//! * [`CartesianMatcher`] — §VIII: everything the simple matcher does,
//!   plus whole-set matching of `+ * / %` expressions over cartesian
//!   grids via Hierarchical Sequence Maps.
//!
//! Both implement the paper's matching conditions exactly: the send
//! expression must map the matched sender subset *surjectively* onto the
//! matched receiver subset, and the composition of the receive and send
//! expressions must be the *identity* on the sender subset. Anything not
//! provable is "no match" — never a guess.

use std::collections::BTreeMap;

use mpl_cfg::CfgNodeId;
use mpl_domains::{NsVar, PsetId, VarId};
use mpl_hsm::{compose_exprs, AssumptionCtx, Hsm, SymPoly};
use mpl_lang::ast::{BinOp, Expr};
use mpl_procset::{Bound, ProcRange};

use crate::norm::NormCtx;
use crate::state::AnalysisState;

/// A send operation offered for matching (either a process set blocked at
/// a `send` node, or a pending send it carries).
#[derive(Debug, Clone)]
pub struct SendSite {
    /// Index of the sending pset in the state.
    pub pset_idx: usize,
    /// The send statement's CFG node.
    pub node: CfgNodeId,
    /// The value expression.
    pub value: Expr,
    /// The destination expression.
    pub dest: Expr,
    /// True if this is a pending (already-issued) send.
    pub pending: bool,
}

/// A receive operation offered for matching.
#[derive(Debug, Clone)]
pub struct RecvSite {
    /// Index of the receiving pset in the state.
    pub pset_idx: usize,
    /// The recv statement's CFG node.
    pub node: CfgNodeId,
    /// The source expression.
    pub src: Expr,
    /// The variable receiving the value.
    pub var: String,
}

/// The shape of a successful match, used by the pattern classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKind {
    /// Sender rank `s` matched receiver `s + offset` across the range.
    Shift {
        /// The rank offset.
        offset: i64,
    },
    /// A single sender rank matched a single receiver rank through
    /// uniform expressions.
    UniformPair,
    /// A whole process set exchanged with itself through a permutation
    /// (HSM matching; e.g. the transpose).
    SelfPermutation,
}

/// A successful match: the sender/receiver subsets that exchange
/// messages. Per the paper, matching is exact: every rank in `s_procs`
/// sends exactly one message received by the corresponding rank in
/// `r_procs`.
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// Matched sender ranks (a subset of the sender pset's range).
    pub s_procs: ProcRange,
    /// Matched receiver ranks.
    pub r_procs: ProcRange,
    /// The shape of the match.
    pub kind: MatchKind,
}

/// A pluggable `matchSendsRecvs` implementation.
pub trait MatchStrategy {
    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Attempts to match `send` against `recv` in `st`. On success
    /// returns the matched subsets; `None` means "not provably matched".
    fn try_match(
        &self,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        norm: &NormCtx,
        assumes: &[Expr],
    ) -> Option<MatchOutcome>;

    /// When `try_match` failed *only* because a bound comparison was
    /// undecidable, returns the expression pair whose relation would
    /// decide it. The engine then forks the analysis state on that
    /// comparison — realizing the paper's §VI split "because one subset's
    /// send or receive gets matched and the other's does not".
    fn split_hint(
        &self,
        _st: &mut AnalysisState,
        _send: &SendSite,
        _recv: &RecvSite,
        _norm: &NormCtx,
    ) -> Option<(mpl_domains::LinExpr, mpl_domains::LinExpr)> {
        None
    }

    /// The image of the sender subset `senders` under `send`'s
    /// destination expression — the paper's `image` operation of the
    /// message-expression abstraction. `None` means the expression is
    /// not representable in this strategy's abstraction.
    fn image(
        &self,
        _st: &mut AnalysisState,
        _norm: &NormCtx,
        _send: &SendSite,
        _senders: &ProcRange,
    ) -> Option<ProcRange> {
        None
    }

    /// Whether `recv.src ∘ send.dest` is provably the identity on
    /// `senders` — the paper's `compose`/`is-identity` condition.
    /// `Some(b)` is a proof either way; `None` means undecidable in this
    /// strategy's abstraction.
    fn composes_to_identity(
        &self,
        _st: &mut AnalysisState,
        _send: &SendSite,
        _recv: &RecvSite,
        _norm: &NormCtx,
        _senders: &ProcRange,
        _assumes: &[Expr],
    ) -> Option<bool> {
        None
    }
}

/// The image of `senders` under a linearized destination expression: a
/// per-process `id + c` shifts the whole subset, a set-uniform
/// expression collapses it to the one targeted rank. Shared by every
/// arm of the simple matcher (the four arms differ only in which side
/// is singled out, never in how the image is formed).
fn image_of(
    st: &mut AnalysisState,
    dest: &mpl_domains::LinExpr,
    id_s: VarId,
    senders: &ProcRange,
) -> ProcRange {
    let mut out = if dest.var == Some(id_s) {
        senders.plus(dest.offset)
    } else {
        ProcRange::singleton(*dest)
    };
    out.saturate(&mut st.cg);
    out
}

/// The §VII client: `var + c` message expressions.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleMatcher;

impl MatchStrategy for SimpleMatcher {
    fn name(&self) -> &'static str {
        "simple-symbolic"
    }

    fn try_match(
        &self,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        norm: &NormCtx,
        _assumes: &[Expr],
    ) -> Option<MatchOutcome> {
        let ps = st.psets[send.pset_idx].id;
        let pr = st.psets[recv.pset_idx].id;
        if send.pset_idx == recv.pset_idx {
            // Self-exchanges need the HSM client.
            return None;
        }
        let consts = st.consts.clone();
        let dest = norm.linearize_resolved(&send.dest, ps, &consts, &mut st.cg)?;
        let src = norm.linearize_resolved(&recv.src, pr, &consts, &mut st.cg)?;
        let s_range = st.psets[send.pset_idx].range.clone();
        let r_range = st.psets[recv.pset_idx].range.clone();
        if s_range.is_vacant() || r_range.is_vacant() {
            return None;
        }

        let id_s = VarId::id_of(ps);
        let id_r = VarId::id_of(pr);
        let dest_uses_id = dest.var == Some(id_s);
        let src_uses_id = src.var == Some(id_r);

        // Each case singles out the matched senders; the receivers are
        // always their image under the destination expression.
        let (s_procs, kind, check_r) = match (dest_uses_id, src_uses_id) {
            (true, true) => {
                // dest = id + c, src = id + d: composition is the
                // identity iff d = -c.
                if !dest.composes_to_identity_with(&src) {
                    return None;
                }
                // Maximal matched senders: S ∩ (R - c).
                let shifted_r = r_range.plus(-dest.offset);
                let mut s_procs = intersect(st, &s_range, &shifted_r).ok()?;
                s_procs.saturate(&mut st.cg);
                // The intersection construction already bounds the image
                // inside R; no containment check needed.
                (
                    s_procs,
                    MatchKind::Shift {
                        offset: dest.offset,
                    },
                    false,
                )
            }
            (false, true) => {
                // dest uniform t, src = id + d: the receiver at rank t
                // expects sender t + d; only that sender matches.
                let mut s_procs = ProcRange::singleton(dest.plus(src.offset));
                s_procs.saturate(&mut st.cg);
                (s_procs, MatchKind::UniformPair, true)
            }
            (true, false) | (false, false) => {
                // src uniform m: only sender m matches, landing on
                // receiver m + c (per-process dest) or the uniform t.
                // The (false, false) identity condition dest(m) = t with
                // src(t) = m holds by construction once both singletons
                // lie in their sets.
                let mut s_procs = ProcRange::singleton(src);
                s_procs.saturate(&mut st.cg);
                (s_procs, MatchKind::UniformPair, true)
            }
        };
        if check_r && !s_range.provably_contains(&mut st.cg, &s_procs) {
            return None;
        }
        let r_procs = image_of(st, &dest, id_s, &s_procs);
        if check_r && !r_range.provably_contains(&mut st.cg, &r_procs) {
            return None;
        }
        let outcome = MatchOutcome {
            s_procs,
            r_procs,
            kind,
        };

        // The matched subsets must be provably non-empty.
        let mut st_cg = st.cg.clone();
        if outcome.s_procs.is_empty(&mut st_cg) != Some(false)
            || outcome.r_procs.is_empty(&mut st_cg) != Some(false)
        {
            return None;
        }
        Some(outcome)
    }

    fn split_hint(
        &self,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        norm: &NormCtx,
    ) -> Option<(mpl_domains::LinExpr, mpl_domains::LinExpr)> {
        if send.pset_idx == recv.pset_idx {
            return None;
        }
        let ps = st.psets[send.pset_idx].id;
        let pr = st.psets[recv.pset_idx].id;
        let consts = st.consts.clone();
        let dest = norm.linearize_resolved(&send.dest, ps, &consts, &mut st.cg)?;
        let src = norm.linearize_resolved(&recv.src, pr, &consts, &mut st.cg)?;
        let s_range = st.psets[send.pset_idx].range.clone();
        let r_range = st.psets[recv.pset_idx].range.clone();
        let id_s = VarId::id_of(ps);
        let id_r = VarId::id_of(pr);
        match (dest.var == Some(id_s), src.var == Some(id_r)) {
            (true, true) => {
                if dest.offset + src.offset != 0 {
                    return None;
                }
                // The comparison intersect() could not decide — or, once
                // the matched subsets exist, an undecidable emptiness or
                // the containment comparison the releasing subtraction
                // needs.
                let shifted = r_range.plus(-dest.offset);
                match intersect(st, &s_range, &shifted) {
                    Err(hint) => Some(hint),
                    Ok(s_procs) => {
                        let mut r_procs = s_procs.plus(dest.offset);
                        r_procs.saturate(&mut st.cg);
                        emptiness_hint(st, &s_procs)
                            .or_else(|| emptiness_hint(st, &r_procs))
                            .or_else(|| containment_hint(st, &s_range, &s_procs))
                            .or_else(|| containment_hint(st, &r_range, &r_procs))
                    }
                }
            }
            (false, true) => {
                let mut r_procs = ProcRange::singleton(dest);
                r_procs.saturate(&mut st.cg);
                containment_hint(st, &r_range, &r_procs)
            }
            (true, false) => {
                let mut s_procs = ProcRange::singleton(src);
                s_procs.saturate(&mut st.cg);
                containment_hint(st, &s_range, &s_procs).or_else(|| {
                    let mut r_procs = ProcRange::singleton(src.plus(dest.offset));
                    r_procs.saturate(&mut st.cg);
                    containment_hint(st, &r_range, &r_procs)
                })
            }
            (false, false) => {
                let mut s_procs = ProcRange::singleton(src);
                s_procs.saturate(&mut st.cg);
                containment_hint(st, &s_range, &s_procs).or_else(|| {
                    let mut r_procs = ProcRange::singleton(dest);
                    r_procs.saturate(&mut st.cg);
                    containment_hint(st, &r_range, &r_procs)
                })
            }
        }
    }

    fn image(
        &self,
        st: &mut AnalysisState,
        norm: &NormCtx,
        send: &SendSite,
        senders: &ProcRange,
    ) -> Option<ProcRange> {
        let ps = st.psets[send.pset_idx].id;
        let consts = st.consts.clone();
        let dest = norm.linearize_resolved(&send.dest, ps, &consts, &mut st.cg)?;
        Some(image_of(st, &dest, VarId::id_of(ps), senders))
    }

    fn composes_to_identity(
        &self,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        norm: &NormCtx,
        _senders: &ProcRange,
        _assumes: &[Expr],
    ) -> Option<bool> {
        if send.pset_idx == recv.pset_idx {
            return None;
        }
        let ps = st.psets[send.pset_idx].id;
        let pr = st.psets[recv.pset_idx].id;
        let consts = st.consts.clone();
        let dest = norm.linearize_resolved(&send.dest, ps, &consts, &mut st.cg)?;
        let src = norm.linearize_resolved(&recv.src, pr, &consts, &mut st.cg)?;
        // Only the shift form is decidable by offset algebra; the
        // singleton cases are decided by containment, not composition.
        if dest.var == Some(VarId::id_of(ps)) && src.var == Some(VarId::id_of(pr)) {
            return Some(dest.composes_to_identity_with(&src));
        }
        None
    }
}

/// The bound pair whose relation decides whether `r` is empty, when
/// undecidable.
fn emptiness_hint(
    st: &mut AnalysisState,
    r: &ProcRange,
) -> Option<(mpl_domains::LinExpr, mpl_domains::LinExpr)> {
    if r.is_empty(&mut st.cg).is_some() || r.is_vacant() {
        return None;
    }
    Some((*r.lb.rep(), *r.ub.rep()))
}

/// The first undecidable comparison preventing `outer ⊇ inner` — `None`
/// both when containment holds and when it provably fails (splitting
/// would not help either way).
fn containment_hint(
    st: &mut AnalysisState,
    outer: &ProcRange,
    inner: &ProcRange,
) -> Option<(mpl_domains::LinExpr, mpl_domains::LinExpr)> {
    if !outer.lb.provably_le(&mut st.cg, &inner.lb) {
        if inner.lb.provably_lt(&mut st.cg, &outer.lb) {
            return None; // Provably outside: no split helps.
        }
        return Some((*outer.lb.rep(), *inner.lb.rep()));
    }
    if !inner.ub.provably_le(&mut st.cg, &outer.ub) {
        if outer.ub.provably_lt(&mut st.cg, &inner.ub) {
            return None;
        }
        return Some((*inner.ub.rep(), *outer.ub.rep()));
    }
    None
}

/// The larger of two bounds, or the undecided pair as a split hint.
fn max_bound(
    st: &mut AnalysisState,
    a: &Bound,
    b: &Bound,
) -> Result<Bound, (mpl_domains::LinExpr, mpl_domains::LinExpr)> {
    if b.provably_le(&mut st.cg, a) {
        Ok(a.clone())
    } else if a.provably_le(&mut st.cg, b) {
        Ok(b.clone())
    } else {
        Err((*a.rep(), *b.rep()))
    }
}

/// The smaller of two bounds, or the undecided pair as a split hint.
fn min_bound(
    st: &mut AnalysisState,
    a: &Bound,
    b: &Bound,
) -> Result<Bound, (mpl_domains::LinExpr, mpl_domains::LinExpr)> {
    if a.provably_le(&mut st.cg, b) {
        Ok(a.clone())
    } else if b.provably_le(&mut st.cg, a) {
        Ok(b.clone())
    } else {
        Err((*a.rep(), *b.rep()))
    }
}

/// Intersection of two ranges when the bound order is provable; `Err`
/// carries the undecided comparison as a split hint.
#[allow(clippy::type_complexity)]
fn intersect(
    st: &mut AnalysisState,
    a: &ProcRange,
    b: &ProcRange,
) -> Result<ProcRange, (mpl_domains::LinExpr, mpl_domains::LinExpr)> {
    let lb = max_bound(st, &a.lb, &b.lb)?;
    let ub = min_bound(st, &a.ub, &b.ub)?;
    let mut r = ProcRange::new(lb, ub);
    r.saturate(&mut st.cg);
    Ok(r)
}

/// The §VIII client: simple matching plus HSM-based whole-set matching
/// for cartesian-grid expressions.
#[derive(Debug, Clone, Copy, Default)]
pub struct CartesianMatcher;

impl CartesianMatcher {
    /// The §VII strategy this one extends: everything outside the HSM
    /// fragment is delegated here, so the simple matching rules live in
    /// exactly one place.
    pub(crate) const fn base(&self) -> &'static SimpleMatcher {
        &SimpleMatcher
    }
}

/// The send and composed (recv ∘ send) HSMs for a whole-set pair, with
/// the sender/receiver set polynomials — the shared §VIII pipeline
/// behind both full matching and the bare identity query.
struct HsmComposition {
    ctx: AssumptionCtx,
    s_lb: SymPoly,
    s_n: SymPoly,
    r_lb: SymPoly,
    r_n: SymPoly,
    h_send: Hsm,
    composed: Hsm,
}

/// Builds the HSM composition for `send`/`recv` over the given sender
/// and receiver ranges. `None` when either range or expression leaves
/// the HSM fragment.
fn hsm_composition(
    st: &mut AnalysisState,
    norm: &NormCtx,
    send: &SendSite,
    recv: &RecvSite,
    s_range: &ProcRange,
    r_range: &ProcRange,
    assumes: &[Expr],
) -> Option<HsmComposition> {
    let ctx = build_assumption_ctx(st, norm, assumes);
    let ps = st.psets[send.pset_idx].id;
    let pr = st.psets[recv.pset_idx].id;

    let (s_lb, s_n) = range_to_polys(st, s_range, &ctx)?;
    let (r_lb, r_n) = range_to_polys(st, r_range, &ctx)?;
    if !ctx.pos(&s_n) || !ctx.pos(&r_n) {
        return None;
    }

    let vars_s = uniform_vars(st, norm, &send.dest, ps)?;
    let vars_r = uniform_vars(st, norm, &recv.src, pr)?;

    let id_s = Hsm::range(s_lb.clone(), s_n.clone());
    let (h_send, composed) =
        compose_exprs(&send.dest, &recv.src, &id_s, &vars_s, &vars_r, &ctx).ok()?;
    Some(HsmComposition {
        ctx,
        s_lb,
        s_n,
        r_lb,
        r_n,
        h_send,
        composed,
    })
}

impl MatchStrategy for CartesianMatcher {
    fn name(&self) -> &'static str {
        "cartesian-hsm"
    }

    fn try_match(
        &self,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        norm: &NormCtx,
        assumes: &[Expr],
    ) -> Option<MatchOutcome> {
        if let Some(out) = self.base().try_match(st, send, recv, norm, assumes) {
            return Some(out);
        }
        // Whole-set HSM matching (the transpose pattern): both sets are
        // matched in full.
        let s_range = st.psets[send.pset_idx].range.clone();
        let r_range = st.psets[recv.pset_idx].range.clone();
        let c = hsm_composition(st, norm, send, recv, &s_range, &r_range, assumes)?;
        // Surjection of the send expression onto the receiver set.
        if !c.h_send.is_surjection_onto(&c.r_lb, &c.r_n, &c.ctx) {
            return None;
        }
        // Composition (recv ∘ send) must be the identity on the senders.
        if !c.composed.is_identity_on(&c.s_lb, &c.s_n, &c.ctx) {
            return None;
        }
        Some(MatchOutcome {
            s_procs: s_range,
            r_procs: r_range,
            kind: MatchKind::SelfPermutation,
        })
    }

    fn split_hint(
        &self,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        norm: &NormCtx,
    ) -> Option<(mpl_domains::LinExpr, mpl_domains::LinExpr)> {
        self.base().split_hint(st, send, recv, norm)
    }

    fn image(
        &self,
        st: &mut AnalysisState,
        norm: &NormCtx,
        send: &SendSite,
        senders: &ProcRange,
    ) -> Option<ProcRange> {
        self.base().image(st, norm, send, senders)
    }

    fn composes_to_identity(
        &self,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        norm: &NormCtx,
        senders: &ProcRange,
        assumes: &[Expr],
    ) -> Option<bool> {
        if let Some(b) = self
            .base()
            .composes_to_identity(st, send, recv, norm, senders, assumes)
        {
            return Some(b);
        }
        // HSM proof of identity over the sender subset (a proof only —
        // a failed HSM identity is "undecidable", not "false").
        let senders = senders.clone();
        let c = hsm_composition(st, norm, send, recv, &senders, &senders, assumes)?;
        c.composed
            .is_identity_on(&c.s_lb, &c.s_n, &c.ctx)
            .then_some(true)
    }
}

/// Builds the HSM assumption context from the program's `assume`
/// equalities, resolving variables through the current state (inputs
/// become symbols; assigned variables must be known constants).
pub fn build_assumption_ctx(
    st: &mut AnalysisState,
    norm: &NormCtx,
    assumes: &[Expr],
) -> AssumptionCtx {
    let mut ctx = AssumptionCtx::new();
    for e in assumes {
        let Expr::Binary(BinOp::Eq, lhs, rhs) = e else {
            continue;
        };
        let name = match lhs.as_ref() {
            Expr::Np => "np".to_owned(),
            Expr::Var(v) if norm.is_input(v) => v.clone(),
            _ => continue,
        };
        if let Some(p) = expr_to_poly(rhs, norm, st) {
            if !p.symbols().contains(&name.as_str()) {
                ctx.define(name, p);
            }
        }
    }
    ctx
}

/// Converts an expression over inputs/constants into a polynomial.
fn expr_to_poly(e: &Expr, norm: &NormCtx, st: &mut AnalysisState) -> Option<SymPoly> {
    match e {
        Expr::Int(c) => Some(SymPoly::constant(*c)),
        Expr::Np => Some(SymPoly::sym("np")),
        Expr::Var(v) if norm.is_input(v) => Some(SymPoly::sym(v.clone())),
        Expr::Var(v) => {
            // Assigned variable: usable only if uniform across all psets,
            // i.e. pinned to one constant in every namespace it exists in.
            let name_idx = mpl_domains::intern_name(v);
            let ids: Vec<PsetId> = st.psets.iter().map(|p| p.id).collect();
            let mut val: Option<i64> = None;
            for id in ids {
                if let Some(c) = st.cg.const_of(VarId::pset_var(id, name_idx)) {
                    match val {
                        None => val = Some(c),
                        Some(prev) if prev == c => {}
                        _ => return None,
                    }
                }
            }
            val.map(SymPoly::constant)
        }
        Expr::Binary(BinOp::Add, l, r) => {
            Some(expr_to_poly(l, norm, st)? + expr_to_poly(r, norm, st)?)
        }
        Expr::Binary(BinOp::Sub, l, r) => {
            Some(expr_to_poly(l, norm, st)? - expr_to_poly(r, norm, st)?)
        }
        Expr::Binary(BinOp::Mul, l, r) => {
            Some(expr_to_poly(l, norm, st)? * expr_to_poly(r, norm, st)?)
        }
        _ => None,
    }
}

/// Converts a range's bounds to `(lb, size)` polynomials, trying each
/// bound alias.
fn range_to_polys(
    st: &mut AnalysisState,
    r: &ProcRange,
    ctx: &AssumptionCtx,
) -> Option<(SymPoly, SymPoly)> {
    let lb = bound_to_poly(&r.lb)?;
    let ub = bound_to_poly(&r.ub)?;
    let n = ctx.normalize(&(ub - lb.clone() + SymPoly::constant(1)));
    let _ = st;
    Some((ctx.normalize(&lb), n))
}

fn bound_to_poly(b: &Bound) -> Option<SymPoly> {
    b.exprs().iter().find_map(NormCtx::linexpr_to_poly)
}

/// Resolves every variable in `expr` to a uniform symbolic value for the
/// HSM conversion: inputs become symbols, assigned variables must be
/// provably constant or offset from `np`/an input.
fn uniform_vars(
    st: &mut AnalysisState,
    norm: &NormCtx,
    expr: &Expr,
    pset: PsetId,
) -> Option<BTreeMap<String, SymPoly>> {
    let mut out = BTreeMap::new();
    for name in expr.variables() {
        let poly = if norm.is_input(name) {
            SymPoly::sym(name)
        } else {
            let v = NsVar::pset(pset, name);
            if let Some(c) = st.cg.const_of(&v) {
                SymPoly::constant(c)
            } else {
                // Try np + c or input + c aliases.
                let mut found = None;
                for alias in st.cg.equalities_of(&v) {
                    if let Some(p) = NormCtx::linexpr_to_poly(&alias) {
                        found = Some(p);
                        break;
                    }
                }
                found?
            }
        };
        out.insert(name.to_owned(), poly);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_cfg::Cfg;
    use mpl_domains::LinExpr;
    use mpl_lang::parse_program;

    fn setup(src: &str) -> (Cfg, NormCtx, AnalysisState) {
        let cfg = Cfg::build(&parse_program(src).unwrap());
        let norm = NormCtx::from_cfg(&cfg);
        let st = AnalysisState::initial(cfg.entry(), 4);
        (cfg, norm, st)
    }

    fn send_site(idx: usize, dest: &str) -> SendSite {
        use mpl_lang::ast::StmtKind;
        let p = parse_program(&format!("send x -> {dest};")).unwrap();
        let StmtKind::Send { value, dest } = &p.stmts[0].kind else {
            panic!("`send x -> {dest}` did not parse to a Send statement")
        };
        SendSite {
            pset_idx: idx,
            node: CfgNodeId(90),
            value: value.clone(),
            dest: dest.clone(),
            pending: false,
        }
    }

    fn recv_site(idx: usize, src: &str) -> RecvSite {
        use mpl_lang::ast::StmtKind;
        let p = parse_program(&format!("recv y <- {src};")).unwrap();
        let StmtKind::Recv { var, src } = &p.stmts[0].kind else {
            panic!("`recv y <- {src}` did not parse to a Recv statement")
        };
        RecvSite {
            pset_idx: idx,
            node: CfgNodeId(91),
            src: src.clone(),
            var: var.clone(),
        }
    }

    /// Splits the initial all-procs set into [0..0] and [1..np-1].
    fn split_root(st: &mut AnalysisState, root_node: CfgNodeId, rest_node: CfgNodeId) {
        let root = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(0));
        let rest = ProcRange::from_exprs(LinExpr::constant(1), LinExpr::var_plus(NsVar::Np, -1));
        st.split_pset(0, vec![(root, root_node, false), (rest, rest_node, false)]);
    }

    #[test]
    fn shift_pattern_matches_with_intersection() {
        // Senders [0..0] with dest id+1; receivers [1..np-1] with src id-1.
        let (_, norm, mut st) = setup("x := 1;");
        split_root(&mut st, CfgNodeId(10), CfgNodeId(11));
        let out = SimpleMatcher
            .try_match(
                &mut st,
                &send_site(0, "id + 1"),
                &recv_site(1, "id - 1"),
                &norm,
                &[],
            )
            .expect("should match");
        // Senders [0..0] map onto receivers [1..1].
        assert!(out.s_procs.provably_eq(
            &mut st.cg,
            &ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(0))
        ));
        assert!(out.r_procs.provably_eq(
            &mut st.cg,
            &ProcRange::from_exprs(LinExpr::constant(1), LinExpr::constant(1))
        ));
    }

    #[test]
    fn shift_mismatched_offsets_do_not_match() {
        let (_, norm, mut st) = setup("x := 1;");
        split_root(&mut st, CfgNodeId(10), CfgNodeId(11));
        assert!(SimpleMatcher
            .try_match(
                &mut st,
                &send_site(0, "id + 1"),
                &recv_site(1, "id - 2"),
                &norm,
                &[]
            )
            .is_none());
    }

    #[test]
    fn broadcast_iteration_matches_singleton_target() {
        // Root [0..0] sends to i (1 <= i <= np-1); receivers [1..np-1]
        // expect src 0.
        let (_, norm, mut st) = setup("i := 1;");
        split_root(&mut st, CfgNodeId(10), CfgNodeId(11));
        let root = st.psets[0].id;
        let iv = VarId::from(NsVar::pset(root, "i"));
        st.cg.assert_le(VarId::ZERO, iv, -1); // i >= 1
        st.cg.assert_le(iv, VarId::NP, -1); // i <= np-1
        let out = SimpleMatcher
            .try_match(&mut st, &send_site(0, "i"), &recv_site(1, "0"), &norm, &[])
            .expect("should match");
        assert!(out.s_procs.is_singleton(&mut st.cg));
        assert!(out.r_procs.is_singleton(&mut st.cg));
        // The receiver bound carries the symbolic alias i.
        assert!(out.r_procs.lb.exprs().iter().any(|e| e.var == Some(iv)));
    }

    #[test]
    fn broadcast_requires_receiver_in_range() {
        // i unconstrained: [i..i] ⊆ [1..np-1] is not provable.
        let (_, norm, mut st) = setup("i := 1;");
        split_root(&mut st, CfgNodeId(10), CfgNodeId(11));
        assert!(SimpleMatcher
            .try_match(&mut st, &send_site(0, "i"), &recv_site(1, "0"), &norm, &[])
            .is_none());
    }

    #[test]
    fn uniform_src_matches_specific_sender() {
        // Receivers [1..np-1] with src 0; senders [0..0] with dest id+1:
        // sender 0 → receiver 1.
        let (_, norm, mut st) = setup("x := 1;");
        split_root(&mut st, CfgNodeId(10), CfgNodeId(11));
        let out = SimpleMatcher
            .try_match(
                &mut st,
                &send_site(0, "id + 1"),
                &recv_site(1, "0"),
                &norm,
                &[],
            )
            .expect("should match");
        assert!(out.r_procs.provably_eq(
            &mut st.cg,
            &ProcRange::from_exprs(LinExpr::constant(1), LinExpr::constant(1))
        ));
        let _ = out;
    }

    #[test]
    fn fig2_constant_pair_matches() {
        let (_, norm, mut st) = setup("x := 1;");
        // [0..0] and [1..1].
        let zero = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(0));
        let one = ProcRange::from_exprs(LinExpr::constant(1), LinExpr::constant(1));
        st.split_pset(
            0,
            vec![(zero, CfgNodeId(10), false), (one, CfgNodeId(11), false)],
        );
        let out = SimpleMatcher
            .try_match(&mut st, &send_site(0, "1"), &recv_site(1, "0"), &norm, &[])
            .expect("fig2 send must match");
        assert!(out.s_procs.is_singleton(&mut st.cg));
        assert!(out.r_procs.is_singleton(&mut st.cg));
    }

    #[test]
    fn cartesian_matches_square_transpose_self_exchange() {
        let src = "assume np = nrows * ncols; assume ncols = nrows; x := 1;";
        let (_, norm, mut st) = setup(src);
        let assumes: Vec<Expr> = {
            use mpl_lang::ast::StmtKind;
            parse_program(src)
                .unwrap()
                .stmts
                .iter()
                .filter_map(|s| match &s.kind {
                    StmtKind::Assume(e) => Some(e.clone()),
                    _ => None,
                })
                .collect()
        };
        let expr = "(id % nrows) * nrows + id / nrows";
        let send = SendSite {
            pset_idx: 0,
            node: CfgNodeId(90),
            value: Expr::Int(1),
            dest: parse_dest(expr),
            pending: true,
        };
        let recv = recv_site(0, expr);
        let out = CartesianMatcher
            .try_match(&mut st, &send, &recv, &norm, &assumes)
            .expect("transpose must match");
        assert!(out.s_procs.provably_eq(&mut st.cg, &ProcRange::all_procs()));
        assert!(out.r_procs.provably_eq(&mut st.cg, &ProcRange::all_procs()));
    }

    #[test]
    fn cartesian_rejects_wrapping_ring() {
        let (_, norm, mut st) = setup("x := 1;");
        let send = SendSite {
            pset_idx: 0,
            node: CfgNodeId(90),
            value: Expr::Int(1),
            dest: parse_dest("(id + 1) % np"),
            pending: true,
        };
        let recv = recv_site(0, "(id + np - 1) % np");
        assert!(CartesianMatcher
            .try_match(&mut st, &send, &recv, &norm, &[])
            .is_none());
    }

    fn parse_dest(src: &str) -> Expr {
        use mpl_lang::ast::StmtKind;
        let p = parse_program(&format!("send 0 -> {src};")).unwrap();
        let StmtKind::Send { dest, .. } = &p.stmts[0].kind else {
            panic!("`send 0 -> {src}` did not parse to a Send statement")
        };
        dest.clone()
    }

    #[test]
    fn simple_matcher_rejects_self_pset() {
        let (_, norm, mut st) = setup("x := 1;");
        assert!(SimpleMatcher
            .try_match(
                &mut st,
                &send_site(0, "id + 1"),
                &recv_site(0, "id - 1"),
                &norm,
                &[]
            )
            .is_none());
    }
}
