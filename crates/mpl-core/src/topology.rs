//! The statically inferred communication topology.

use std::collections::BTreeSet;
use std::fmt;

use mpl_cfg::CfgNodeId;

use crate::engine::{AnalysisResult, MatchEvent};

/// The communication topology extracted by the analysis: which send
/// statements feed which receive statements, annotated with the symbolic
/// process subsets involved.
#[derive(Debug, Clone)]
pub struct StaticTopology {
    site_pairs: BTreeSet<(CfgNodeId, CfgNodeId)>,
    events: Vec<MatchEvent>,
    exact: bool,
}

impl StaticTopology {
    /// Extracts the topology from an analysis result.
    #[must_use]
    pub fn from_result(result: &AnalysisResult) -> StaticTopology {
        StaticTopology {
            site_pairs: result.matches.clone(),
            events: result.events.clone(),
            exact: result.is_exact(),
        }
    }

    /// The (send statement, recv statement) pairs — directly comparable
    /// with `mpl_sim::RuntimeTopology::site_pairs`.
    #[must_use]
    pub fn site_pairs(&self) -> &BTreeSet<(CfgNodeId, CfgNodeId)> {
        &self.site_pairs
    }

    /// The matches with their symbolic process subsets.
    #[must_use]
    pub fn events(&self) -> &[MatchEvent] {
        &self.events
    }

    /// True if the analysis matched every communication exactly — only
    /// then is this a sound and complete statement-level topology.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// True if the topology provably covers `pairs` (every runtime pair
    /// is one of the static site pairs). With [`StaticTopology::is_exact`]
    /// this is the soundness check used by the test oracle.
    #[must_use]
    pub fn covers(&self, pairs: &BTreeSet<(CfgNodeId, CfgNodeId)>) -> bool {
        pairs.is_subset(&self.site_pairs)
    }
}

impl fmt::Display for StaticTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "static topology ({}):",
            if self.exact { "exact" } else { "approximate" }
        )?;
        for e in &self.events {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{analyze, AnalysisConfig};
    use mpl_lang::corpus;

    #[test]
    fn topology_extraction_round_trip() {
        let prog = corpus::fig2_exchange();
        let result = analyze(&prog.program, &AnalysisConfig::default());
        let topo = StaticTopology::from_result(&result);
        assert!(topo.is_exact());
        assert_eq!(topo.site_pairs().len(), 2);
        assert_eq!(topo.events().len(), 2);
        assert!(topo.covers(topo.site_pairs()));
        assert!(topo.to_string().contains("exact"));
    }
}
