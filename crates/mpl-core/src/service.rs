//! The analysis service behind `mpl serve`: a shareable, thread-safe
//! façade that turns newline-framed JSON request lines into response
//! lines, backed by the [`crate::request`] API, the
//! [`crate::cache::ResultCache`], an optional [`CacheJournal`] for
//! crash-safe persistence, an [`AdmissionGate`] for backpressure, and
//! optional per-client [`ClientQuotas`].
//!
//! The service is transport-agnostic on purpose: it knows nothing about
//! sockets. The CLI's `mpl serve` command owns the listener and the
//! per-connection threads and calls [`AnalysisService::handle_line_as`]
//! for every line it reads; tests and the load-test harness call the
//! same method (or [`AnalysisService::handle_batch`]) directly. One code
//! path, every caller.
//!
//! ## Protocol (version [`PROTOCOL_VERSION`])
//!
//! Requests are single-line JSON objects selected by `"op"`:
//!
//! | op         | fields                                                        |
//! |------------|---------------------------------------------------------------|
//! | `analyze`  | `program` (required source text), `name`, `client`, `client_id`, `min_np`, `max_steps`, `max_psets`, `timeout_ms`, `retries`, `par`, `order` (`"fifo"`/`"priority"`) |
//! | `stats`    | —                                                             |
//! | `ping`     | —                                                             |
//! | `shutdown` | `mode` (`"abort"` default, or `"drain"`)                      |
//!
//! Every response line is a JSON object stamped with `"v"`. An
//! `analyze` request answers with the *exact* program record `mpl
//! analyze --json` would print (that byte-identity is the contract that
//! makes the cache transparent); failures answer with `type:"error"`
//! and a kebab-case `code`; overload answers with `type:"rejected"` —
//! `code:"queue-full"` from the shared admission gate, or
//! `code:"quota-exceeded"` (carrying `retry_after_ms`) from the
//! per-client token bucket. Explicit backpressure, never an unbounded
//! queue and never a hang.
//!
//! ## Caching and single-flight
//!
//! Responses are cached by [`AnalysisRequest::fingerprint`] with the
//! full [`AnalysisRequest::cache_check`] string stored alongside for
//! collision safety. The cache mutex guards only lookup/insert — an
//! analysis itself never runs under the lock, so concurrent distinct
//! requests execute in parallel. Concurrent *identical* requests are
//! **single-flighted**: the first becomes the leader and computes; the
//! rest block on its flight slot and share the rendered bytes, counted
//! as `coalesced`. For `K` identical concurrent requests against a cold
//! cache, exactly one computes and `hits + coalesced = K - 1` — however
//! the threads interleave.
//!
//! ## Persistence
//!
//! With [`ServiceConfig::cache_dir`] set, every insert is appended to a
//! checksummed NDJSON journal (write-ahead, flushed per record) and the
//! journal is compacted to the live cache contents every
//! [`ServiceConfig::compact_every`] appends. [`AnalysisService::open`]
//! replays the journal — tolerating a torn tail, see [`crate::persist`]
//! — so a restarted daemon serves byte-identical responses as warm
//! cache hits. Journal I/O errors degrade the service to in-memory
//! caching (counted in `journal_errors`) rather than failing requests.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpl_runtime::{AdmissionGate, CancelToken, ClientQuotas, QuotaPolicy};

use crate::cache::{CacheStats, ResultCache};
use crate::config::AnalysisConfig;
use crate::json::{json_escape, parse, JsonValue};
use crate::persist::{CacheJournal, JournalStats};
use crate::request::{AnalysisRequest, RequestBatch, PROTOCOL_VERSION};

/// Knobs for [`AnalysisService::open`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Server-side default engine configuration; per-request fields
    /// override individual knobs.
    pub defaults: AnalysisConfig,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum concurrently admitted `analyze` requests; the
    /// `max_in_flight + 1`-th concurrent request is rejected, not
    /// queued.
    pub max_in_flight: usize,
    /// Default per-request deadline when the request names none.
    pub default_timeout: Option<Duration>,
    /// Default degraded-retry count when the request names none.
    pub default_retries: u32,
    /// Directory for the persistent cache journal; `None` keeps the
    /// cache purely in-memory.
    pub cache_dir: Option<PathBuf>,
    /// Journal appends between compactions.
    pub compact_every: u64,
    /// Per-client token-bucket policy; `None` disables quotas.
    pub quota: Option<QuotaPolicy>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            defaults: AnalysisConfig::default(),
            cache_capacity: 128,
            max_in_flight: 8,
            default_timeout: None,
            default_retries: 0,
            cache_dir: None,
            compact_every: 1024,
            quota: None,
        }
    }
}

/// A response to one request line, tagged with what the transport
/// should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Send this line and keep serving.
    Line(String),
    /// Send this line, then stop accepting requests (the service's
    /// shutdown token is already cancelled; consult
    /// [`AnalysisService::shutdown_mode`] for drain-vs-abort).
    Shutdown(String),
}

impl Reply {
    /// The response line, whichever variant carries it.
    #[must_use]
    pub fn line(&self) -> &str {
        match self {
            Reply::Line(line) | Reply::Shutdown(line) => line,
        }
    }
}

/// How a `shutdown` request asked the daemon to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop immediately; in-flight connections are abandoned (they see
    /// a closed connection, never a hang).
    Abort,
    /// Stop accepting, finish in-flight requests under the transport's
    /// drain deadline, then exit.
    Drain,
}

impl ShutdownMode {
    /// The wire tag for this mode.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            ShutdownMode::Abort => "abort",
            ShutdownMode::Drain => "drain",
        }
    }
}

/// The cache plus its optional journal — one lock, so the write-ahead
/// append and the in-memory insert are atomic with respect to other
/// requests.
#[derive(Debug)]
struct CacheState {
    cache: ResultCache,
    journal: Option<CacheJournal>,
    compact_every: u64,
    appends_since_compact: u64,
    journal_errors: u64,
}

impl CacheState {
    /// Journal-backed insert: write-ahead append (and periodic
    /// compaction), then the in-memory insert. Journal failures degrade
    /// to memory-only caching; they never fail the request.
    fn insert(&mut self, key: u64, check: String, body: String) {
        if let Some(journal) = &mut self.journal {
            if journal.append(key, &check, &body).is_err() {
                self.journal_errors += 1;
            } else {
                self.appends_since_compact += 1;
            }
        }
        self.cache.insert(key, check, body);
        if self.appends_since_compact >= self.compact_every {
            self.compact();
        }
    }

    fn compact(&mut self) {
        if let Some(journal) = &mut self.journal {
            if journal.compact(self.cache.iter_lru()).is_err() {
                self.journal_errors += 1;
            }
            self.appends_since_compact = 0;
        }
    }

    fn journal_stats(&self) -> Option<JournalStats> {
        self.journal.as_ref().map(CacheJournal::stats)
    }
}

/// One in-flight computation other identical requests can latch onto.
/// `state` is `None` while the leader runs, then `Some(Some(body))` on
/// success or `Some(None)` if the leader vanished without a result (the
/// waiter recomputes).
#[derive(Debug)]
struct FlightSlot {
    key: u64,
    check: String,
    state: Mutex<Option<Option<String>>>,
    cv: Condvar,
}

/// Publishes the flight outcome on every exit path (including unwind):
/// removes the slot from the table and wakes all waiters with whatever
/// body was recorded.
struct FlightGuard<'a> {
    service: &'a AnalysisService,
    slot: Arc<FlightSlot>,
    body: Option<String>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut table = self.service.flights.lock().expect("flight table lock");
        table.retain(|s| !Arc::ptr_eq(s, &self.slot));
        drop(table);
        *self.slot.state.lock().expect("flight slot lock") = Some(self.body.take());
        self.slot.cv.notify_all();
    }
}

/// The shared daemon state. `&self` methods only — wrap it in an `Arc`
/// and hand clones to every connection thread.
#[derive(Debug)]
pub struct AnalysisService {
    defaults: AnalysisConfig,
    default_timeout: Option<Duration>,
    default_retries: u32,
    cache: Mutex<CacheState>,
    /// Single-flight table: at most one slot per (fingerprint, check)
    /// pair. A `Vec` because the live set is bounded by the admission
    /// gate capacity — a handful of entries, where a linear scan beats
    /// hashing the check string twice.
    flights: Mutex<Vec<Arc<FlightSlot>>>,
    coalesced: AtomicU64,
    gate: AdmissionGate,
    quotas: Option<ClientQuotas>,
    /// Quota clock origin: buckets are timed in milliseconds since the
    /// service was built, keeping the policy independent of wall time.
    started: Instant,
    /// `analyze` requests that failed validation (admitted, but never
    /// became an engine run) — kept so stats distinguish "analyzed"
    /// from "bounced off the parser".
    invalid: AtomicU64,
    /// Request lines refused for exceeding the transport's line cap
    /// (counted here so they appear in `stats`, rendered via
    /// [`AnalysisService::oversize_reply`]).
    oversize: AtomicU64,
    /// Entries recovered from the journal at startup.
    replayed: u64,
    shutdown: CancelToken,
    /// 0 = not shut down, else `ShutdownMode as u8 + 1`.
    shutdown_mode: AtomicU8,
}

impl AnalysisService {
    /// Builds a service, opening (and replaying) the persistent cache
    /// journal when [`ServiceConfig::cache_dir`] is set.
    ///
    /// # Errors
    ///
    /// A description of the I/O failure if the journal directory or
    /// file cannot be opened. Never fails when `cache_dir` is `None`.
    pub fn open(config: ServiceConfig) -> Result<AnalysisService, String> {
        let (journal, replayed_entries) = match &config.cache_dir {
            Some(dir) => {
                let (journal, replay) = CacheJournal::open(dir).map_err(|e| {
                    format!("cannot open cache journal in `{}`: {e}", dir.display())
                })?;
                (Some(journal), replay.entries)
            }
            None => (None, Vec::new()),
        };
        let mut cache = ResultCache::new(config.cache_capacity);
        // Journal order is oldest-first, so replay reproduces recency
        // and capacity keeps the newest entries.
        let replayed = replayed_entries.len() as u64;
        for entry in replayed_entries {
            cache.insert(entry.key, entry.check, entry.body);
        }
        Ok(AnalysisService {
            defaults: config.defaults,
            default_timeout: config.default_timeout,
            default_retries: config.default_retries,
            cache: Mutex::new(CacheState {
                cache,
                journal,
                compact_every: config.compact_every.max(1),
                appends_since_compact: 0,
                journal_errors: 0,
            }),
            flights: Mutex::new(Vec::new()),
            coalesced: AtomicU64::new(0),
            gate: AdmissionGate::new(config.max_in_flight),
            quotas: config.quota.map(ClientQuotas::new),
            started: Instant::now(),
            invalid: AtomicU64::new(0),
            oversize: AtomicU64::new(0),
            replayed,
            shutdown: CancelToken::new(),
            shutdown_mode: AtomicU8::new(0),
        })
    }

    /// Builds a service from its configuration.
    ///
    /// # Panics
    ///
    /// If [`ServiceConfig::cache_dir`] is set and the journal cannot be
    /// opened — use [`AnalysisService::open`] to handle that error.
    #[must_use]
    pub fn new(config: ServiceConfig) -> AnalysisService {
        AnalysisService::open(config).expect("cache journal opens")
    }

    /// The admission gate. Exposed so tests can hold permits externally
    /// and exercise the rejection path deterministically.
    #[must_use]
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// A clone of the shutdown token; fires when a `shutdown` request
    /// is served (or when the owner cancels it directly).
    #[must_use]
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// How the served `shutdown` request asked the daemon to stop, once
    /// the shutdown token has fired.
    #[must_use]
    pub fn shutdown_mode(&self) -> Option<ShutdownMode> {
        match self.shutdown_mode.load(Ordering::Acquire) {
            1 => Some(ShutdownMode::Abort),
            2 => Some(ShutdownMode::Drain),
            _ => None,
        }
    }

    /// Current cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").cache.stats()
    }

    /// Identical concurrent requests served from another request's
    /// computation.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Requests rejected by the per-client quota (0 when quotas are
    /// off).
    #[must_use]
    pub fn quota_rejected(&self) -> u64 {
        self.quotas.as_ref().map_or(0, ClientQuotas::rejected)
    }

    /// Entries recovered from the journal when the service started.
    #[must_use]
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Serves one request line on behalf of `peer` (the transport's
    /// client identity — e.g. a per-connection id — used for quota
    /// accounting unless the request carries an explicit `client_id`).
    /// Never panics and never blocks beyond the analysis itself:
    /// malformed input becomes an `error` line, overload becomes a
    /// `rejected` line.
    #[must_use]
    pub fn handle_line_as(&self, line: &str, peer: &str) -> Reply {
        let value = match parse(line) {
            Ok(value) => value,
            Err(e) => return Reply::Line(error_line("bad-json", &e.to_string())),
        };
        let op = match value.get("op").map(JsonValue::as_str) {
            Some(Some(op)) => op,
            Some(None) => return Reply::Line(error_line("bad-request", "`op` must be a string")),
            None => return Reply::Line(error_line("bad-request", "missing `op` field")),
        };
        match op {
            "ping" => Reply::Line(format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"pong\"}}")),
            "stats" => Reply::Line(self.render_stats("stats")),
            "shutdown" => {
                let mode = match value.get("mode").map(JsonValue::as_str) {
                    None => ShutdownMode::Abort,
                    Some(Some("abort")) => ShutdownMode::Abort,
                    Some(Some("drain")) => ShutdownMode::Drain,
                    _ => {
                        return Reply::Line(error_line(
                            "bad-request",
                            "`mode` must be \"drain\" or \"abort\"",
                        ))
                    }
                };
                self.shutdown_mode.store(
                    match mode {
                        ShutdownMode::Abort => 1,
                        ShutdownMode::Drain => 2,
                    },
                    Ordering::Release,
                );
                self.shutdown.cancel();
                Reply::Shutdown(format!(
                    "{{\"v\":{PROTOCOL_VERSION},\"type\":\"shutdown\",\"mode\":\"{}\"}}",
                    mode.tag()
                ))
            }
            "analyze" => Reply::Line(self.handle_analyze(&value, peer)),
            other => Reply::Line(error_line("bad-request", &format!("unknown op `{other}`"))),
        }
    }

    /// [`Self::handle_line_as`] with an anonymous peer identity.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> Reply {
        self.handle_line_as(line, "anon")
    }

    /// The structured refusal for a request line exceeding the
    /// transport's `limit`. Counted in `stats` as `oversize`.
    #[must_use]
    pub fn oversize_reply(&self, limit: usize) -> String {
        self.oversize.fetch_add(1, Ordering::Relaxed);
        error_line(
            "line-too-long",
            &format!("request line exceeds {limit} bytes"),
        )
    }

    fn handle_analyze(&self, value: &JsonValue, peer: &str) -> String {
        // Quota first: a client over its rate gets a structured
        // retry-after answer before it can occupy a gate slot. A missing
        // *or empty* `client_id` falls back to the transport's peer
        // identity — an empty string must not pool every anonymous
        // client into one shared bucket.
        if let Some(quotas) = &self.quotas {
            let client = match value.get("client_id") {
                None => peer,
                Some(JsonValue::Str(id)) if id.is_empty() => peer,
                Some(JsonValue::Str(id)) => id.as_str(),
                Some(_) => return error_line("bad-request", "`client_id` must be a string"),
            };
            let now_ms = u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX);
            if let Err(retry_after_ms) = quotas.try_acquire(client, now_ms) {
                return format!(
                    "{{\"v\":{PROTOCOL_VERSION},\"type\":\"rejected\",\"code\":\"quota-exceeded\",\
                     \"client\":\"{}\",\"retry_after_ms\":{retry_after_ms}}}",
                    json_escape(client)
                );
            }
        }
        // Backpressure second: a full service answers immediately with a
        // structured rejection instead of queueing unboundedly. The
        // permit is RAII — released on every return path below,
        // including panics inside `execute` (which are themselves
        // caught and rendered).
        let Some(_permit) = self.gate.try_admit() else {
            return format!(
                "{{\"v\":{PROTOCOL_VERSION},\"type\":\"rejected\",\"code\":\"queue-full\",\
                 \"in_flight\":{},\"capacity\":{}}}",
                self.gate.in_flight(),
                self.gate.capacity()
            );
        };
        let request = match self.build_request(value) {
            Ok(request) => request,
            Err(line) => {
                self.invalid.fetch_add(1, Ordering::Relaxed);
                return line;
            }
        };
        let key = request.fingerprint();
        let check = request.cache_check();
        loop {
            if let Some(body) = self
                .cache
                .lock()
                .expect("cache lock")
                .cache
                .lookup(key, &check)
            {
                return body;
            }
            match self.join_flight(key, &check) {
                Flight::Lead(slot) => {
                    let mut guard = FlightGuard {
                        service: self,
                        slot,
                        body: None,
                    };
                    let body = request.execute().json_line(false);
                    self.cache
                        .lock()
                        .expect("cache lock")
                        .insert(key, check, body.clone());
                    guard.body = Some(body.clone());
                    return body;
                }
                Flight::Join(slot) => {
                    let outcome = {
                        let mut state = slot.state.lock().expect("flight slot lock");
                        while state.is_none() {
                            state = slot.cv.wait(state).expect("flight slot wait");
                        }
                        state.clone().expect("loop exits only when published")
                    };
                    match outcome {
                        Some(body) => {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            return body;
                        }
                        // The leader vanished without publishing a body
                        // (it unwound past its own catch). Loop: retry
                        // from the cache and, if still absent, lead.
                        None => continue,
                    }
                }
            }
        }
    }

    /// Finds or creates the flight slot for `(key, check)`.
    fn join_flight(&self, key: u64, check: &str) -> Flight {
        let mut table = self.flights.lock().expect("flight table lock");
        if let Some(slot) = table.iter().find(|s| s.key == key && s.check == check) {
            return Flight::Join(Arc::clone(slot));
        }
        let slot = Arc::new(FlightSlot {
            key,
            check: check.to_owned(),
            state: Mutex::new(None),
            cv: Condvar::new(),
        });
        table.push(Arc::clone(&slot));
        Flight::Lead(slot)
    }

    /// Serves a whole batch of `analyze` request lines with sequential
    /// cache admission and a [`RequestBatch`] fleet of `jobs` workers
    /// for the misses. Responses come back in submission order and —
    /// unlike concurrent [`Self::handle_line`] calls — the cache and
    /// coalescing counters are deterministic for any `jobs` value:
    /// lookups happen in submission order before the fleet runs,
    /// duplicate lines within the batch coalesce onto the first
    /// occurrence's computation (counted in `coalesced`), and inserts
    /// happen in submission order after the fleet. The admission gate
    /// and quotas do not apply (the batch is the caller's own,
    /// already-bounded workload); fleet-level retries use the service
    /// default.
    #[must_use]
    pub fn handle_batch(&self, lines: &[String], jobs: usize) -> Vec<String> {
        enum Slot {
            /// Answered from the cache or failed validation.
            Done(String),
            /// Submitted to the fleet as its `index`-th job.
            Run {
                index: usize,
                key: u64,
                check: String,
            },
            /// A duplicate of an earlier line in this batch; shares the
            /// computation of the slot at `of`.
            Share { of: usize },
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(lines.len());
        // (fingerprint, check) of each in-batch leader → its slot index.
        let mut leaders: std::collections::HashMap<(u64, String), usize> =
            std::collections::HashMap::new();
        let mut batch = RequestBatch::new()
            .workers(jobs)
            .retries(self.default_retries);
        {
            let mut state = self.cache.lock().expect("cache lock");
            for line in lines {
                let request = match parse(line)
                    .map_err(|e| error_line("bad-json", &e.to_string()))
                    .and_then(|value| match value.get("op").map(JsonValue::as_str) {
                        Some(Some("analyze")) | None => self.build_request(&value),
                        _ => Err(error_line(
                            "bad-request",
                            "batch lines must be `analyze` ops",
                        )),
                    }) {
                    Ok(request) => request,
                    Err(err) => {
                        self.invalid.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Done(err));
                        continue;
                    }
                };
                let key = request.fingerprint();
                let check = request.cache_check();
                match state.cache.lookup(key, &check) {
                    Some(body) => slots.push(Slot::Done(body)),
                    None => {
                        if let Some(&of) = leaders.get(&(key, check.clone())) {
                            self.coalesced.fetch_add(1, Ordering::Relaxed);
                            slots.push(Slot::Share { of });
                            continue;
                        }
                        leaders.insert((key, check.clone()), slots.len());
                        slots.push(Slot::Run {
                            index: batch.len(),
                            key,
                            check,
                        });
                        batch.push(request);
                    }
                }
            }
        }
        let done = batch.run();
        let mut state = self.cache.lock().expect("cache lock");
        let mut resolved: Vec<String> = Vec::with_capacity(slots.len());
        for slot in slots {
            let body = match slot {
                Slot::Done(line) => line,
                Slot::Run { index, key, check } => {
                    let body = done.responses[index].json_line(false);
                    state.insert(key, check, body.clone());
                    body
                }
                // Leaders always precede their sharers, so the body is
                // already resolved.
                Slot::Share { of } => resolved[of].clone(),
            };
            resolved.push(body);
        }
        resolved
    }

    /// Builds the request from an `analyze` object, mapping every
    /// failure to a rendered `error` line with the matching
    /// [`RequestError::code`](crate::request::RequestError::code).
    fn build_request(&self, value: &JsonValue) -> Result<AnalysisRequest, String> {
        let program = match value.get("program").map(JsonValue::as_str) {
            Some(Some(program)) => program,
            Some(None) => return Err(error_line("bad-request", "`program` must be a string")),
            None => return Err(error_line("bad-request", "missing `program` field")),
        };
        let mut builder = AnalysisRequest::builder()
            .source(program)
            .config(self.defaults.clone())
            .honor_fault_directive(true)
            .retries(self.default_retries);
        if let Some(timeout) = self.default_timeout {
            builder = builder.timeout(timeout);
        }
        if let Some(name) = value.get("name") {
            let Some(name) = name.as_str() else {
                return Err(error_line("bad-request", "`name` must be a string"));
            };
            builder = builder.name(name);
        }
        if let Some(tag) = value.get("client") {
            let Some(tag) = tag.as_str() else {
                return Err(error_line("bad-request", "`client` must be a string"));
            };
            builder = builder.client_tag(tag);
        }
        if let Some(min_np) = int_field(value, "min_np")? {
            builder = builder.min_np(min_np);
        }
        if let Some(max_steps) = uint_field(value, "max_steps")? {
            builder = builder.max_steps(max_steps);
        }
        if let Some(max_psets) = uint_field(value, "max_psets")? {
            builder = builder.max_psets(max_psets as usize);
        }
        if let Some(timeout_ms) = uint_field(value, "timeout_ms")? {
            // 0 switches the deadline off, mirroring `--timeout-ms 0`.
            if timeout_ms == 0 {
                builder = builder.no_timeout();
            } else {
                builder = builder.timeout(Duration::from_millis(timeout_ms));
            }
        }
        if let Some(retries) = uint_field(value, "retries")? {
            let Ok(retries) = u32::try_from(retries) else {
                return Err(error_line("bad-request", "`retries` out of range"));
            };
            builder = builder.retries(retries);
        }
        if let Some(par) = uint_field(value, "par")? {
            let Ok(par) = usize::try_from(par) else {
                return Err(error_line("bad-request", "`par` out of range"));
            };
            builder = builder.par(par);
        }
        if let Some(order) = value.get("order") {
            builder = match order.as_str() {
                Some("fifo") => builder.order(crate::config::ScheduleOrder::Fifo),
                Some("priority") => builder.order(crate::config::ScheduleOrder::Priority),
                _ => {
                    return Err(error_line(
                        "bad-request",
                        "`order` must be \"fifo\" or \"priority\"",
                    ))
                }
            };
        }
        builder
            .build()
            .map_err(|e| error_line(e.code(), &e.to_string()))
    }

    /// Renders the stats record (`kind` is `stats` or
    /// `shutdown-summary` — same fields, different type tag).
    fn render_stats(&self, kind: &str) -> String {
        let (cache, journal, journal_errors) = {
            let state = self.cache.lock().expect("cache lock");
            (
                state.cache.stats(),
                state.journal_stats(),
                state.journal_errors,
            )
        };
        let journal = journal.unwrap_or_default();
        format!(
            "{{\"v\":{PROTOCOL_VERSION},\"type\":\"{kind}\",\"hits\":{},\"misses\":{},\
             \"evictions\":{},\"collisions\":{},\"entries\":{},\"cache_capacity\":{},\
             \"in_flight\":{},\"queue_capacity\":{},\"admitted\":{},\"rejected\":{},\
             \"invalid\":{},\"coalesced\":{},\"quota_rejected\":{},\"quota_clients\":{},\
             \"oversize\":{},\"replayed\":{},\"journal_appends\":{},\"compactions\":{},\
             \"journal_errors\":{journal_errors}}}",
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.collisions,
            cache.entries,
            cache.capacity,
            self.gate.in_flight(),
            self.gate.capacity(),
            self.gate.admitted(),
            self.gate.rejected(),
            self.invalid.load(Ordering::Relaxed),
            self.coalesced.load(Ordering::Relaxed),
            self.quota_rejected(),
            self.quotas.as_ref().map_or(0, ClientQuotas::clients),
            self.oversize.load(Ordering::Relaxed),
            self.replayed,
            journal.appends,
            journal.compactions,
        )
    }

    /// The final record a server prints when it exits: the same
    /// counters as `stats`, tagged `shutdown-summary`.
    #[must_use]
    pub fn shutdown_summary_line(&self) -> String {
        self.render_stats("shutdown-summary")
    }
}

/// A leader-or-follower decision for one cache miss.
enum Flight {
    Lead(Arc<FlightSlot>),
    Join(Arc<FlightSlot>),
}

/// Renders a protocol `error` record.
#[must_use]
pub fn error_line(code: &str, message: &str) -> String {
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"type\":\"error\",\"code\":\"{}\",\"message\":\"{}\"}}",
        json_escape(code),
        json_escape(message)
    )
}

/// Reads an optional integer field, rejecting non-integer values.
fn int_field(value: &JsonValue, key: &str) -> Result<Option<i64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => match v.as_i64() {
            Some(n) => Ok(Some(n)),
            None => Err(error_line(
                "bad-request",
                &format!("`{key}` must be an integer"),
            )),
        },
    }
}

/// Reads an optional non-negative integer field.
fn uint_field(value: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match int_field(value, key)? {
        None => Ok(None),
        Some(n) if n >= 0 => Ok(Some(n as u64)),
        Some(_) => Err(error_line(
            "bad-request",
            &format!("`{key}` must be non-negative"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::corpus;

    fn service() -> AnalysisService {
        AnalysisService::new(ServiceConfig::default())
    }

    fn analyze_line(source: &str) -> String {
        format!(
            "{{\"op\":\"analyze\",\"client\":\"simple\",\"program\":\"{}\"}}",
            json_escape(source)
        )
    }

    #[test]
    fn ping_and_unknown_ops() {
        let svc = service();
        assert_eq!(
            svc.handle_line("{\"op\":\"ping\"}"),
            Reply::Line("{\"v\":1,\"type\":\"pong\"}".to_owned())
        );
        let reply = svc.handle_line("{\"op\":\"frobnicate\"}");
        assert!(
            reply.line().contains("\"code\":\"bad-request\""),
            "{reply:?}"
        );
        let reply = svc.handle_line("not json at all");
        assert!(reply.line().contains("\"code\":\"bad-json\""), "{reply:?}");
        let reply = svc.handle_line("{\"program\":\"x := 1;\"}");
        assert!(reply.line().contains("missing `op`"), "{reply:?}");
    }

    #[test]
    fn analyze_hits_cache_on_repeat_and_is_byte_identical() {
        let svc = service();
        let line = analyze_line(&corpus::fig2_exchange().source);
        let cold = svc.handle_line(&line);
        let warm = svc.handle_line(&line);
        assert_eq!(cold, warm, "cached response must be byte-identical");
        assert!(cold.line().starts_with("{\"v\":1,\"type\":\"program\""));
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        // And it matches the request API's own rendering — the daemon
        // adds nothing to the wire format.
        let direct = AnalysisRequest::builder()
            .source(corpus::fig2_exchange().source)
            .client_tag("simple")
            .build()
            .unwrap()
            .execute()
            .json_line(false);
        assert_eq!(cold.line(), direct);
    }

    #[test]
    fn analyze_validation_errors_are_structured() {
        let svc = service();
        let reply = svc.handle_line("{\"op\":\"analyze\"}");
        assert!(reply.line().contains("missing `program`"), "{reply:?}");
        let reply = svc.handle_line(&analyze_line("x := ;"));
        assert!(
            reply.line().contains("\"code\":\"parse-error\""),
            "{reply:?}"
        );
        let reply =
            svc.handle_line("{\"op\":\"analyze\",\"program\":\"x := 1;\",\"client\":\"quantum\"}");
        assert!(
            reply.line().contains("\"code\":\"unknown-client\""),
            "{reply:?}"
        );
        let reply = svc.handle_line("{\"op\":\"analyze\",\"program\":\"x := 1;\",\"max_steps\":0}");
        assert!(
            reply.line().contains("\"code\":\"bad-config\""),
            "{reply:?}"
        );
        let reply =
            svc.handle_line("{\"op\":\"analyze\",\"program\":\"x := 1;\",\"min_np\":\"four\"}");
        assert!(reply.line().contains("must be an integer"), "{reply:?}");
        // Validation failures count as invalid, not as cache traffic.
        assert_eq!(svc.cache_stats().misses, 0);
        assert!(svc
            .handle_line("{\"op\":\"stats\"}")
            .line()
            .contains("\"invalid\":5"));
    }

    #[test]
    fn full_gate_rejects_instead_of_queueing() {
        let svc = AnalysisService::new(ServiceConfig {
            max_in_flight: 1,
            ..ServiceConfig::default()
        });
        let held = svc.gate().try_admit().expect("gate starts empty");
        let reply = svc.handle_line(&analyze_line("x := 1;"));
        assert!(
            reply
                .line()
                .starts_with("{\"v\":1,\"type\":\"rejected\",\"code\":\"queue-full\""),
            "{reply:?}"
        );
        assert!(reply.line().contains("\"capacity\":1"), "{reply:?}");
        drop(held);
        let reply = svc.handle_line(&analyze_line("x := 1;"));
        assert!(reply.line().contains("\"type\":\"program\""), "{reply:?}");
        assert_eq!(svc.gate().rejected(), 1);
        assert_eq!(svc.gate().in_flight(), 0, "permit released after serving");
    }

    #[test]
    fn shutdown_cancels_token_and_tags_reply() {
        let svc = service();
        let token = svc.shutdown_token();
        assert!(!token.is_cancelled());
        assert_eq!(svc.shutdown_mode(), None);
        let reply = svc.handle_line("{\"op\":\"shutdown\"}");
        assert_eq!(
            reply,
            Reply::Shutdown("{\"v\":1,\"type\":\"shutdown\",\"mode\":\"abort\"}".to_owned())
        );
        assert!(token.is_cancelled());
        assert_eq!(svc.shutdown_mode(), Some(ShutdownMode::Abort));
        assert!(svc
            .shutdown_summary_line()
            .contains("\"type\":\"shutdown-summary\""));
    }

    #[test]
    fn shutdown_drain_mode_is_recorded() {
        let svc = service();
        let reply = svc.handle_line("{\"op\":\"shutdown\",\"mode\":\"drain\"}");
        assert_eq!(
            reply,
            Reply::Shutdown("{\"v\":1,\"type\":\"shutdown\",\"mode\":\"drain\"}".to_owned())
        );
        assert_eq!(svc.shutdown_mode(), Some(ShutdownMode::Drain));
        // A bad mode is an error, not a shutdown.
        let svc = service();
        let reply = svc.handle_line("{\"op\":\"shutdown\",\"mode\":\"meltdown\"}");
        assert!(
            matches!(&reply, Reply::Line(l) if l.contains("`mode` must be")),
            "{reply:?}"
        );
        assert!(!svc.shutdown_token().is_cancelled());
    }

    #[test]
    fn handle_batch_counters_are_deterministic_across_jobs() {
        let programs: Vec<String> = corpus::all()
            .into_iter()
            .take(6)
            .map(|p| analyze_line(&p.source))
            .collect();
        // Two rounds of the same batch: round one all misses, round two
        // all hits — independent of the worker count.
        for jobs in [1usize, 4, 8] {
            let svc = service();
            let cold = svc.handle_batch(&programs, jobs);
            let stats = svc.cache_stats();
            assert_eq!((stats.hits, stats.misses), (0, 6), "jobs={jobs}");
            let warm = svc.handle_batch(&programs, jobs);
            let stats = svc.cache_stats();
            assert_eq!((stats.hits, stats.misses), (6, 6), "jobs={jobs}");
            assert_eq!(cold, warm, "jobs={jobs}");
        }
    }

    #[test]
    fn handle_batch_coalesces_duplicates_deterministically() {
        let source = corpus::fig2_exchange().source;
        let lines = vec![
            analyze_line(&source),
            analyze_line(&source),
            analyze_line(&source),
        ];
        for jobs in [1usize, 4] {
            let svc = service();
            let bodies = svc.handle_batch(&lines, jobs);
            assert_eq!(bodies[0], bodies[1], "jobs={jobs}");
            assert_eq!(bodies[0], bodies[2], "jobs={jobs}");
            assert_eq!(svc.coalesced(), 2, "jobs={jobs}");
            let stats = svc.cache_stats();
            // All three lines looked up (miss), one computed.
            assert_eq!((stats.hits, stats.misses, stats.entries), (0, 3, 1));
        }
    }

    #[test]
    fn handle_batch_evictions_are_deterministic() {
        let programs: Vec<String> = corpus::all()
            .into_iter()
            .take(6)
            .map(|p| analyze_line(&p.source))
            .collect();
        for jobs in [1usize, 4] {
            let svc = AnalysisService::new(ServiceConfig {
                cache_capacity: 2,
                ..ServiceConfig::default()
            });
            let _ = svc.handle_batch(&programs, jobs);
            let stats = svc.cache_stats();
            assert_eq!(stats.entries, 2, "jobs={jobs}");
            assert_eq!(stats.evictions, 4, "jobs={jobs}");
        }
    }

    #[test]
    fn concurrent_identical_requests_single_flight() {
        use std::sync::atomic::AtomicUsize;
        const THREADS: usize = 8;
        let svc = std::sync::Arc::new(AnalysisService::new(ServiceConfig {
            max_in_flight: THREADS,
            ..ServiceConfig::default()
        }));
        let line = std::sync::Arc::new(analyze_line(&corpus::fig2_exchange().source));
        let gate = std::sync::Arc::new(std::sync::Barrier::new(THREADS));
        let served = std::sync::Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..THREADS)
            .map(|_| {
                let svc = std::sync::Arc::clone(&svc);
                let line = std::sync::Arc::clone(&line);
                let gate = std::sync::Arc::clone(&gate);
                let served = std::sync::Arc::clone(&served);
                std::thread::spawn(move || {
                    gate.wait();
                    let reply = svc.handle_line(&line).line().to_owned();
                    assert!(reply.contains("\"type\":\"program\""), "{reply}");
                    served.fetch_add(1, Ordering::Relaxed);
                    reply
                })
            })
            .collect();
        let bodies: Vec<String> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert!(bodies.windows(2).all(|w| w[0] == w[1]), "identical bytes");
        assert_eq!(served.load(Ordering::Relaxed), THREADS);
        let stats = svc.cache_stats();
        // Exactly one computation: every other request was either a
        // cache hit (arrived after the insert) or coalesced onto the
        // leader's flight — whatever the interleaving was.
        assert_eq!(stats.entries, 1);
        assert_eq!(
            stats.hits + svc.coalesced(),
            (THREADS - 1) as u64,
            "hits={} coalesced={}",
            stats.hits,
            svc.coalesced()
        );
        assert!(svc
            .handle_line("{\"op\":\"stats\"}")
            .line()
            .contains("\"coalesced\":"));
    }

    #[test]
    fn quota_rejections_are_structured_with_retry_hint() {
        let svc = AnalysisService::new(ServiceConfig {
            quota: Some(QuotaPolicy {
                rate_per_sec: 1,
                burst: 2,
            }),
            ..ServiceConfig::default()
        });
        let line = analyze_line(&corpus::fig2_exchange().source);
        // The burst admits two requests; the third bounces with a
        // retry hint (the analyses above finish in well under the one
        // second a refill takes).
        assert!(svc
            .handle_line(&line)
            .line()
            .contains("\"type\":\"program\""));
        assert!(svc
            .handle_line(&line)
            .line()
            .contains("\"type\":\"program\""));
        let reply = svc.handle_line(&line);
        assert!(
            reply
                .line()
                .starts_with("{\"v\":1,\"type\":\"rejected\",\"code\":\"quota-exceeded\""),
            "{reply:?}"
        );
        assert!(reply.line().contains("\"retry_after_ms\":"), "{reply:?}");
        assert!(reply.line().contains("\"client\":\"anon\""), "{reply:?}");
        assert_eq!(svc.quota_rejected(), 1);
        // A different client id has its own bucket.
        let tagged = format!(
            "{{\"op\":\"analyze\",\"client_id\":\"other\",\"client\":\"simple\",\"program\":\"{}\"}}",
            json_escape(&corpus::fig2_exchange().source)
        );
        assert!(
            svc.handle_line(&tagged)
                .line()
                .contains("\"type\":\"program\""),
            "fresh client must not inherit anon's exhaustion"
        );
        assert!(svc
            .handle_line("{\"op\":\"stats\"}")
            .line()
            .contains("\"quota_rejected\":1"));
    }

    #[test]
    fn oversize_reply_is_structured_and_counted() {
        let svc = service();
        let reply = svc.oversize_reply(4096);
        assert!(
            reply.starts_with("{\"v\":1,\"type\":\"error\",\"code\":\"line-too-long\""),
            "{reply}"
        );
        assert!(reply.contains("4096"), "{reply}");
        assert!(svc
            .handle_line("{\"op\":\"stats\"}")
            .line()
            .contains("\"oversize\":1"));
    }
}
