//! The analysis service behind `mpl serve`: a shareable, thread-safe
//! façade that turns newline-framed JSON request lines into response
//! lines, backed by the [`crate::request`] API, the
//! [`crate::cache::ResultCache`], and an [`AdmissionGate`] for
//! backpressure.
//!
//! The service is transport-agnostic on purpose: it knows nothing about
//! sockets. The CLI's `mpl serve` command owns the listener and the
//! per-connection threads and calls [`AnalysisService::handle_line`] for
//! every line it reads; tests and the load-test harness call the same
//! method (or [`AnalysisService::handle_batch`]) directly. One code
//! path, every caller.
//!
//! ## Protocol (version [`PROTOCOL_VERSION`])
//!
//! Requests are single-line JSON objects selected by `"op"`:
//!
//! | op         | fields                                                        |
//! |------------|---------------------------------------------------------------|
//! | `analyze`  | `program` (required source text), `name`, `client`, `min_np`, `max_steps`, `max_psets`, `timeout_ms`, `retries` |
//! | `stats`    | —                                                             |
//! | `ping`     | —                                                             |
//! | `shutdown` | —                                                             |
//!
//! Every response line is a JSON object stamped with `"v"`. An
//! `analyze` request answers with the *exact* program record `mpl
//! analyze --json` would print (that byte-identity is the contract that
//! makes the cache transparent); failures answer with `type:"error"`
//! and a kebab-case `code`; a request arriving while
//! [`ServiceConfig::max_in_flight`] analyses are already running
//! answers with `type:"rejected"` — explicit backpressure, never an
//! unbounded queue and never a hang.
//!
//! ## Caching
//!
//! Responses are cached by [`AnalysisRequest::fingerprint`] with the
//! full [`AnalysisRequest::cache_check`] string stored alongside for
//! collision safety. The cache mutex guards only lookup/insert — an
//! analysis itself never runs under the lock, so concurrent distinct
//! requests execute in parallel. Two *identical* concurrent requests
//! may both miss and compute (last insert wins, refreshing the same
//! entry); [`AnalysisService::handle_batch`] is the sequential-admission
//! path whose counters are deterministic for any worker count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use mpl_runtime::{AdmissionGate, CancelToken};

use crate::cache::{CacheStats, ResultCache};
use crate::config::AnalysisConfig;
use crate::json::{json_escape, parse, JsonValue};
use crate::request::{AnalysisRequest, RequestBatch, PROTOCOL_VERSION};

/// Knobs for [`AnalysisService::new`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Server-side default engine configuration; per-request fields
    /// override individual knobs.
    pub defaults: AnalysisConfig,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum concurrently admitted `analyze` requests; the
    /// `max_in_flight + 1`-th concurrent request is rejected, not
    /// queued.
    pub max_in_flight: usize,
    /// Default per-request deadline when the request names none.
    pub default_timeout: Option<Duration>,
    /// Default degraded-retry count when the request names none.
    pub default_retries: u32,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            defaults: AnalysisConfig::default(),
            cache_capacity: 128,
            max_in_flight: 8,
            default_timeout: None,
            default_retries: 0,
        }
    }
}

/// A response to one request line, tagged with what the transport
/// should do next.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Send this line and keep serving.
    Line(String),
    /// Send this line, then stop accepting requests (the service's
    /// shutdown token is already cancelled).
    Shutdown(String),
}

impl Reply {
    /// The response line, whichever variant carries it.
    #[must_use]
    pub fn line(&self) -> &str {
        match self {
            Reply::Line(line) | Reply::Shutdown(line) => line,
        }
    }
}

/// The shared daemon state. `&self` methods only — wrap it in an `Arc`
/// and hand clones to every connection thread.
#[derive(Debug)]
pub struct AnalysisService {
    defaults: AnalysisConfig,
    default_timeout: Option<Duration>,
    default_retries: u32,
    cache: Mutex<ResultCache>,
    gate: AdmissionGate,
    /// `analyze` requests that failed validation (admitted, but never
    /// became an engine run) — kept so stats distinguish "analyzed"
    /// from "bounced off the parser".
    invalid: AtomicU64,
    shutdown: CancelToken,
}

impl AnalysisService {
    /// Builds a service from its configuration.
    #[must_use]
    pub fn new(config: ServiceConfig) -> AnalysisService {
        AnalysisService {
            defaults: config.defaults,
            default_timeout: config.default_timeout,
            default_retries: config.default_retries,
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            gate: AdmissionGate::new(config.max_in_flight),
            invalid: AtomicU64::new(0),
            shutdown: CancelToken::new(),
        }
    }

    /// The admission gate. Exposed so tests can hold permits externally
    /// and exercise the rejection path deterministically.
    #[must_use]
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// A clone of the shutdown token; fires when a `shutdown` request
    /// is served (or when the owner cancels it directly).
    #[must_use]
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// Current cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Serves one request line. Never panics and never blocks beyond
    /// the analysis itself: malformed input becomes an `error` line,
    /// overload becomes a `rejected` line.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> Reply {
        let value = match parse(line) {
            Ok(value) => value,
            Err(e) => return Reply::Line(error_line("bad-json", &e.to_string())),
        };
        let op = match value.get("op").map(JsonValue::as_str) {
            Some(Some(op)) => op,
            Some(None) => return Reply::Line(error_line("bad-request", "`op` must be a string")),
            None => return Reply::Line(error_line("bad-request", "missing `op` field")),
        };
        match op {
            "ping" => Reply::Line(format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"pong\"}}")),
            "stats" => Reply::Line(self.render_stats("stats")),
            "shutdown" => {
                self.shutdown.cancel();
                Reply::Shutdown(format!(
                    "{{\"v\":{PROTOCOL_VERSION},\"type\":\"shutdown\"}}"
                ))
            }
            "analyze" => Reply::Line(self.handle_analyze(&value)),
            other => Reply::Line(error_line("bad-request", &format!("unknown op `{other}`"))),
        }
    }

    fn handle_analyze(&self, value: &JsonValue) -> String {
        // Backpressure first: a full service answers immediately with a
        // structured rejection instead of queueing unboundedly. The
        // permit is RAII — released on every return path below,
        // including panics inside `execute` (which are themselves
        // caught and rendered).
        let Some(_permit) = self.gate.try_admit() else {
            return format!(
                "{{\"v\":{PROTOCOL_VERSION},\"type\":\"rejected\",\"code\":\"queue-full\",\
                 \"in_flight\":{},\"capacity\":{}}}",
                self.gate.in_flight(),
                self.gate.capacity()
            );
        };
        let request = match self.build_request(value) {
            Ok(request) => request,
            Err(line) => {
                self.invalid.fetch_add(1, Ordering::Relaxed);
                return line;
            }
        };
        let key = request.fingerprint();
        let check = request.cache_check();
        if let Some(body) = self.cache.lock().expect("cache lock").lookup(key, &check) {
            return body;
        }
        let body = request.execute().json_line(false);
        self.cache
            .lock()
            .expect("cache lock")
            .insert(key, check, body.clone());
        body
    }

    /// Serves a whole batch of `analyze` request lines with sequential
    /// cache admission and a [`RequestBatch`] fleet of `jobs` workers
    /// for the misses. Responses come back in submission order and —
    /// unlike concurrent [`Self::handle_line`] calls — the cache
    /// counters are deterministic for any `jobs` value: lookups happen
    /// in submission order before the fleet runs, inserts in submission
    /// order after it. The admission gate does not apply (the batch is
    /// the caller's own, already-bounded workload); fleet-level retries
    /// use the service default.
    #[must_use]
    pub fn handle_batch(&self, lines: &[String], jobs: usize) -> Vec<String> {
        enum Slot {
            /// Answered from the cache or failed validation.
            Done(String),
            /// Submitted to the fleet as its `index`-th job.
            Run {
                index: usize,
                key: u64,
                check: String,
            },
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(lines.len());
        let mut batch = RequestBatch::new()
            .workers(jobs)
            .retries(self.default_retries);
        {
            let mut cache = self.cache.lock().expect("cache lock");
            for line in lines {
                let request = match parse(line)
                    .map_err(|e| error_line("bad-json", &e.to_string()))
                    .and_then(|value| match value.get("op").map(JsonValue::as_str) {
                        Some(Some("analyze")) | None => self.build_request(&value),
                        _ => Err(error_line(
                            "bad-request",
                            "batch lines must be `analyze` ops",
                        )),
                    }) {
                    Ok(request) => request,
                    Err(err) => {
                        self.invalid.fetch_add(1, Ordering::Relaxed);
                        slots.push(Slot::Done(err));
                        continue;
                    }
                };
                let key = request.fingerprint();
                let check = request.cache_check();
                match cache.lookup(key, &check) {
                    Some(body) => slots.push(Slot::Done(body)),
                    None => {
                        slots.push(Slot::Run {
                            index: batch.len(),
                            key,
                            check,
                        });
                        batch.push(request);
                    }
                }
            }
        }
        let done = batch.run();
        let mut cache = self.cache.lock().expect("cache lock");
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Done(line) => line,
                Slot::Run { index, key, check } => {
                    let body = done.responses[index].json_line(false);
                    cache.insert(key, check, body.clone());
                    body
                }
            })
            .collect()
    }

    /// Builds the request from an `analyze` object, mapping every
    /// failure to a rendered `error` line with the matching
    /// [`RequestError::code`](crate::request::RequestError::code).
    fn build_request(&self, value: &JsonValue) -> Result<AnalysisRequest, String> {
        let program = match value.get("program").map(JsonValue::as_str) {
            Some(Some(program)) => program,
            Some(None) => return Err(error_line("bad-request", "`program` must be a string")),
            None => return Err(error_line("bad-request", "missing `program` field")),
        };
        let mut builder = AnalysisRequest::builder()
            .source(program)
            .config(self.defaults.clone())
            .honor_fault_directive(true)
            .retries(self.default_retries);
        if let Some(timeout) = self.default_timeout {
            builder = builder.timeout(timeout);
        }
        if let Some(name) = value.get("name") {
            let Some(name) = name.as_str() else {
                return Err(error_line("bad-request", "`name` must be a string"));
            };
            builder = builder.name(name);
        }
        if let Some(tag) = value.get("client") {
            let Some(tag) = tag.as_str() else {
                return Err(error_line("bad-request", "`client` must be a string"));
            };
            builder = builder.client_tag(tag);
        }
        if let Some(min_np) = int_field(value, "min_np")? {
            builder = builder.min_np(min_np);
        }
        if let Some(max_steps) = uint_field(value, "max_steps")? {
            builder = builder.max_steps(max_steps);
        }
        if let Some(max_psets) = uint_field(value, "max_psets")? {
            builder = builder.max_psets(max_psets as usize);
        }
        if let Some(timeout_ms) = uint_field(value, "timeout_ms")? {
            // 0 switches the deadline off, mirroring `--timeout-ms 0`.
            if timeout_ms == 0 {
                builder = builder.no_timeout();
            } else {
                builder = builder.timeout(Duration::from_millis(timeout_ms));
            }
        }
        if let Some(retries) = uint_field(value, "retries")? {
            let Ok(retries) = u32::try_from(retries) else {
                return Err(error_line("bad-request", "`retries` out of range"));
            };
            builder = builder.retries(retries);
        }
        builder
            .build()
            .map_err(|e| error_line(e.code(), &e.to_string()))
    }

    /// Renders the stats record (`kind` is `stats` or
    /// `shutdown-summary` — same fields, different type tag).
    fn render_stats(&self, kind: &str) -> String {
        let cache = self.cache_stats();
        format!(
            "{{\"v\":{PROTOCOL_VERSION},\"type\":\"{kind}\",\"hits\":{},\"misses\":{},\
             \"evictions\":{},\"collisions\":{},\"entries\":{},\"cache_capacity\":{},\
             \"in_flight\":{},\"queue_capacity\":{},\"admitted\":{},\"rejected\":{},\
             \"invalid\":{}}}",
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.collisions,
            cache.entries,
            cache.capacity,
            self.gate.in_flight(),
            self.gate.capacity(),
            self.gate.admitted(),
            self.gate.rejected(),
            self.invalid.load(Ordering::Relaxed),
        )
    }

    /// The final record a server prints when it exits: the same
    /// counters as `stats`, tagged `shutdown-summary`.
    #[must_use]
    pub fn shutdown_summary_line(&self) -> String {
        self.render_stats("shutdown-summary")
    }
}

/// Renders a protocol `error` record.
fn error_line(code: &str, message: &str) -> String {
    format!(
        "{{\"v\":{PROTOCOL_VERSION},\"type\":\"error\",\"code\":\"{}\",\"message\":\"{}\"}}",
        json_escape(code),
        json_escape(message)
    )
}

/// Reads an optional integer field, rejecting non-integer values.
fn int_field(value: &JsonValue, key: &str) -> Result<Option<i64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => match v.as_i64() {
            Some(n) => Ok(Some(n)),
            None => Err(error_line(
                "bad-request",
                &format!("`{key}` must be an integer"),
            )),
        },
    }
}

/// Reads an optional non-negative integer field.
fn uint_field(value: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match int_field(value, key)? {
        None => Ok(None),
        Some(n) if n >= 0 => Ok(Some(n as u64)),
        Some(_) => Err(error_line(
            "bad-request",
            &format!("`{key}` must be non-negative"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::corpus;

    fn service() -> AnalysisService {
        AnalysisService::new(ServiceConfig::default())
    }

    fn analyze_line(source: &str) -> String {
        format!(
            "{{\"op\":\"analyze\",\"client\":\"simple\",\"program\":\"{}\"}}",
            json_escape(source)
        )
    }

    #[test]
    fn ping_and_unknown_ops() {
        let svc = service();
        assert_eq!(
            svc.handle_line("{\"op\":\"ping\"}"),
            Reply::Line("{\"v\":1,\"type\":\"pong\"}".to_owned())
        );
        let reply = svc.handle_line("{\"op\":\"frobnicate\"}");
        assert!(
            reply.line().contains("\"code\":\"bad-request\""),
            "{reply:?}"
        );
        let reply = svc.handle_line("not json at all");
        assert!(reply.line().contains("\"code\":\"bad-json\""), "{reply:?}");
        let reply = svc.handle_line("{\"program\":\"x := 1;\"}");
        assert!(reply.line().contains("missing `op`"), "{reply:?}");
    }

    #[test]
    fn analyze_hits_cache_on_repeat_and_is_byte_identical() {
        let svc = service();
        let line = analyze_line(&corpus::fig2_exchange().source);
        let cold = svc.handle_line(&line);
        let warm = svc.handle_line(&line);
        assert_eq!(cold, warm, "cached response must be byte-identical");
        assert!(cold.line().starts_with("{\"v\":1,\"type\":\"program\""));
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        // And it matches the request API's own rendering — the daemon
        // adds nothing to the wire format.
        let direct = AnalysisRequest::builder()
            .source(corpus::fig2_exchange().source)
            .client_tag("simple")
            .build()
            .unwrap()
            .execute()
            .json_line(false);
        assert_eq!(cold.line(), direct);
    }

    #[test]
    fn analyze_validation_errors_are_structured() {
        let svc = service();
        let reply = svc.handle_line("{\"op\":\"analyze\"}");
        assert!(reply.line().contains("missing `program`"), "{reply:?}");
        let reply = svc.handle_line(&analyze_line("x := ;"));
        assert!(
            reply.line().contains("\"code\":\"parse-error\""),
            "{reply:?}"
        );
        let reply =
            svc.handle_line("{\"op\":\"analyze\",\"program\":\"x := 1;\",\"client\":\"quantum\"}");
        assert!(
            reply.line().contains("\"code\":\"unknown-client\""),
            "{reply:?}"
        );
        let reply = svc.handle_line("{\"op\":\"analyze\",\"program\":\"x := 1;\",\"max_steps\":0}");
        assert!(
            reply.line().contains("\"code\":\"bad-config\""),
            "{reply:?}"
        );
        let reply =
            svc.handle_line("{\"op\":\"analyze\",\"program\":\"x := 1;\",\"min_np\":\"four\"}");
        assert!(reply.line().contains("must be an integer"), "{reply:?}");
        // Validation failures count as invalid, not as cache traffic.
        assert_eq!(svc.cache_stats().misses, 0);
        assert!(svc
            .handle_line("{\"op\":\"stats\"}")
            .line()
            .contains("\"invalid\":5"));
    }

    #[test]
    fn full_gate_rejects_instead_of_queueing() {
        let svc = AnalysisService::new(ServiceConfig {
            max_in_flight: 1,
            ..ServiceConfig::default()
        });
        let held = svc.gate().try_admit().expect("gate starts empty");
        let reply = svc.handle_line(&analyze_line("x := 1;"));
        assert!(
            reply
                .line()
                .starts_with("{\"v\":1,\"type\":\"rejected\",\"code\":\"queue-full\""),
            "{reply:?}"
        );
        assert!(reply.line().contains("\"capacity\":1"), "{reply:?}");
        drop(held);
        let reply = svc.handle_line(&analyze_line("x := 1;"));
        assert!(reply.line().contains("\"type\":\"program\""), "{reply:?}");
        assert_eq!(svc.gate().rejected(), 1);
        assert_eq!(svc.gate().in_flight(), 0, "permit released after serving");
    }

    #[test]
    fn shutdown_cancels_token_and_tags_reply() {
        let svc = service();
        let token = svc.shutdown_token();
        assert!(!token.is_cancelled());
        let reply = svc.handle_line("{\"op\":\"shutdown\"}");
        assert_eq!(
            reply,
            Reply::Shutdown("{\"v\":1,\"type\":\"shutdown\"}".to_owned())
        );
        assert!(token.is_cancelled());
        assert!(svc
            .shutdown_summary_line()
            .contains("\"type\":\"shutdown-summary\""));
    }

    #[test]
    fn handle_batch_counters_are_deterministic_across_jobs() {
        let programs: Vec<String> = corpus::all()
            .into_iter()
            .take(6)
            .map(|p| analyze_line(&p.source))
            .collect();
        // Two rounds of the same batch: round one all misses, round two
        // all hits — independent of the worker count.
        for jobs in [1usize, 4, 8] {
            let svc = service();
            let cold = svc.handle_batch(&programs, jobs);
            let stats = svc.cache_stats();
            assert_eq!((stats.hits, stats.misses), (0, 6), "jobs={jobs}");
            let warm = svc.handle_batch(&programs, jobs);
            let stats = svc.cache_stats();
            assert_eq!((stats.hits, stats.misses), (6, 6), "jobs={jobs}");
            assert_eq!(cold, warm, "jobs={jobs}");
        }
    }

    #[test]
    fn handle_batch_evictions_are_deterministic() {
        let programs: Vec<String> = corpus::all()
            .into_iter()
            .take(6)
            .map(|p| analyze_line(&p.source))
            .collect();
        for jobs in [1usize, 4] {
            let svc = AnalysisService::new(ServiceConfig {
                cache_capacity: 2,
                ..ServiceConfig::default()
            });
            let _ = svc.handle_batch(&programs, jobs);
            let stats = svc.cache_stats();
            assert_eq!(stats.entries, 2, "jobs={jobs}");
            assert_eq!(stats.evictions, 4, "jobs={jobs}");
        }
    }
}
