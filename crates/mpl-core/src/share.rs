//! Copy-on-write sharing for analysis-state components.
//!
//! The engine's successor generation clones whole [`crate::AnalysisState`]s
//! on every edge, match probe and admission. Wrapping the heavy components
//! in [`Shared`] turns those clones into reference-count bumps: the clone
//! is O(components), and the first *mutation* of a component through
//! `DerefMut` materializes a private copy via [`Arc::make_mut`]. Reads go
//! through `Deref` and never copy.
//!
//! Sharing is sound because abstract states are values: no analysis step
//! observes the identity of a component, only its content, and widening
//! builds fresh components rather than editing stored ones in place.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A transparently copy-on-write `T`: cheap to clone, copied on first
/// mutable access when shared.
pub struct Shared<T: Clone>(Arc<T>);

impl<T: Clone> Shared<T> {
    /// Wraps a fresh value (refcount 1 — first mutation is free).
    pub fn new(value: T) -> Shared<T> {
        Shared(Arc::new(value))
    }

    /// True if both wrappers share one allocation. Used as an equality
    /// fast path; `false` says nothing about content.
    #[must_use]
    pub fn ptr_eq(a: &Shared<T>, b: &Shared<T>) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// A stable identity for the current allocation, for byte-accounting
    /// shared stores without double-counting. Invalidated by mutation.
    #[must_use]
    pub fn heap_id(this: &Shared<T>) -> usize {
        Arc::as_ptr(&this.0) as usize
    }
}

impl<T: Clone> Clone for Shared<T> {
    fn clone(&self) -> Shared<T> {
        Shared(Arc::clone(&self.0))
    }
}

impl<T: Clone> Deref for Shared<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: Clone> DerefMut for Shared<T> {
    fn deref_mut(&mut self) -> &mut T {
        Arc::make_mut(&mut self.0)
    }
}

impl<T: Clone> From<T> for Shared<T> {
    fn from(value: T) -> Shared<T> {
        Shared::new(value)
    }
}

impl<T: Clone + Default> Default for Shared<T> {
    fn default() -> Shared<T> {
        Shared::new(T::default())
    }
}

impl<T: Clone + PartialEq> PartialEq for Shared<T> {
    fn eq(&self, other: &Shared<T>) -> bool {
        Shared::ptr_eq(self, other) || *self.0 == *other.0
    }
}

impl<T: Clone + Eq> Eq for Shared<T> {}

impl<T: Clone + fmt::Debug> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Clone + fmt::Display> fmt::Display for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_until_written() {
        let mut a = Shared::new(vec![1, 2, 3]);
        let b = a.clone();
        assert!(Shared::ptr_eq(&a, &b));
        assert_eq!(Shared::heap_id(&a), Shared::heap_id(&b));
        a.push(4);
        assert!(!Shared::ptr_eq(&a, &b));
        assert_eq!(*a, vec![1, 2, 3, 4]);
        assert_eq!(*b, vec![1, 2, 3]);
    }

    #[test]
    fn reads_do_not_unshare() {
        let a = Shared::new(String::from("abc"));
        let b = a.clone();
        assert_eq!(a.len(), 3);
        assert!(Shared::ptr_eq(&a, &b));
    }

    #[test]
    fn eq_uses_pointer_fast_path_then_content() {
        let a = Shared::new(7u32);
        let b = a.clone();
        let c = Shared::new(7u32);
        let d = Shared::new(8u32);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_ne!(a, d);
    }
}
