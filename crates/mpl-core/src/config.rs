//! Engine configuration: the validated knob set shared by every entry
//! point (`analyze`, the batch runtime, the CLI).
//!
//! Configuration is deliberately separate from the engine loop: the
//! knobs are plain data consumed by the [`crate::scheduler`] (budgets,
//! cancellation, widening delay) and the [`crate::client`] layer (which
//! client instantiates the framework), so neither layer needs the other
//! to interpret them.

use std::fmt;

use mpl_runtime::CancelToken;

use crate::client::Client;

/// Engine configuration.
///
/// Construct through [`AnalysisConfig::builder`] (which validates the
/// knobs) or start from [`AnalysisConfig::default`]. The struct is
/// `#[non_exhaustive]`: fields stay readable everywhere, but literal
/// construction is reserved to this crate so knobs can be added without
/// breaking downstream code.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct AnalysisConfig {
    /// The client analysis.
    pub client: Client,
    /// Assumed lower bound on `np` (the paper's implicit "sufficiently
    /// many processes" regime; patterns like the 1-d shift distinguish
    /// interior processes only when `np` is large enough).
    pub min_np: i64,
    /// Abort (⊤) after this many engine steps.
    pub max_steps: u64,
    /// Abort (⊤) if more than this many process sets coexist — the
    /// paper's parameter `p` bounding pCFG node width.
    pub max_psets: usize,
    /// Allow a blocked send to be buffered (depth 1) so the set can
    /// advance — the §X aggregation needed for self-exchange patterns.
    pub allow_pending_sends: bool,
    /// Number of visits to a recurring pCFG location explored exactly
    /// before widening kicks in (delayed widening). Lets bounded concrete
    /// chains (e.g. a 4-block stencil on a 4x4 grid) finish without
    /// destructive merging while symbolic loops still converge.
    pub widen_delay: u32,
    /// Threshold ladder for constraint-graph widening: instead of jumping
    /// straight to ±∞, unstable bounds are relaxed to the next threshold.
    pub widen_thresholds: Vec<i64>,
    /// Collect a human-readable Fig 5-style trace.
    pub trace: bool,
    /// Cooperative cancellation: when set, the worklist loop polls the
    /// token at a bounded step interval and ends the analysis with a
    /// sound ⊤ ([`crate::result::TopReason::Deadline`]) once it fires.
    /// `None` (the default) means the run is bounded only by the step
    /// budget.
    pub cancel: Option<CancelToken>,
    /// Intra-request parallelism: how many worker threads the round
    /// executor may use for one analysis (the CLI `--par` knob). `1`
    /// (the default) runs the classic sequential loop; any value yields
    /// byte-identical results — parallelism only changes wall-clock.
    pub intra_jobs: usize,
    /// Worklist ordering policy for each frontier round (see
    /// [`ScheduleOrder`]). The default FIFO order is what the golden
    /// corpus pins.
    pub order: ScheduleOrder,
    /// Test-only fault hook: panic when the engine counts this worklist
    /// step. Exercises the round executor's panic isolation without
    /// patching engine internals. `None` (the default) disables it.
    pub panic_at_step: Option<u64>,
}

/// Order in which a drained frontier round is explored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ScheduleOrder {
    /// Queue order — the deterministic order the golden corpus pins.
    #[default]
    Fifo,
    /// Reverse postorder over the CFG's SCC condensation
    /// ([`mpl_cfg::SccRanks`]): states whose process sets sit at earlier
    /// condensation units are explored first, so facts flow forward
    /// before loops are re-entered. A round-local stable sort, hence
    /// identical for every `intra_jobs` value.
    Priority,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            client: Client::Cartesian,
            min_np: 4,
            max_steps: 20_000,
            max_psets: 12,
            allow_pending_sends: true,
            widen_delay: 6,
            widen_thresholds: mpl_domains::DEFAULT_WIDEN_THRESHOLDS.to_vec(),
            trace: false,
            cancel: None,
            intra_jobs: 1,
            order: ScheduleOrder::Fifo,
            panic_at_step: None,
        }
    }
}

impl AnalysisConfig {
    /// A builder seeded with the defaults.
    #[must_use]
    pub fn builder() -> AnalysisConfigBuilder {
        AnalysisConfigBuilder {
            config: AnalysisConfig::default(),
        }
    }
}

/// A rejected [`AnalysisConfigBuilder`] knob combination.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `max_steps` must be at least 1 — a zero step budget would ⊤ every
    /// program before the first transfer function.
    ZeroStepBudget,
    /// `max_psets` must be at least 1 — the initial state already holds
    /// one process set.
    ZeroPsetBudget,
    /// `min_np` must be at least 1 (the paper's "sufficiently many
    /// processes" regime assumes a non-empty machine).
    MinNpTooSmall {
        /// The rejected value.
        got: i64,
    },
    /// The widening threshold ladder must be sorted ascending, or the
    /// snap-to-next-threshold relaxation would not terminate.
    UnsortedThresholds,
    /// `intra_jobs` must be at least 1 — zero workers could run nothing.
    ZeroIntraJobs,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroStepBudget => f.write_str("max_steps must be >= 1"),
            ConfigError::ZeroPsetBudget => f.write_str("max_psets must be >= 1"),
            ConfigError::MinNpTooSmall { got } => {
                write!(f, "min_np must be >= 1 (got {got})")
            }
            ConfigError::UnsortedThresholds => {
                f.write_str("widen_thresholds must be sorted ascending")
            }
            ConfigError::ZeroIntraJobs => f.write_str("intra_jobs must be >= 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Typed, validating constructor for [`AnalysisConfig`] — the supported
/// way to configure the engine from other crates.
///
/// ```
/// use mpl_core::{AnalysisConfig, Client};
/// let config = AnalysisConfig::builder()
///     .client(Client::Simple)
///     .min_np(8)
///     .build()
///     .expect("valid config");
/// assert_eq!(config.min_np, 8);
/// assert!(AnalysisConfig::builder().max_steps(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisConfigBuilder {
    config: AnalysisConfig,
}

impl AnalysisConfigBuilder {
    /// A builder seeded from an existing configuration (the request API
    /// uses this to layer per-request overrides onto server defaults and
    /// still route through [`Self::build`]'s validation).
    #[must_use]
    pub fn from_config(config: AnalysisConfig) -> AnalysisConfigBuilder {
        AnalysisConfigBuilder { config }
    }

    /// Sets the client analysis.
    #[must_use]
    pub fn client(mut self, client: Client) -> Self {
        self.config.client = client;
        self
    }

    /// Sets the assumed lower bound on `np`.
    #[must_use]
    pub fn min_np(mut self, min_np: i64) -> Self {
        self.config.min_np = min_np;
        self
    }

    /// Sets the engine step budget.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.config.max_steps = max_steps;
        self
    }

    /// Sets the pCFG node-width budget (the paper's parameter `p`).
    #[must_use]
    pub fn max_psets(mut self, max_psets: usize) -> Self {
        self.config.max_psets = max_psets;
        self
    }

    /// Enables or disables depth-1 send buffering (§X aggregation).
    #[must_use]
    pub fn allow_pending_sends(mut self, allow: bool) -> Self {
        self.config.allow_pending_sends = allow;
        self
    }

    /// Sets the number of exact visits before widening kicks in.
    #[must_use]
    pub fn widen_delay(mut self, widen_delay: u32) -> Self {
        self.config.widen_delay = widen_delay;
        self
    }

    /// Sets the widening threshold ladder (must be sorted ascending).
    #[must_use]
    pub fn widen_thresholds(mut self, thresholds: Vec<i64>) -> Self {
        self.config.widen_thresholds = thresholds;
        self
    }

    /// Enables or disables the Fig 5-style trace.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.config.trace = trace;
        self
    }

    /// Attaches a cooperative cancellation token (deadline support). The
    /// engine polls it every few worklist steps and returns a sound ⊤
    /// ([`crate::result::TopReason::Deadline`]) once it fires.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.config.cancel = Some(token);
        self
    }

    /// Sets the intra-request worker count for the round executor (the
    /// CLI `--par` knob). Results are byte-identical for any value.
    #[must_use]
    pub fn intra_jobs(mut self, jobs: usize) -> Self {
        self.config.intra_jobs = jobs;
        self
    }

    /// Sets the frontier exploration order (FIFO or SCC reverse
    /// postorder priority).
    #[must_use]
    pub fn schedule_order(mut self, order: ScheduleOrder) -> Self {
        self.config.order = order;
        self
    }

    /// Arms the test-only panic fault at the given worklist step.
    #[must_use]
    pub fn panic_at_step(mut self, step: u64) -> Self {
        self.config.panic_at_step = Some(step);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a knob is out of range (zero
    /// budgets, `min_np < 1`, unsorted thresholds).
    pub fn build(self) -> Result<AnalysisConfig, ConfigError> {
        let c = self.config;
        if c.max_steps == 0 {
            return Err(ConfigError::ZeroStepBudget);
        }
        if c.max_psets == 0 {
            return Err(ConfigError::ZeroPsetBudget);
        }
        if c.min_np < 1 {
            return Err(ConfigError::MinNpTooSmall { got: c.min_np });
        }
        if c.widen_thresholds.windows(2).any(|w| w[0] > w[1]) {
            return Err(ConfigError::UnsortedThresholds);
        }
        if c.intra_jobs == 0 {
            return Err(ConfigError::ZeroIntraJobs);
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze;
    use crate::result::Verdict;
    use mpl_cfg::CfgNodeId;
    use mpl_lang::corpus;

    #[test]
    fn transpose_requires_pending_sends() {
        // With strictly blocking sends (no §X aggregation) the whole set
        // blocks at the send forever: the framework must give up.
        let prog = corpus::nas_cg_transpose_square(corpus::GridDims::Symbolic);
        let config = AnalysisConfig {
            allow_pending_sends: false,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        assert!(
            matches!(result.verdict, Verdict::Top { .. }),
            "{:?}",
            result.verdict
        );
        // Rendezvous-compatible patterns still work without aggregation.
        let prog = corpus::exchange_with_root();
        let result = analyze(&prog.program, &config);
        assert!(result.is_exact(), "{:?}", result.verdict);
    }

    #[test]
    fn max_psets_budget_yields_top() {
        let prog = corpus::nearest_neighbor_shift();
        let config = AnalysisConfig {
            max_psets: 2,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        assert!(matches!(result.verdict, Verdict::Top { .. }));
    }

    #[test]
    fn min_np_is_respected() {
        // With min_np = 8 the analysis still succeeds (it is a lower
        // bound, not an exact count).
        let prog = corpus::exchange_with_root();
        let config = AnalysisConfig {
            min_np: 8,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        assert!(result.is_exact());
    }

    #[test]
    fn printed_constant_accessor() {
        let prog = corpus::fig2_exchange();
        let result = analyze(&prog.program, &AnalysisConfig::default());
        let print_nodes: Vec<CfgNodeId> = result.prints.iter().map(|p| p.node).collect();
        for node in print_nodes {
            assert_eq!(result.printed_constant(node), Some(5));
        }
        assert_eq!(result.printed_constant(CfgNodeId(999)), None);
    }

    #[test]
    fn match_events_have_structured_kinds() {
        use crate::matcher::MatchKind;
        let prog = corpus::nearest_neighbor_shift();
        let result = analyze(&prog.program, &AnalysisConfig::default());
        assert!(result
            .events
            .iter()
            .all(|e| matches!(e.kind, MatchKind::Shift { offset: 1 })));
        let prog = corpus::fanout_broadcast();
        let result = analyze(&prog.program, &AnalysisConfig::default());
        assert!(result
            .events
            .iter()
            .all(|e| e.kind == MatchKind::UniformPair));
        assert!(result.events.iter().all(|e| e.s_const == Some(0)));
    }
}
