//! Communication-pattern classification — the consumer the paper's
//! introduction motivates: once the topology is known statically, the
//! pattern can be replaced by a native collective (Fig 1's
//! exchange-with-root → bcast + gather).

use std::collections::BTreeSet;
use std::fmt;

use crate::engine::AnalysisResult;
use crate::matcher::MatchKind;

/// A recognized communication pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// No communication at all.
    NoComm,
    /// Two fixed ranks exchange messages (Fig 2).
    PairExchange,
    /// The root sends one message to every other rank.
    Broadcast,
    /// Every non-root rank sends one message to the root.
    Gather,
    /// The root both sends to and receives from every other rank
    /// (Fig 1/5 — replaceable by bcast + gather).
    ExchangeWithRoot,
    /// Every rank sends to `rank + offset` (1-d nearest-neighbor shift,
    /// Fig 7).
    Shift {
        /// The rank offset.
        offset: i64,
    },
    /// A ring: a shift with wrap-around.
    Ring,
    /// Every rank exchanges with a partner under an involution (the
    /// NAS-CG transpose, Fig 6).
    PartnerExchange,
    /// Not recognized.
    Unknown,
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::NoComm => f.write_str("no-communication"),
            Pattern::PairExchange => f.write_str("pair-exchange"),
            Pattern::Broadcast => f.write_str("broadcast"),
            Pattern::Gather => f.write_str("gather"),
            Pattern::ExchangeWithRoot => f.write_str("exchange-with-root"),
            Pattern::Shift { offset } => write!(f, "shift({offset:+})"),
            Pattern::Ring => f.write_str("ring"),
            Pattern::PartnerExchange => f.write_str("partner-exchange"),
            Pattern::Unknown => f.write_str("unknown"),
        }
    }
}

impl Pattern {
    /// The collective-replacement hint the paper's introduction proposes
    /// for this pattern, if any.
    #[must_use]
    pub fn collective_hint(&self) -> Option<&'static str> {
        match self {
            Pattern::Broadcast => Some("replace with MPI_Bcast"),
            Pattern::Gather => Some("replace with MPI_Gather"),
            Pattern::ExchangeWithRoot => Some("replace with MPI_Bcast + MPI_Gather"),
            Pattern::PartnerExchange => Some("replace with MPI_Sendrecv pairs"),
            Pattern::Shift { .. } | Pattern::Ring => {
                Some("replace with MPI_Sendrecv shift (MPI_Cart_shift)")
            }
            _ => None,
        }
    }
}

/// Classifies a *static* analysis result from the structure of its match
/// events. Returns [`Pattern::Unknown`] when the events do not fit a
/// known shape (never guesses on a ⊤ verdict).
#[must_use]
pub fn classify(result: &AnalysisResult) -> Pattern {
    if !result.is_exact() {
        return Pattern::Unknown;
    }
    if result.events.is_empty() {
        return Pattern::NoComm;
    }
    // Whole-set self-permutation: the transpose family.
    if result
        .events
        .iter()
        .all(|e| e.kind == MatchKind::SelfPermutation)
    {
        return Pattern::PartnerExchange;
    }
    // Pure shift: every event is a shift with a common offset.
    let shift_offsets: BTreeSet<i64> = result
        .events
        .iter()
        .filter_map(|e| match e.kind {
            MatchKind::Shift { offset } => Some(offset),
            _ => None,
        })
        .collect();
    if shift_offsets.len() == 1
        && result
            .events
            .iter()
            .all(|e| matches!(e.kind, MatchKind::Shift { .. }))
    {
        let offset = *shift_offsets.iter().next().expect("len 1");
        return Pattern::Shift { offset };
    }
    // Two constant singletons exchanging symmetrically.
    if result.events.len() == 2 {
        let (a, b) = (&result.events[0], &result.events[1]);
        if let (Some(s0), Some(r0), Some(s1), Some(r1)) =
            (a.s_const, a.r_const, b.s_const, b.r_const)
        {
            if s0 == r1 && r0 == s1 {
                return Pattern::PairExchange;
            }
        }
    }
    // Root-anchored patterns: some constant rank anchors *every* event,
    // either as its sender or as its receiver.
    let candidates: BTreeSet<i64> = result
        .events
        .iter()
        .flat_map(|e| e.s_const.into_iter().chain(e.r_const))
        .collect();
    for root in candidates {
        let anchors_all = result
            .events
            .iter()
            .all(|e| e.s_const == Some(root) || e.r_const == Some(root));
        if !anchors_all {
            continue;
        }
        let root_sends = result
            .events
            .iter()
            .filter(|e| e.s_const == Some(root))
            .count();
        let root_recvs = result
            .events
            .iter()
            .filter(|e| e.r_const == Some(root))
            .count();
        if root_sends > 0 && root_recvs > 0 {
            // A relay chain (0 → 1 → 2) also anchors at its middle rank;
            // a genuine exchange has the root talking *both ways* with
            // overlapping counterparts (symbolic counterparts — loop
            // iterations — count as overlapping).
            let sends_to: BTreeSet<Option<i64>> = result
                .events
                .iter()
                .filter(|e| e.s_const == Some(root))
                .map(|e| e.r_const)
                .collect();
            let recv_from: BTreeSet<Option<i64>> = result
                .events
                .iter()
                .filter(|e| e.r_const == Some(root))
                .map(|e| e.s_const)
                .collect();
            let overlapping = sends_to.contains(&None)
                || recv_from.contains(&None)
                || sends_to.intersection(&recv_from).next().is_some();
            if !overlapping {
                continue;
            }
            return Pattern::ExchangeWithRoot;
        }
        return match (root_sends > 0, root_recvs > 0) {
            (true, false) => Pattern::Broadcast,
            (false, true) => Pattern::Gather,
            _ => Pattern::Unknown,
        };
    }
    Pattern::Unknown
}

/// Classifies a concrete (runtime) topology given as (sender, receiver)
/// rank pairs for `np` processes — the oracle-side classifier used to
/// cross-check [`classify`] against the simulator.
#[must_use]
pub fn classify_pairs(pairs: &BTreeSet<(u64, u64)>, np: u64) -> Pattern {
    if pairs.is_empty() {
        return Pattern::NoComm;
    }
    if np >= 2 && *pairs == BTreeSet::from([(0u64, 1u64), (1u64, 0u64)]) {
        return Pattern::PairExchange;
    }
    let bcast: BTreeSet<(u64, u64)> = (1..np).map(|i| (0, i)).collect();
    let gather: BTreeSet<(u64, u64)> = (1..np).map(|i| (i, 0)).collect();
    if *pairs == bcast {
        return Pattern::Broadcast;
    }
    if *pairs == gather {
        return Pattern::Gather;
    }
    if *pairs == bcast.union(&gather).copied().collect() {
        return Pattern::ExchangeWithRoot;
    }
    let right: BTreeSet<(u64, u64)> = (0..np.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    let left: BTreeSet<(u64, u64)> = (1..np).map(|i| (i, i - 1)).collect();
    if *pairs == right {
        return Pattern::Shift { offset: 1 };
    }
    if *pairs == left {
        return Pattern::Shift { offset: -1 };
    }
    let mut ring_r = right.clone();
    ring_r.insert((np - 1, 0));
    let mut ring_l = left.clone();
    ring_l.insert((0, np - 1));
    if *pairs == ring_r || *pairs == ring_l {
        return Pattern::Ring;
    }
    // Involution: every rank pairs with exactly one partner, symmetric.
    let mut partner = vec![None::<u64>; np as usize];
    let mut involution = pairs.len() as u64 == np;
    for &(s, r) in pairs {
        if s >= np || r >= np || partner[s as usize].is_some() {
            involution = false;
            break;
        }
        partner[s as usize] = Some(r);
    }
    if involution
        && partner
            .iter()
            .enumerate()
            .all(|(i, p)| p.is_some_and(|p| partner[p as usize] == Some(i as u64)))
    {
        return Pattern::PartnerExchange;
    }
    Pattern::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(v: &[(u64, u64)]) -> BTreeSet<(u64, u64)> {
        v.iter().copied().collect()
    }

    #[test]
    fn classify_pairs_broadcast_gather_exchange() {
        let np = 6;
        let b: Vec<(u64, u64)> = (1..np).map(|i| (0, i)).collect();
        let g: Vec<(u64, u64)> = (1..np).map(|i| (i, 0)).collect();
        assert_eq!(classify_pairs(&pairs(&b), np), Pattern::Broadcast);
        assert_eq!(classify_pairs(&pairs(&g), np), Pattern::Gather);
        let mut e = b;
        e.extend(g);
        assert_eq!(classify_pairs(&pairs(&e), np), Pattern::ExchangeWithRoot);
    }

    #[test]
    fn classify_pairs_shifts_and_ring() {
        let np = 5;
        let right: Vec<(u64, u64)> = (0..np - 1).map(|i| (i, i + 1)).collect();
        assert_eq!(
            classify_pairs(&pairs(&right), np),
            Pattern::Shift { offset: 1 }
        );
        let mut ring = right;
        ring.push((np - 1, 0));
        assert_eq!(classify_pairs(&pairs(&ring), np), Pattern::Ring);
    }

    #[test]
    fn classify_pairs_transpose_is_partner_exchange() {
        let nrows = 3u64;
        let np = nrows * nrows;
        let t: Vec<(u64, u64)> = (0..np)
            .map(|i| (i, (i % nrows) * nrows + i / nrows))
            .collect();
        assert_eq!(classify_pairs(&pairs(&t), np), Pattern::PartnerExchange);
    }

    #[test]
    fn classify_pairs_pair_exchange_and_empty() {
        assert_eq!(
            classify_pairs(&pairs(&[(0, 1), (1, 0)]), 4),
            Pattern::PairExchange
        );
        assert_eq!(classify_pairs(&BTreeSet::new(), 4), Pattern::NoComm);
        assert_eq!(
            classify_pairs(&pairs(&[(0, 2), (1, 3)]), 4),
            Pattern::Unknown
        );
    }

    #[test]
    fn collective_hints_exist_for_replaceable_patterns() {
        assert!(Pattern::Broadcast.collective_hint().is_some());
        assert!(Pattern::ExchangeWithRoot.collective_hint().is_some());
        assert!(Pattern::Unknown.collective_hint().is_none());
        assert_eq!(Pattern::Shift { offset: 1 }.to_string(), "shift(+1)");
    }
}

#[cfg(test)]
mod static_classification_tests {
    use super::*;
    use crate::engine::{analyze, AnalysisConfig};
    use mpl_lang::corpus;

    fn pattern_of(prog: &corpus::CorpusProgram) -> Pattern {
        classify(&analyze(&prog.program, &AnalysisConfig::default()))
    }

    #[test]
    fn corpus_static_patterns() {
        assert_eq!(pattern_of(&corpus::fig2_exchange()), Pattern::PairExchange);
        assert_eq!(
            pattern_of(&corpus::exchange_with_root()),
            Pattern::ExchangeWithRoot
        );
        assert_eq!(pattern_of(&corpus::fanout_broadcast()), Pattern::Broadcast);
        assert_eq!(pattern_of(&corpus::gather_to_root()), Pattern::Gather);
        assert_eq!(
            pattern_of(&corpus::mdcask_full()),
            Pattern::ExchangeWithRoot
        );
        assert_eq!(
            pattern_of(&corpus::nas_cg_transpose_square(corpus::GridDims::Symbolic)),
            Pattern::PartnerExchange
        );
        assert_eq!(
            pattern_of(&corpus::nearest_neighbor_shift()),
            Pattern::Shift { offset: 1 }
        );
        assert_eq!(
            pattern_of(&corpus::left_shift()),
            Pattern::Shift { offset: -1 }
        );
        assert_eq!(pattern_of(&corpus::scatter_indexed()), Pattern::Broadcast);
        assert_eq!(
            pattern_of(&corpus::pipeline_double()),
            Pattern::Shift { offset: 1 }
        );
        // Relays and top-verdict programs never classify as a collective.
        assert_eq!(pattern_of(&corpus::const_relay()), Pattern::Unknown);
        assert_eq!(pattern_of(&corpus::ring_uniform()), Pattern::Unknown);
        assert_eq!(pattern_of(&corpus::tree_broadcast()), Pattern::Unknown);
    }

    #[test]
    fn top_verdict_never_classifies() {
        let result = analyze(
            &corpus::pairwise_exchange().program,
            &AnalysisConfig::default(),
        );
        assert_eq!(classify(&result), Pattern::Unknown);
    }
}
