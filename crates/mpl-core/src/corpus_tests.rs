//! End-to-end corpus tests for the engine: every paper-derived program
//! run through [`crate::engine::analyze`] under the appropriate client.
//!
//! Kept as a separate module so `engine.rs` stays focused on the
//! framework logic itself.

use crate::engine::analyze;
use crate::{AnalysisConfig, AnalysisResult, Client, PrintFact, Verdict};
use mpl_lang::corpus;

fn run(prog: &corpus::CorpusProgram, client: Client) -> AnalysisResult {
    let config = AnalysisConfig {
        client,
        ..AnalysisConfig::default()
    };
    analyze(&prog.program, &config)
}

#[test]
fn fig2_exchange_is_exact_with_constant_propagation() {
    let prog = corpus::fig2_exchange();
    let result = run(&prog, Client::Simple);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    // Two matches: 0's send -> 1's recv, 1's send -> 0's recv.
    assert_eq!(result.matches.len(), 2);
    // Both prints output the constant 5 (the Fig 2 headline).
    let fives: Vec<&PrintFact> = result
        .prints
        .iter()
        .filter(|p| p.value == Some(5))
        .collect();
    assert_eq!(fives.len(), 2, "prints: {:?}", result.prints);
    assert!(result.leaks.is_empty());
}

#[test]
fn fanout_broadcast_is_exact() {
    let prog = corpus::fanout_broadcast();
    let result = run(&prog, Client::Simple);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    assert_eq!(
        result.matches.len(),
        1,
        "one send statement matches one recv"
    );
    assert!(result.leaks.is_empty());
}

#[test]
fn exchange_with_root_is_exact_fig5() {
    let prog = corpus::exchange_with_root();
    let result = run(&prog, Client::Simple);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    // Root's send matches worker recv; worker send matches root recv.
    assert_eq!(result.matches.len(), 2, "matches: {:?}", result.matches);
    assert!(result.leaks.is_empty());
}

#[test]
fn gather_to_root_is_exact() {
    let prog = corpus::gather_to_root();
    let result = run(&prog, Client::Simple);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    assert_eq!(result.matches.len(), 1);
}

#[test]
fn nearest_neighbor_shift_is_exact() {
    let prog = corpus::nearest_neighbor_shift();
    let result = run(&prog, Client::Simple);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    // Sends: edge 0's send, interior send; recvs: edge np-1, interior.
    assert!(!result.matches.is_empty(), "matches: {:?}", result.matches);
    assert!(result.leaks.is_empty());
}

#[test]
fn transpose_square_needs_cartesian_client() {
    let prog = corpus::nas_cg_transpose_square(corpus::GridDims::Symbolic);
    // The simple client must give up (E3's contrast)...
    let simple = run(&prog, Client::Simple);
    assert!(
        !simple.is_exact(),
        "simple client should fail: {:?}",
        simple.verdict
    );
    // ...while the HSM client matches exactly.
    let cart = run(&prog, Client::Cartesian);
    assert!(cart.is_exact(), "verdict: {:?}", cart.verdict);
    assert_eq!(cart.matches.len(), 1);
    assert!(cart
        .events
        .iter()
        .all(|e| e.kind == crate::matcher::MatchKind::SelfPermutation));
}

#[test]
fn transpose_rect_is_exact_with_cartesian_client() {
    let prog = corpus::nas_cg_transpose_rect(corpus::GridDims::Symbolic);
    let result = run(&prog, Client::Cartesian);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    assert_eq!(result.matches.len(), 1);
}

#[test]
fn message_leak_detected_statically() {
    let prog = corpus::message_leak();
    let result = run(&prog, Client::Simple);
    assert_eq!(result.leaks.len(), 1, "verdict {:?}", result.verdict);
}

#[test]
fn deadlock_pair_detected_statically() {
    let prog = corpus::deadlock_pair();
    let result = run(&prog, Client::Cartesian);
    assert!(
        matches!(result.verdict, Verdict::Deadlock { .. }),
        "verdict: {:?}",
        result.verdict
    );
}

#[test]
fn ring_uniform_is_top() {
    // Modular wrap-around exceeds both clients (paper §X).
    let prog = corpus::ring_uniform();
    let result = run(&prog, Client::Cartesian);
    assert!(
        matches!(result.verdict, Verdict::Top { .. }),
        "{:?}",
        result.verdict
    );
}

#[test]
fn pairwise_exchange_is_top() {
    // Parity split needs non-contiguous process sets.
    let prog = corpus::pairwise_exchange();
    let result = run(&prog, Client::Cartesian);
    assert!(
        matches!(result.verdict, Verdict::Top { .. }),
        "{:?}",
        result.verdict
    );
}

#[test]
fn const_relay_propagates_constant_through_two_hops() {
    let prog = corpus::const_relay();
    let result = run(&prog, Client::Simple);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    let elevens = result.prints.iter().filter(|p| p.value == Some(11)).count();
    assert_eq!(elevens, 3, "prints: {:?}", result.prints);
}

#[test]
fn trace_collects_steps() {
    let prog = corpus::fig2_exchange();
    let config = AnalysisConfig {
        trace: true,
        ..AnalysisConfig::default()
    };
    let result = analyze(&prog.program, &config);
    assert!(
        result.trace.iter().any(|l| l.contains("match")),
        "{:?}",
        result.trace
    );
}

#[test]
fn left_shift_is_exact() {
    let prog = corpus::left_shift();
    let result = run(&prog, Client::Simple);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
}

#[test]
fn mdcask_full_is_exact() {
    let prog = corpus::mdcask_full();
    let result = run(&prog, Client::Simple);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    // Phase 1 send->recv(b), phase 2 send->recv(y), worker send->root recv.
    assert_eq!(result.matches.len(), 3, "matches: {:?}", result.matches);
}

#[test]
fn scatter_indexed_is_exact() {
    let prog = corpus::scatter_indexed();
    let result = run(&prog, Client::Simple);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
}

#[test]
fn stencil_2d_vertical_concrete_is_exact() {
    let prog = corpus::stencil_2d_vertical(corpus::GridDims::Concrete { nrows: 3, ncols: 3 });
    let result = run(&prog, Client::Simple);
    assert!(result.is_exact(), "verdict: {:?}", result.verdict);
}
