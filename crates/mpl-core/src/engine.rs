//! The pCFG dataflow engine (§VI, Fig 4).
//!
//! The engine explores the pCFG lazily along one chosen interleaving
//! (legitimate because the execution model is interleaving-oblivious,
//! §III): unblocked process sets advance deterministically; when all sets
//! are blocked, sends are matched to receives exactly; states are widened
//! at recurring pCFG locations until fixpoint.
//!
//! The engine is the *framework* half of the paper's framework/client
//! split. Everything client-specific reaches it through two seams:
//!
//! * [`ClientDomain`] (see [`crate::client`]) — transfer functions,
//!   join/widen/rename hooks and the message-expression abstraction;
//! * [`AnalysisObserver`] (see [`crate::observer`]) — instrumentation
//!   hooks, generic so the default no-op observer compiles away.
//!
//! # Two-tier execution
//!
//! Since the frontier-parallel refactor the worklist runs in *rounds*:
//! each round drains the entire ready frontier from the
//! [`crate::scheduler`] (tier 1, the frontier extractor), steps every
//! drained state, and merges the results back — counting steps, firing
//! observer hooks, normalizing successors and admitting them — strictly
//! in extraction order (tier 2). Stepping itself is **pure**: a
//! [`Stepper`] touches no engine accumulator and instead records its
//! side effects (matches, prints, promotions, ⊤ causes, …) as an
//! ordered [`TaskAction`] log that the merge replays. That purity is
//! what lets `intra_jobs > 1` fan the stepping of one round across
//! [`mpl_runtime::RoundExecutor`] workers — grouped by interned
//! [`LocationKey`], results merged in submission order — while
//! verdicts, step counts, traces and match events stay byte-identical
//! to the sequential loop for any worker count.
//!
//! Worklist order, budgets and widening bookkeeping live in
//! [`crate::scheduler`]. This module re-exports the configuration and
//! result types that historically lived here, so existing
//! `mpl_core::engine::{analyze, AnalysisConfig, …}` imports keep working.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use mpl_cfg::{Cfg, CfgNode, CfgNodeId, EdgeKind, SccRanks};
use mpl_domains::{ClosureStats, LinExpr, VarId};
use mpl_lang::ast::{BinOp, Expr, Program, UnOp};
use mpl_procset::{ProcRange, SubtractOutcome};
use mpl_runtime::RoundExecutor;

use crate::client::ClientDomain;
use crate::matcher::{MatchOutcome, RecvSite, SendSite};
use crate::norm::NormCtx;
use crate::observer::{AnalysisObserver, EngineProfile, NoopObserver, TraceObserver};
use crate::scheduler::{LocationKey, Scheduler};
use crate::state::{AnalysisState, PendingSend};

pub use crate::client::Client;
pub use crate::config::{AnalysisConfig, AnalysisConfigBuilder, ConfigError, ScheduleOrder};
pub use crate::result::{AnalysisResult, MatchEvent, PrintFact, TopReason, Verdict};
pub use crate::scheduler::CANCEL_CHECK_STEPS;

/// Analyzes `program` (builds its CFG internally).
#[must_use]
pub fn analyze(program: &Program, config: &AnalysisConfig) -> AnalysisResult {
    analyze_cfg(&Cfg::build(program), config)
}

/// Analyzes an already-built CFG (so node ids can be shared with the
/// simulator or other tooling).
///
/// When `config.trace` is set, a [`TraceObserver`] collects the Fig
/// 5-style trace into the result; otherwise the engine runs with the
/// zero-cost [`NoopObserver`].
#[must_use]
pub fn analyze_cfg(cfg: &Cfg, config: &AnalysisConfig) -> AnalysisResult {
    if config.trace {
        let mut tracer = TraceObserver::new();
        let mut result = analyze_cfg_with(cfg, config, &mut tracer);
        result.trace = tracer.into_lines();
        result
    } else {
        analyze_cfg_with(cfg, config, &mut NoopObserver)
    }
}

/// Analyzes a CFG under a caller-supplied [`AnalysisObserver`].
///
/// The observer receives every engine event (steps, matches, splits,
/// merges, widenings, ⊤) as the run unfolds; `result.trace` is left
/// empty — attach a [`TraceObserver`]'s lines yourself if needed. The
/// engine is monomorphized over `O`, so a no-op observer costs nothing.
#[must_use]
pub fn analyze_cfg_with<O: AnalysisObserver>(
    cfg: &Cfg,
    config: &AnalysisConfig,
    observer: &mut O,
) -> AnalysisResult {
    Engine::new(cfg, config.clone(), observer).run()
}

/// The message of the test-only injected fault
/// ([`AnalysisConfig::panic_at_step`]). Inline and parallel runs panic
/// with the identical payload, so the structured failure surfaced by
/// the request layer is byte-identical across `--par` values.
fn fault_message(step: u64) -> String {
    format!("injected engine fault at step {step}")
}

/// The immutable context one frontier step reads — everything the pure
/// [`Stepper`] needs, shareable across round-executor worker threads
/// ([`ClientDomain`] is `Sync`, the rest is plain borrowed data).
#[derive(Clone, Copy)]
struct StepCtx<'a> {
    cfg: &'a Cfg,
    norm: &'a NormCtx,
    domain: &'static dyn ClientDomain,
    assumes: &'a [Expr],
    allow_pending_sends: bool,
}

/// One side effect recorded while stepping a frontier item, in the
/// exact order the sequential engine would have performed it. The merge
/// replays the log against the observer and the engine accumulators, so
/// a speculative parallel step leaves no trace until (and unless) its
/// item is actually merged.
enum TaskAction {
    /// A pending send was buffered on pset `idx` (`state` is the
    /// pre-promotion state the observer hook documents).
    Promote { idx: usize, state: AnalysisState },
    /// The state forked on the undecidable comparison `a <=> b`.
    Split { a: LinExpr, b: LinExpr },
    /// A send–receive match was established.
    Match { event: MatchEvent },
    /// A matcher proposal could not be applied.
    MatchRejected,
    /// The analysis gave up with ⊤ (the last replayed reason wins).
    Top { reason: TopReason },
    /// A guaranteed deadlock was proven (the first replayed report
    /// wins).
    Deadlock { blocked: Vec<(CfgNodeId, String)> },
    /// A `print` fact was evaluated; the merge folds it into the
    /// per-(node, range) table under the conflicting-values-to-unknown
    /// rule.
    Print {
        node: CfgNodeId,
        range: String,
        value: Option<i64>,
    },
}

/// Everything stepping one frontier item produced.
struct StepOutput {
    successors: Vec<AnalysisState>,
    actions: Vec<TaskAction>,
    /// Closure-counter delta of this step (parallel rounds only): the
    /// merge adds the deltas of *merged* items, so the reported
    /// counters match a sequential run, which never steps the items a
    /// budget stop discards.
    closure: ClosureStats,
}

/// The pure tier-2 stepper: advances one state, recording side effects
/// as a [`TaskAction`] log instead of touching the engine.
struct Stepper<'a> {
    ctx: StepCtx<'a>,
    actions: Vec<TaskAction>,
}

impl<'a> Stepper<'a> {
    fn new(ctx: StepCtx<'a>) -> Stepper<'a> {
        Stepper {
            ctx,
            actions: Vec::new(),
        }
    }

    /// Records a ⊤ cause (the last one replayed wins in the verdict).
    fn give_up(&mut self, reason: TopReason) {
        self.actions.push(TaskAction::Top { reason });
    }

    /// One engine step from `st`: returns successor states.
    fn step(&mut self, st: AnalysisState) -> Vec<AnalysisState> {
        self.step_inner(st, 0)
    }

    fn step_inner(&mut self, st: AnalysisState, depth: u32) -> Vec<AnalysisState> {
        // 1. Advance an unblocked process set.
        let unblocked = st.psets.iter().position(|p| {
            !matches!(
                self.ctx.cfg.node(p.node),
                CfgNode::Send { .. } | CfgNode::Recv { .. } | CfgNode::Exit
            )
        });
        if let Some(idx) = unblocked {
            return self.advance(st, idx);
        }
        // 2. All blocked: match sends to receives.
        if let Some(next) = self.match_step(&st) {
            return vec![next];
        }
        // 3. Fork the state on an undecidable match comparison (the §VI
        //    split driven by partially-matched subsets).
        if let Some(states) = self.ambiguity_split(&st, depth) {
            return states;
        }
        // 4. Buffer a send (depth-1 aggregation).
        if self.ctx.allow_pending_sends {
            let promotable = st.psets.iter().position(|p| {
                matches!(self.ctx.cfg.node(p.node), CfgNode::Send { .. }) && p.pending.is_none()
            });
            if let Some(idx) = promotable {
                self.actions.push(TaskAction::Promote {
                    idx,
                    state: st.clone(),
                });
                let mut s = st;
                let CfgNode::Send { value, dest } = self.ctx.cfg.node(s.psets[idx].node).clone()
                else {
                    unreachable!()
                };
                s.psets[idx].pending = Some(PendingSend {
                    node: s.psets[idx].node,
                    value,
                    dest,
                });
                s.psets[idx].node = self.ctx.cfg.sole_succ(s.psets[idx].node);
                return vec![s];
            }
        }
        // 5. Stuck. Pending sends at exit are leaks; receives that can
        //    never be satisfied are a deadlock; anything else is ⊤.
        let any_comm_blocked = st.psets.iter().any(|p| {
            matches!(
                self.ctx.cfg.node(p.node),
                CfgNode::Send { .. } | CfgNode::Recv { .. }
            )
        });
        if !any_comm_blocked {
            // Everyone is at exit but pendings remain: terminal (leaks
            // recorded by finish_terminal).
            return vec![st];
        }
        let has_send_capability = st.psets.iter().any(|p| {
            p.pending.is_some() || matches!(self.ctx.cfg.node(p.node), CfgNode::Send { .. })
        });
        if !has_send_capability {
            // Only receives outstanding and nothing can ever send:
            // guaranteed deadlock (matching so far was exact).
            let blocked = st
                .psets
                .iter()
                .filter(|p| !matches!(self.ctx.cfg.node(p.node), CfgNode::Exit))
                .map(|p| (p.node, p.range.to_string()))
                .collect();
            self.actions.push(TaskAction::Deadlock { blocked });
            return Vec::new();
        }
        self.give_up(TopReason::MatchFailure {
            state: st.to_string(),
        });
        Vec::new()
    }

    /// Advances the unblocked pset `idx` one CFG step.
    fn advance(&mut self, mut st: AnalysisState, idx: usize) -> Vec<AnalysisState> {
        let node = st.psets[idx].node;
        match self.ctx.cfg.node(node).clone() {
            CfgNode::Entry | CfgNode::Skip => {
                st.psets[idx].node = self.ctx.cfg.sole_succ(node);
                vec![st]
            }
            CfgNode::Assign { name, value } => {
                self.ctx
                    .domain
                    .transfer_assign(self.ctx.norm, &mut st, idx, &name, &value);
                st.psets[idx].node = self.ctx.cfg.sole_succ(node);
                vec![st]
            }
            CfgNode::Print(e) => {
                self.record_print(&mut st, idx, node, &e);
                st.psets[idx].node = self.ctx.cfg.sole_succ(node);
                vec![st]
            }
            CfgNode::Assume(e) => {
                self.ctx
                    .domain
                    .transfer_assume(self.ctx.norm, &mut st, idx, &e);
                st.psets[idx].node = self.ctx.cfg.sole_succ(node);
                vec![st]
            }
            CfgNode::Branch { cond } => self.branch(st, idx, &cond),
            CfgNode::Send { .. } | CfgNode::Recv { .. } | CfgNode::Exit => {
                unreachable!("blocked node reached advance")
            }
        }
    }

    /// Replaces variables provably equal to `id + k` by that expression,
    /// so conditions like `x < np - 1` after `x := id` split correctly.
    fn subst_id_aliases(
        &self,
        st: &mut AnalysisState,
        pset: mpl_domains::PsetId,
        expr: &Expr,
    ) -> Expr {
        match expr {
            Expr::Var(name) if !self.ctx.norm.is_input(name) => {
                let v = self.ctx.norm.var(pset, name);
                match st.cg.eq_offset(v, VarId::id_of(pset)) {
                    Some(0) => Expr::Id,
                    Some(k) => Expr::binary(BinOp::Add, Expr::Id, Expr::Int(k)),
                    None => expr.clone(),
                }
            }
            Expr::Binary(op, l, r) => Expr::binary(
                *op,
                self.subst_id_aliases(st, pset, l),
                self.subst_id_aliases(st, pset, r),
            ),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(self.subst_id_aliases(st, pset, e))),
            _ => expr.clone(),
        }
    }

    fn record_print(&mut self, st: &mut AnalysisState, idx: usize, node: CfgNodeId, e: &Expr) {
        let pset = st.psets[idx].id;
        let value = self.ctx.norm.eval_const(e, pset, &st.consts).or_else(|| {
            self.ctx
                .norm
                .linearize(e, pset)
                .and_then(|lin| st.cg.eval_expr(&lin))
        });
        self.actions.push(TaskAction::Print {
            node,
            range: st.psets[idx].range.to_string(),
            value,
        });
    }

    fn branch(&mut self, st: AnalysisState, idx: usize, cond: &Expr) -> Vec<AnalysisState> {
        let t_succ = self
            .ctx
            .cfg
            .succ_along(st.psets[idx].node, EdgeKind::True)
            .expect("branch true edge");
        let f_succ = self
            .ctx
            .cfg
            .succ_along(st.psets[idx].node, EdgeKind::False)
            .expect("branch false edge");

        // Rewrite id-aliased variables so `x := id; if x < k` splits like
        // an id-branch.
        let cond = {
            let mut probe = st.clone();
            let pset = st.psets[idx].id;
            self.subst_id_aliases(&mut probe, pset, cond)
        };
        let cond = &cond;

        // (a) id-dependent branch. A provably-singleton set has a single
        // `id` value, so the condition is uniform over the set and the
        // decide/refine machinery below applies (its refinements
        // constrain the set's `id` variable directly). Larger sets split.
        let singleton = {
            let mut probe = st.cg.clone();
            st.psets[idx].range.is_singleton(&mut probe)
        };
        if cond.mentions_id() && !singleton {
            let mut s = st.clone();
            if let Some((t_parts, f_parts)) =
                self.ctx
                    .domain
                    .split_on_id(self.ctx.norm, &mut s, idx, cond)
            {
                let mut parts: Vec<(ProcRange, CfgNodeId, bool)> = Vec::new();
                for r in t_parts {
                    parts.push((r, t_succ, true));
                }
                for r in f_parts {
                    parts.push((r, f_succ, true));
                }
                s.split_pset(idx, parts);
                return vec![s];
            }
            self.give_up(TopReason::SplitFailure {
                cond: cond.to_string(),
            });
            return Vec::new();
        }

        // Soundness gate: a whole (non-singleton) set may take one branch
        // edge only if the condition provably evaluates identically on
        // every member.
        let pset = st.psets[idx].id;
        if !singleton
            && !cond.mentions_id()
            && !self
                .ctx
                .domain
                .is_uniform_expr(self.ctx.norm, &st, pset, cond)
        {
            self.give_up(TopReason::NonUniformCondition {
                cond: cond.to_string(),
            });
            return Vec::new();
        }

        // (b) uniform condition: decide if possible.
        if let Some(truth) = self.decide(&st, pset, cond) {
            let mut s = st;
            let refs = self.ctx.norm.refinements(cond, pset, !truth);
            if !self.refine_or_drop_empty(&mut s, &refs) {
                return Vec::new();
            }
            if let Some(i) = s.index_of(pset) {
                s.psets[i].node = if truth { t_succ } else { f_succ };
            }
            return vec![s];
        }

        // (c) undecided: explore both outcomes.
        let mut out = Vec::new();
        for (truth, succ) in [(true, t_succ), (false, f_succ)] {
            let mut s = st.clone();
            let refs = self.ctx.norm.refinements(cond, pset, !truth);
            if !self.refine_or_drop_empty(&mut s, &refs) {
                continue;
            }
            if let Some(i) = s.index_of(pset) {
                s.psets[i].node = succ;
                out.push(s);
            }
        }
        out
    }

    /// Applies comparison refinements to the state. A refinement that
    /// contradicts some *other* process set's `id` bounds proves that set
    /// empty under this path (e.g. the Fig 5 loop-exit edge `i = np`
    /// emptying the blocked receivers `[i..np-1]`): such sets are deleted
    /// and the refinement retried. Returns `false` if the path is
    /// genuinely infeasible (the branching set's own facts contradict).
    fn refine_or_drop_empty(
        &self,
        st: &mut AnalysisState,
        refs: &[(LinExpr, LinExpr, crate::norm::RelOp)],
    ) -> bool {
        loop {
            let mut probe = st.cg.clone();
            self.ctx.norm.apply_refinements(&mut probe, refs);
            probe.close();
            if !probe.is_bottom() {
                st.cg = probe;
                return true;
            }
            // Find a process set whose removal restores consistency.
            let mut removed = false;
            for i in 0..st.psets.len() {
                let victim = st.psets[i].id;
                let mut without = st.cg.clone();
                without.drop_namespace(victim);
                self.ctx.norm.apply_refinements(&mut without, refs);
                without.close();
                if !without.is_bottom() {
                    // `victim` is provably empty under the refinement.
                    let _ = victim;
                    st.remove_pset(i);
                    removed = true;
                    break;
                }
            }
            if !removed {
                return false;
            }
        }
    }

    /// Decides a set-uniform condition when provable.
    fn decide(&self, st: &AnalysisState, pset: mpl_domains::PsetId, cond: &Expr) -> Option<bool> {
        if let Some(c) = self.ctx.norm.eval_const(cond, pset, &st.consts) {
            return Some(c != 0);
        }
        // Single comparison decidable from the constraint graph.
        let (op, l, r) = match cond {
            Expr::Binary(op, l, r) if op.is_boolean() => (*op, l, r),
            Expr::Unary(UnOp::Not, inner) => {
                return self.decide(st, pset, inner).map(|b| !b);
            }
            _ => return None,
        };
        let mut cg = st.cg.clone();
        let (le, re) = (
            self.ctx
                .norm
                .linearize_resolved(l, pset, &st.consts, &mut cg)?,
            self.ctx
                .norm
                .linearize_resolved(r, pset, &st.consts, &mut cg)?,
        );
        let cmp = cg.compare_exprs(&le, &re);
        use std::cmp::Ordering::{Equal, Greater, Less};
        match op {
            BinOp::Eq => match cmp {
                Some(Equal) => Some(true),
                Some(Less | Greater) => Some(false),
                None => None,
            },
            BinOp::Ne => match cmp {
                Some(Equal) => Some(false),
                Some(Less | Greater) => Some(true),
                None => None,
            },
            BinOp::Le => {
                if cg.proves_le(&le, &re) {
                    Some(true)
                } else if cg.proves_le(&re.plus(1), &le) {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Lt => {
                if cg.proves_le(&le.plus(1), &re) {
                    Some(true)
                } else if cg.proves_le(&re, &le) {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Ge => {
                if cg.proves_le(&re, &le) {
                    Some(true)
                } else if cg.proves_le(&le.plus(1), &re) {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Gt => {
                if cg.proves_le(&re.plus(1), &le) {
                    Some(true)
                } else if cg.proves_le(&le, &re) {
                    Some(false)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Collects the send/receive operations available for matching.
    fn comm_sites(&self, st: &AnalysisState) -> (Vec<SendSite>, Vec<RecvSite>) {
        let mut sends: Vec<SendSite> = Vec::new();
        let mut recvs: Vec<RecvSite> = Vec::new();
        for (i, p) in st.psets.iter().enumerate() {
            if let Some(pend) = &p.pending {
                sends.push(SendSite {
                    pset_idx: i,
                    node: pend.node,
                    value: pend.value.clone(),
                    dest: pend.dest.clone(),
                    pending: true,
                });
            }
            match self.ctx.cfg.node(p.node) {
                CfgNode::Send { value, dest } if p.pending.is_none() => {
                    sends.push(SendSite {
                        pset_idx: i,
                        node: p.node,
                        value: value.clone(),
                        dest: dest.clone(),
                        pending: false,
                    });
                }
                CfgNode::Recv { var, src } => {
                    recvs.push(RecvSite {
                        pset_idx: i,
                        node: p.node,
                        src: src.clone(),
                        var: var.clone(),
                    });
                }
                _ => {}
            }
        }
        (sends, recvs)
    }

    /// Attempts one send–receive match; returns the successor state.
    fn match_step(&mut self, st: &AnalysisState) -> Option<AnalysisState> {
        let matcher = self.ctx.domain.matcher();
        let (sends, recvs) = self.comm_sites(st);
        for send in &sends {
            for recv in &recvs {
                let mut s = st.clone();
                if let Some(outcome) =
                    matcher.try_match(&mut s, send, recv, self.ctx.norm, self.ctx.assumes)
                {
                    match self.apply_match(s, send, recv, &outcome) {
                        Some(next) => return Some(next),
                        None => self.actions.push(TaskAction::MatchRejected),
                    }
                }
            }
        }
        None
    }

    /// Forks the state on the first undecidable comparison blocking a
    /// match, then advances each branch (the comparison is decided in
    /// each, so the match proceeds one way or the other).
    fn ambiguity_split(&mut self, st: &AnalysisState, depth: u32) -> Option<Vec<AnalysisState>> {
        if depth > 8 {
            self.give_up(TopReason::SplitDepthExceeded);
            return Some(Vec::new());
        }
        let matcher = self.ctx.domain.matcher();
        let (sends, recvs) = self.comm_sites(st);
        for send in &sends {
            for recv in &recvs {
                let mut probe = st.clone();
                let Some((a, b)) = matcher.split_hint(&mut probe, send, recv, self.ctx.norm) else {
                    continue;
                };
                self.actions.push(TaskAction::Split { a, b });
                let mut out = Vec::new();
                let av = a.var.unwrap_or(VarId::ZERO);
                let bv = b.var.unwrap_or(VarId::ZERO);
                // Branch 1: a <= b.
                let mut s1 = st.clone();
                s1.cg.assert_le(av, bv, b.offset - a.offset);
                s1.cg.close();
                if !s1.cg.is_bottom() {
                    out.extend(self.step_inner(s1, depth + 1));
                }
                // Branch 2: b <= a - 1.
                let mut s2 = st.clone();
                s2.cg.assert_le(bv, av, a.offset - b.offset - 1);
                s2.cg.close();
                if !s2.cg.is_bottom() {
                    out.extend(self.step_inner(s2, depth + 1));
                }
                return Some(out);
            }
        }
        None
    }

    /// Applies a successful match: splits/releases the participating
    /// process sets, propagates the sent value, records the match.
    fn apply_match(
        &mut self,
        mut st: AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        outcome: &MatchOutcome,
    ) -> Option<AnalysisState> {
        let recv_succ = self.ctx.cfg.sole_succ(recv.node);
        st.matches.insert((send.node, recv.node));
        // Capture the event now (the constants are provable in the
        // pre-release state), but only *record* it once the match has
        // actually been applied — a failed application must leave no
        // trace in the reported topology.
        let singleton_const = |st: &mut AnalysisState, r: &ProcRange| -> Option<i64> {
            let mut cg = st.cg.clone();
            if !r.is_singleton(&mut cg) {
                return None;
            }
            r.lb.exprs().iter().find_map(|e| cg.eval_expr(e))
        };
        let event = MatchEvent {
            send_node: send.node,
            recv_node: recv.node,
            s_procs: outcome.s_procs.to_string(),
            r_procs: outcome.r_procs.to_string(),
            kind: outcome.kind,
            s_const: singleton_const(&mut st, &outcome.s_procs),
            r_const: singleton_const(&mut st, &outcome.r_procs),
        };

        if send.pset_idx == recv.pset_idx {
            // Self-exchange (transpose): only full-set matches supported.
            let range = st.psets[send.pset_idx].range.clone();
            if !outcome.s_procs.provably_eq(&mut st.cg, &range)
                || !outcome.r_procs.provably_eq(&mut st.cg, &range)
            {
                return None;
            }
            if !send.pending {
                return None; // A set cannot be at send and recv at once.
            }
            self.propagate_value(&mut st, send, recv, recv.pset_idx);
            st.psets[recv.pset_idx].pending = None;
            st.psets[recv.pset_idx].node = recv_succ;
            self.actions.push(TaskAction::Match { event });
            return Some(st);
        }

        // Receiver side first (indices shift when psets split).
        let r_full = {
            let range = st.psets[recv.pset_idx].range.clone();
            outcome.r_procs.provably_eq(&mut st.cg, &range)
        };
        let mut receiver_new_idx = recv.pset_idx;
        let assigned_ns;
        if r_full {
            assigned_ns = st.psets[recv.pset_idx].id;
            self.propagate_value(&mut st, send, recv, recv.pset_idx);
            st.psets[recv.pset_idx].node = recv_succ;
        } else {
            let range = st.psets[recv.pset_idx].range.clone();
            let remainder = range.subtract(&mut st.cg, &outcome.r_procs)?;
            let mut parts: Vec<(ProcRange, CfgNodeId, bool)> =
                vec![(outcome.r_procs.clone(), recv_succ, true)];
            match remainder {
                SubtractOutcome::Empty => {}
                SubtractOutcome::One(r) => parts.push((r, recv.node, true)),
                SubtractOutcome::Two(a, b) => {
                    parts.push((a, recv.node, true));
                    parts.push((b, recv.node, true));
                }
            }
            let sender_id = st.psets[send.pset_idx].id;
            st.split_pset(recv.pset_idx, parts);
            // After split_pset the new psets are appended at the end; the
            // matched part is the one at recv_succ (first pushed).
            receiver_new_idx = st
                .psets
                .iter()
                .position(|p| {
                    p.node == recv_succ && p.range.lb.exprs() == outcome.r_procs.lb.exprs()
                })
                .unwrap_or(st.psets.len() - 1);
            assigned_ns = st.psets[receiver_new_idx].id;
            self.ctx.domain.propagate_received(
                self.ctx.norm,
                &mut st,
                send,
                recv,
                sender_id,
                receiver_new_idx,
            );
        }
        let _ = receiver_new_idx;

        // The receiver-side value propagation reassigned `recv.var`, so
        // any alias mentioning it inside the matched ranges is stale and
        // would corrupt bound comparisons (e.g. falsely proving the
        // matched senders empty). Strip those aliases and re-saturate
        // against the updated facts.
        let stale = VarId::pset_var(assigned_ns, mpl_domains::intern_name(&recv.var));
        let sanitize = |st: &mut AnalysisState, r: &ProcRange| -> ProcRange {
            let keep = |b: &mpl_procset::Bound| {
                mpl_procset::Bound::from_exprs(
                    b.exprs()
                        .iter()
                        .filter(|e| e.var != Some(stale))
                        .cloned()
                        .collect(),
                )
            };
            let mut out = ProcRange::new(keep(&r.lb), keep(&r.ub));
            if out.is_vacant() {
                return r.clone();
            }
            out.saturate(&mut st.cg);
            out
        };
        let s_procs = sanitize(&mut st, &outcome.s_procs);

        // Sender side.
        let send_idx = st.psets.iter().position(|p| {
            if send.pending {
                p.pending.as_ref().is_some_and(|pd| pd.node == send.node)
            } else {
                p.node == send.node
            }
        })?;
        let s_range = st.psets[send_idx].range.clone();
        let s_full = s_procs.provably_eq(&mut st.cg, &s_range);
        if s_full {
            if send.pending {
                st.psets[send_idx].pending = None;
            } else {
                st.psets[send_idx].node = self.ctx.cfg.sole_succ(send.node);
            }
        } else {
            let remainder = s_range.subtract(&mut st.cg, &s_procs)?;
            let released_node = if send.pending {
                st.psets[send_idx].node
            } else {
                self.ctx.cfg.sole_succ(send.node)
            };
            let mut parts: Vec<(ProcRange, CfgNodeId, bool)> = Vec::new();
            // Matched part: pending cleared (if pending) or advanced.
            parts.push((s_procs.clone(), released_node, false));
            match remainder {
                SubtractOutcome::Empty => {}
                SubtractOutcome::One(r) => parts.push((r, st.psets[send_idx].node, true)),
                SubtractOutcome::Two(a, b) => {
                    parts.push((a, st.psets[send_idx].node, true));
                    parts.push((b, st.psets[send_idx].node, true));
                }
            }
            // For a non-pending sender the "keep pending" flag is
            // irrelevant (no pending exists); for a pending sender the
            // matched part released its pending while the rest keeps it.
            st.split_pset(send_idx, parts);
        }
        self.actions.push(TaskAction::Match { event });
        Some(st)
    }

    /// Propagates the sent value into the receiver's variable (Fig 2's
    /// cross-process constant propagation).
    fn propagate_value(
        &mut self,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        recv_idx: usize,
    ) {
        let sender_id = st.psets[send.pset_idx].id;
        self.ctx
            .domain
            .propagate_received(self.ctx.norm, st, send, recv, sender_id, recv_idx);
    }
}

struct Engine<'a, O: AnalysisObserver> {
    cfg: &'a Cfg,
    norm: NormCtx,
    config: AnalysisConfig,
    domain: &'static dyn ClientDomain,
    session: crate::session::AnalysisSession,
    scheduler: Scheduler,
    observer: &'a mut O,
    assumes: Vec<Expr>,
    matches: BTreeSet<(CfgNodeId, CfgNodeId)>,
    events: BTreeMap<String, MatchEvent>,
    prints: BTreeMap<(CfgNodeId, String), Option<i64>>,
    leaks: BTreeSet<CfgNodeId>,
    deadlock: Option<Vec<(CfgNodeId, String)>>,
    top: Option<TopReason>,
    /// Closure-counter deltas of merged parallel step tasks (zero under
    /// the inline loop, whose step work accrues on this thread and is
    /// already covered by the session delta).
    worker_closure: ClosureStats,
    /// Closure work the pool ran on *this* thread (small rounds fall
    /// back to the caller). It lands in this thread's counters — and so
    /// in the session delta — yet is also reported per task, so it is
    /// subtracted from the session delta to keep the totals identical
    /// to a sequential run.
    inline_task_closure: ClosureStats,
}

impl<'a, O: AnalysisObserver> Engine<'a, O> {
    fn new(cfg: &'a Cfg, config: AnalysisConfig, observer: &'a mut O) -> Engine<'a, O> {
        let norm = NormCtx::from_cfg(cfg);
        let assumes = cfg
            .node_ids()
            .filter_map(|id| match cfg.node(id) {
                CfgNode::Assume(e) => Some(e.clone()),
                _ => None,
            })
            .collect();
        let session = crate::session::AnalysisSession::new(config.widen_thresholds.clone());
        let mut scheduler = Scheduler::new(&config);
        if config.order == ScheduleOrder::Priority {
            scheduler.set_priority(SccRanks::compute(cfg));
        }
        Engine {
            cfg,
            norm,
            config,
            domain: Client::default().domain(),
            session,
            scheduler,
            observer,
            assumes,
            matches: BTreeSet::new(),
            events: BTreeMap::new(),
            prints: BTreeMap::new(),
            leaks: BTreeSet::new(),
            deadlock: None,
            top: None,
            worker_closure: ClosureStats::default(),
            inline_task_closure: ClosureStats::default(),
        }
        .with_domain()
    }

    fn with_domain(mut self) -> Engine<'a, O> {
        self.domain = self.config.client.domain();
        self
    }

    /// Records a ⊤ cause (the last one reported wins in the verdict).
    fn give_up(&mut self, reason: TopReason) {
        self.observer.on_top(&reason);
        self.top = Some(reason);
    }

    fn step_ctx(&self) -> StepCtx<'_> {
        StepCtx {
            cfg: self.cfg,
            norm: &self.norm,
            domain: self.domain,
            assumes: &self.assumes,
            allow_pending_sends: self.config.allow_pending_sends,
        }
    }

    fn run(mut self) -> AnalysisResult {
        // Phase timing is opt-in (a few percent of timer calls): queried
        // once so untimed runs skip every `Instant::now`.
        let timing = self.observer.timing_enabled();
        let mut profile = EngineProfile::default();
        let run_start = Instant::now();

        let mut init = AnalysisState::initial(self.cfg.entry(), self.config.min_np);
        self.domain.rename(&mut init);
        self.scheduler.seed(init);

        // Tier 2: the round executor. `intra_jobs <= 1` keeps the
        // historical inline loop (stepping and merging interleaved per
        // item); more jobs step each round's frontier speculatively on
        // pool workers and merge the results in extraction order.
        let executor =
            (self.config.intra_jobs > 1).then(|| RoundExecutor::new(self.config.intra_jobs));
        profile.par_workers = executor.as_ref().map_or(0, RoundExecutor::workers);

        'rounds: loop {
            if self.top.is_some() {
                break;
            }
            // Tier 1: drain the ready frontier (budget-capped; priority
            // ordered when configured).
            let frontier = self.scheduler.drain_frontier();
            if frontier.is_empty() {
                break; // Worklist exhausted: fixpoint.
            }
            profile.rounds += 1;
            profile.frontier_total += frontier.len() as u64;
            profile.frontier_peak = profile.frontier_peak.max(frontier.len());

            match &executor {
                None => {
                    for (_, st) in frontier {
                        if !self.merge_inline(st, timing, &mut profile) {
                            break 'rounds;
                        }
                    }
                }
                Some(exec) => {
                    if !self.round_parallel(exec, frontier, timing, &mut profile) {
                        break 'rounds;
                    }
                }
            }
        }

        let verdict = if let Some(reason) = self.top {
            Verdict::Top { reason }
        } else if let Some(blocked) = self.deadlock {
            Verdict::Deadlock { blocked }
        } else {
            Verdict::Exact
        };
        let result = AnalysisResult {
            verdict,
            matches: self.matches,
            events: self.events.into_values().collect(),
            prints: self
                .prints
                .into_iter()
                .map(|((node, range), value)| PrintFact { node, range, value })
                .collect(),
            leaks: self.leaks.into_iter().collect(),
            steps: self.scheduler.steps(),
            closure_stats: self
                .session
                .closure_delta()
                .since(&self.inline_task_closure)
                .merged(&self.worker_closure),
            trace: Vec::new(),
        };
        self.observer.on_complete(&result);
        profile.total = run_start.elapsed();
        profile.stored = self.scheduler.stored_stats();
        self.observer.on_profile(&profile);
        result
    }

    /// Inline (sequential) processing of one frontier item: count the
    /// step, step the state on this thread, merge immediately — the
    /// historical `tick()` loop body verbatim. Returns `false` when the
    /// round loop must stop (budget, deadline or ⊤).
    fn merge_inline(
        &mut self,
        st: AnalysisState,
        timing: bool,
        profile: &mut EngineProfile,
    ) -> bool {
        if self.top.is_some() {
            return false;
        }
        if let Some(reason) = self.scheduler.count_step() {
            self.give_up(reason);
            return false;
        }
        if self.config.panic_at_step == Some(self.scheduler.steps()) {
            std::panic::panic_any(fault_message(self.scheduler.steps()));
        }
        self.observer.on_step(self.scheduler.steps(), &st);
        // A step with an unblocked set is a transfer step; with every
        // set blocked it is a matching step (match / split / promote).
        let is_transfer = st.psets.iter().any(|p| {
            !matches!(
                self.cfg.node(p.node),
                CfgNode::Send { .. } | CfgNode::Recv { .. } | CfgNode::Exit
            )
        });
        let step_start = timing.then(Instant::now);
        let (successors, actions) = {
            let mut stepper = Stepper::new(self.step_ctx());
            let successors = stepper.step(st);
            (successors, stepper.actions)
        };
        if let Some(t) = step_start {
            let dt = t.elapsed();
            if is_transfer {
                profile.transfer += dt;
            } else {
                profile.matching += dt;
            }
        }
        self.absorb(successors, actions, timing, profile);
        true
    }

    /// One parallel round: clone the frontier states to pool workers
    /// (CoW-cheap), step them speculatively, then merge the results in
    /// extraction order. Returns `false` when the round loop must stop.
    fn round_parallel(
        &mut self,
        exec: &RoundExecutor,
        frontier: Vec<(LocationKey, AnalysisState)>,
        timing: bool,
        profile: &mut EngineProfile,
    ) -> bool {
        // Items that merge this round receive step numbers steps()+1….
        // The injected fault uses the same numbering on the worker, so
        // inline and parallel runs panic with identical messages.
        let base_step = self.scheduler.steps();
        let items: Vec<(u64, (u64, AnalysisState))> = frontier
            .iter()
            .enumerate()
            .map(|(i, (key, st))| (key.index() as u64, (base_step + i as u64 + 1, st.clone())))
            .collect();
        let wait_start = timing.then(Instant::now);
        let caller_before = ClosureStats::snapshot();
        let (slots, rstats) = {
            let ctx = self.step_ctx();
            let panic_at = self.config.panic_at_step;
            let table = mpl_domains::table_snapshot();
            exec.run_round(items, move |_, (ordinal, st): (u64, AnalysisState)| {
                // Workers adopt the coordinator's interner so packed
                // VarIds mean the same thing on every thread; the
                // vocabulary is fully pre-interned, so stepping never
                // grows the table.
                mpl_domains::adopt_table(table.clone());
                if panic_at == Some(ordinal) {
                    std::panic::panic_any(fault_message(ordinal));
                }
                let before = ClosureStats::snapshot();
                let mut stepper = Stepper::new(ctx);
                let successors = stepper.step(st);
                StepOutput {
                    successors,
                    actions: stepper.actions,
                    closure: ClosureStats::snapshot().since(&before),
                }
            })
        };
        if let Some(t) = wait_start {
            profile.round_wait += t.elapsed();
        }
        // Rounds with a single group run inline on this thread; their
        // step work polluted this thread's counters and must not be
        // double counted against the per-task deltas merged below.
        self.inline_task_closure
            .merge(&ClosureStats::snapshot().since(&caller_before));
        profile.par_groups += rstats.groups as u64;
        profile.par_steals += rstats.steals;

        let merge_start = timing.then(Instant::now);
        let nested_before = profile.join_widen + profile.admission;
        let mut keep_going = true;
        for ((_, pre), slot) in frontier.into_iter().zip(slots) {
            if self.top.is_some() {
                keep_going = false;
                break;
            }
            if let Some(reason) = self.scheduler.count_step() {
                self.give_up(reason);
                keep_going = false;
                break;
            }
            match slot {
                Ok(output) => {
                    self.worker_closure.merge(&output.closure);
                    self.observer.on_step(self.scheduler.steps(), &pre);
                    self.absorb(output.successors, output.actions, timing, profile);
                }
                // Re-raise the worker's panic on the coordinating
                // thread, at the step where the sequential loop would
                // have panicked; the request layer's `catch_unwind`
                // turns it into a structured failure.
                Err(failure) => std::panic::panic_any(failure.message),
            }
        }
        if let Some(t) = merge_start {
            let nested = (profile.join_widen + profile.admission) - nested_before;
            profile.round_merge += t.elapsed().saturating_sub(nested);
        }
        keep_going
    }

    /// Merges one stepped item: replays its action log (observer events
    /// and accumulator effects, in step order), then normalizes and
    /// admits its successor states — exactly what the historical loop
    /// did after `step()` returned.
    fn absorb(
        &mut self,
        successors: Vec<AnalysisState>,
        actions: Vec<TaskAction>,
        timing: bool,
        profile: &mut EngineProfile,
    ) {
        for action in actions {
            self.replay(action);
        }
        for mut s in successors {
            let norm_start = timing.then(Instant::now);
            let keep = self.normalize_successor(&mut s);
            if let Some(t) = norm_start {
                profile.join_widen += t.elapsed();
            }
            if !keep {
                continue;
            }
            self.matches.extend(s.matches.iter().cloned());
            if self.is_terminal(&s) {
                self.finish_terminal(&s);
                continue;
            }
            let admit_start = timing.then(Instant::now);
            let rejected = self.scheduler.admit(
                s,
                self.domain,
                &self.session.widen_thresholds,
                &mut *self.observer,
            );
            if let Some(t) = admit_start {
                profile.admission += t.elapsed();
            }
            if let Some(reason) = rejected {
                self.give_up(reason);
            }
        }
    }

    fn replay(&mut self, action: TaskAction) {
        match action {
            TaskAction::Promote { idx, state } => self.observer.on_promote(idx, &state),
            TaskAction::Split { a, b } => self.observer.on_split(&a, &b),
            TaskAction::Match { event } => self.record_match_event(event),
            TaskAction::MatchRejected => self.observer.on_match_rejected(),
            TaskAction::Top { reason } => self.give_up(reason),
            TaskAction::Deadlock { blocked } => {
                if self.deadlock.is_none() {
                    self.deadlock = Some(blocked);
                }
            }
            TaskAction::Print { node, range, value } => self.fold_print(node, range, value),
        }
    }

    /// Folds one evaluated print fact into the per-(node, range) table:
    /// a conflicting value demotes the fact to "not constant".
    fn fold_print(&mut self, node: CfgNodeId, range: String, value: Option<i64>) {
        let key = (node, range);
        match self.prints.get(&key) {
            Some(prev) if *prev != value => {
                self.prints.insert(key, None);
            }
            Some(_) => {}
            None => {
                self.prints.insert(key, value);
            }
        }
    }

    /// Normalizes a successor state in place: closes the constraint
    /// graph, drops infeasible paths and provably-empty sets, merges
    /// compatible sets, renames canonically and re-saturates range
    /// bounds. Returns `false` if the state must be discarded (the ⊤
    /// causes are recorded here).
    fn normalize_successor(&mut self, s: &mut AnalysisState) -> bool {
        // An inconsistent constraint graph marks an infeasible path:
        // under it every range would look empty and the state would
        // collapse to a bogus terminal.
        s.cg.close();
        if s.cg.is_bottom() || s.psets.is_empty() {
            return false; // Infeasible path.
        }
        if !s.drop_empty_psets() {
            // A possibly-empty set would make matching unsound.
            // Keep going only if it never participates in a
            // match; conservatively we continue (matching demands
            // provable non-emptiness anyway).
        }
        let before = s.psets.len();
        self.domain.join(s);
        s.drop_empty_psets();
        if s.psets.len() < before {
            self.observer.on_merge(before, s.psets.len());
        }
        if s.any_vacant_range() {
            self.give_up(TopReason::AbstractionLoss);
            return false;
        }
        if s.psets.len() > self.config.max_psets {
            self.give_up(TopReason::PsetBudget {
                max: self.config.max_psets,
            });
            return false;
        }
        self.domain.rename(s);
        // Re-saturate range bounds against the current facts so
        // loop-invariant aliases (e.g. a wavefront's own `id`)
        // are present before widening intersects alias sets.
        for i in 0..s.psets.len() {
            let mut range = s.psets[i].range.clone();
            range.saturate(&mut s.cg);
            s.psets[i].range = range;
        }
        // Close once more so the state is admitted transitively closed:
        // equal states then share one fingerprint (the O(1) dedup path),
        // and later match probes against it are read-only — no CoW copy.
        s.cg.close();
        true
    }

    fn is_terminal(&self, st: &AnalysisState) -> bool {
        // An empty state is an infeasible path, never a real terminal
        // (a completed analysis always holds [0..np-1] at exit).
        !st.psets.is_empty() && st.psets.iter().all(|p| p.node == self.cfg.exit())
    }

    fn finish_terminal(&mut self, st: &AnalysisState) {
        for p in &st.psets {
            if let Some(pend) = &p.pending {
                self.leaks.insert(pend.node);
            }
        }
        self.observer.on_terminal(st);
    }

    fn record_match_event(&mut self, event: MatchEvent) {
        self.observer.on_match(&event);
        self.events.insert(event.to_string(), event);
    }
}
