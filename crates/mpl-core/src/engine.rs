//! The pCFG dataflow engine (§VI, Fig 4).
//!
//! The engine explores the pCFG lazily along one chosen interleaving
//! (legitimate because the execution model is interleaving-oblivious,
//! §III): unblocked process sets advance deterministically; when all sets
//! are blocked, sends are matched to receives exactly; states are widened
//! at recurring pCFG locations until fixpoint.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

use mpl_cfg::{Cfg, CfgNode, CfgNodeId, EdgeKind};
use mpl_domains::{LinExpr, VarId};
use mpl_lang::ast::{BinOp, Expr, Program, UnOp};
use mpl_procset::{Bound, ProcRange, SubtractOutcome};
use mpl_runtime::CancelToken;

use crate::matcher::{
    CartesianMatcher, MatchOutcome, MatchStrategy, RecvSite, SendSite, SimpleMatcher,
};
use crate::norm::NormCtx;
use crate::state::{AnalysisState, PendingSend};

/// Which client analysis instantiates the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Client {
    /// §VII: simple symbolic send–receive analysis (`var + c`).
    Simple,
    /// §VIII: cartesian topology analysis (adds HSM matching).
    #[default]
    Cartesian,
}

/// Engine configuration.
///
/// Construct through [`AnalysisConfig::builder`] (which validates the
/// knobs) or start from [`AnalysisConfig::default`]. The struct is
/// `#[non_exhaustive]`: fields stay readable everywhere, but literal
/// construction is reserved to this crate so knobs can be added without
/// breaking downstream code.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct AnalysisConfig {
    /// The client analysis.
    pub client: Client,
    /// Assumed lower bound on `np` (the paper's implicit "sufficiently
    /// many processes" regime; patterns like the 1-d shift distinguish
    /// interior processes only when `np` is large enough).
    pub min_np: i64,
    /// Abort (⊤) after this many engine steps.
    pub max_steps: u64,
    /// Abort (⊤) if more than this many process sets coexist — the
    /// paper's parameter `p` bounding pCFG node width.
    pub max_psets: usize,
    /// Allow a blocked send to be buffered (depth 1) so the set can
    /// advance — the §X aggregation needed for self-exchange patterns.
    pub allow_pending_sends: bool,
    /// Number of visits to a recurring pCFG location explored exactly
    /// before widening kicks in (delayed widening). Lets bounded concrete
    /// chains (e.g. a 4-block stencil on a 4x4 grid) finish without
    /// destructive merging while symbolic loops still converge.
    pub widen_delay: u32,
    /// Threshold ladder for constraint-graph widening: instead of jumping
    /// straight to ±∞, unstable bounds are relaxed to the next threshold.
    pub widen_thresholds: Vec<i64>,
    /// Collect a human-readable Fig 5-style trace.
    pub trace: bool,
    /// Cooperative cancellation: when set, the worklist loop polls the
    /// token at a bounded step interval and ends the analysis with a
    /// sound ⊤ ([`TopReason::Deadline`]) once it fires. `None` (the
    /// default) means the run is bounded only by the step budget.
    pub cancel: Option<CancelToken>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            client: Client::Cartesian,
            min_np: 4,
            max_steps: 20_000,
            max_psets: 12,
            allow_pending_sends: true,
            widen_delay: 6,
            widen_thresholds: mpl_domains::DEFAULT_WIDEN_THRESHOLDS.to_vec(),
            trace: false,
            cancel: None,
        }
    }
}

impl AnalysisConfig {
    /// A builder seeded with the defaults.
    #[must_use]
    pub fn builder() -> AnalysisConfigBuilder {
        AnalysisConfigBuilder {
            config: AnalysisConfig::default(),
        }
    }
}

/// A rejected [`AnalysisConfigBuilder`] knob combination.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `max_steps` must be at least 1 — a zero step budget would ⊤ every
    /// program before the first transfer function.
    ZeroStepBudget,
    /// `max_psets` must be at least 1 — the initial state already holds
    /// one process set.
    ZeroPsetBudget,
    /// `min_np` must be at least 1 (the paper's "sufficiently many
    /// processes" regime assumes a non-empty machine).
    MinNpTooSmall {
        /// The rejected value.
        got: i64,
    },
    /// The widening threshold ladder must be sorted ascending, or the
    /// snap-to-next-threshold relaxation would not terminate.
    UnsortedThresholds,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroStepBudget => f.write_str("max_steps must be >= 1"),
            ConfigError::ZeroPsetBudget => f.write_str("max_psets must be >= 1"),
            ConfigError::MinNpTooSmall { got } => {
                write!(f, "min_np must be >= 1 (got {got})")
            }
            ConfigError::UnsortedThresholds => {
                f.write_str("widen_thresholds must be sorted ascending")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Typed, validating constructor for [`AnalysisConfig`] — the supported
/// way to configure the engine from other crates.
///
/// ```
/// use mpl_core::{AnalysisConfig, Client};
/// let config = AnalysisConfig::builder()
///     .client(Client::Simple)
///     .min_np(8)
///     .build()
///     .expect("valid config");
/// assert_eq!(config.min_np, 8);
/// assert!(AnalysisConfig::builder().max_steps(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisConfigBuilder {
    config: AnalysisConfig,
}

impl AnalysisConfigBuilder {
    /// Sets the client analysis.
    #[must_use]
    pub fn client(mut self, client: Client) -> Self {
        self.config.client = client;
        self
    }

    /// Sets the assumed lower bound on `np`.
    #[must_use]
    pub fn min_np(mut self, min_np: i64) -> Self {
        self.config.min_np = min_np;
        self
    }

    /// Sets the engine step budget.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.config.max_steps = max_steps;
        self
    }

    /// Sets the pCFG node-width budget (the paper's parameter `p`).
    #[must_use]
    pub fn max_psets(mut self, max_psets: usize) -> Self {
        self.config.max_psets = max_psets;
        self
    }

    /// Enables or disables depth-1 send buffering (§X aggregation).
    #[must_use]
    pub fn allow_pending_sends(mut self, allow: bool) -> Self {
        self.config.allow_pending_sends = allow;
        self
    }

    /// Sets the number of exact visits before widening kicks in.
    #[must_use]
    pub fn widen_delay(mut self, widen_delay: u32) -> Self {
        self.config.widen_delay = widen_delay;
        self
    }

    /// Sets the widening threshold ladder (must be sorted ascending).
    #[must_use]
    pub fn widen_thresholds(mut self, thresholds: Vec<i64>) -> Self {
        self.config.widen_thresholds = thresholds;
        self
    }

    /// Enables or disables the Fig 5-style trace.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.config.trace = trace;
        self
    }

    /// Attaches a cooperative cancellation token (deadline support). The
    /// engine polls it every few worklist steps and returns a sound ⊤
    /// ([`TopReason::Deadline`]) once it fires.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.config.cancel = Some(token);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when a knob is out of range (zero
    /// budgets, `min_np < 1`, unsorted thresholds).
    pub fn build(self) -> Result<AnalysisConfig, ConfigError> {
        let c = self.config;
        if c.max_steps == 0 {
            return Err(ConfigError::ZeroStepBudget);
        }
        if c.max_psets == 0 {
            return Err(ConfigError::ZeroPsetBudget);
        }
        if c.min_np < 1 {
            return Err(ConfigError::MinNpTooSmall { got: c.min_np });
        }
        if c.widen_thresholds.windows(2).any(|w| w[0] > w[1]) {
            return Err(ConfigError::UnsortedThresholds);
        }
        Ok(c)
    }
}

/// Why the analysis returned ⊤, as a typed cause. `Display` renders the
/// exact human-readable strings the engine has always reported, so logs
/// and golden files are unchanged while callers (the `--json` corpus
/// output, tests) can match on the cause structurally instead of by
/// substring.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopReason {
    /// The engine step budget ([`AnalysisConfig::max_steps`]) ran out.
    StepBudget,
    /// More process sets coexisted than [`AnalysisConfig::max_psets`].
    PsetBudget {
        /// The configured bound that was exceeded.
        max: usize,
    },
    /// Widening relaxed a process-set bound all the way to ±∞ — the
    /// range abstraction lost the set.
    AbstractionLoss,
    /// All sets blocked on communication and no exact send–receive
    /// match exists (matching must be exact — §VI).
    MatchFailure {
        /// Display form of the blocked state.
        state: String,
    },
    /// An `id`-dependent branch condition did not split the process
    /// range into provable sub-ranges.
    SplitFailure {
        /// The condition that could not be split.
        cond: String,
    },
    /// A branch condition was not provably uniform across the set, so
    /// steering the whole set down one edge would be unsound.
    NonUniformCondition {
        /// The offending condition.
        cond: String,
    },
    /// The match-ambiguity case split recursed past its depth bound.
    SplitDepthExceeded,
    /// The run's cooperative deadline ([`AnalysisConfig::cancel`]) fired
    /// before a fixpoint was reached. Sound by construction: the engine
    /// stops with ⊤ and claims nothing about unexplored behaviour.
    Deadline,
}

impl TopReason {
    /// A stable, machine-readable cause code (used by the corpus JSON
    /// output; kebab-case, never localized).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            TopReason::StepBudget => "step-budget",
            TopReason::PsetBudget { .. } => "pset-budget",
            TopReason::AbstractionLoss => "abstraction-loss",
            TopReason::MatchFailure { .. } => "match-failure",
            TopReason::SplitFailure { .. } => "split-failure",
            TopReason::NonUniformCondition { .. } => "non-uniform-condition",
            TopReason::SplitDepthExceeded => "split-depth-exceeded",
            TopReason::Deadline => "deadline",
        }
    }
}

impl fmt::Display for TopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopReason::StepBudget => f.write_str("step budget exceeded"),
            TopReason::PsetBudget { max } => write!(f, "more than {max} process sets"),
            TopReason::AbstractionLoss => f.write_str("widening lost a process-set bound"),
            TopReason::MatchFailure { state } => {
                write!(f, "cannot match blocked communication in {state}")
            }
            TopReason::SplitFailure { cond } => {
                write!(f, "cannot split process set on condition `{cond}`")
            }
            TopReason::NonUniformCondition { cond } => write!(
                f,
                "condition `{cond}` is not provably uniform across the process set"
            ),
            TopReason::SplitDepthExceeded => f.write_str("ambiguity-split depth exceeded"),
            TopReason::Deadline => f.write_str("analysis deadline exceeded"),
        }
    }
}

/// How the analysis ended.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Verdict {
    /// Fixpoint reached with every send–receive interaction matched
    /// exactly: the reported topology is the application's communication
    /// topology.
    Exact,
    /// The analysis proved that blocked receives can never be satisfied —
    /// a guaranteed deadlock (§I error detection).
    Deadlock {
        /// The blocked (CFG node, process range) pairs.
        blocked: Vec<(CfgNodeId, String)>,
    },
    /// The analysis gave up (⊤): the pattern exceeds the client
    /// abstraction or the framework's exact-matching requirement.
    Top {
        /// Why, as a typed cause.
        reason: TopReason,
    },
}

/// One recorded send–receive match with its process subsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchEvent {
    /// The send statement.
    pub send_node: CfgNodeId,
    /// The receive statement.
    pub recv_node: CfgNodeId,
    /// Matched sender ranks (display form).
    pub s_procs: String,
    /// Matched receiver ranks (display form).
    pub r_procs: String,
    /// The shape of the match.
    pub kind: crate::matcher::MatchKind,
    /// The sender rank, when the matched senders are one known constant.
    pub s_const: Option<i64>,
    /// The receiver rank, when the matched receivers are one known
    /// constant.
    pub r_const: Option<i64>,
}

impl fmt::Display for MatchEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} -> {}@{}",
            self.send_node, self.s_procs, self.recv_node, self.r_procs
        )
    }
}

/// A constant-propagation fact at a `print` statement (the Fig 2 client's
/// observable output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrintFact {
    /// The print statement.
    pub node: CfgNodeId,
    /// The process range executing it (display form).
    pub range: String,
    /// The printed value, if proven constant.
    pub value: Option<i64>,
}

/// The result of a pCFG analysis.
#[derive(Debug, Clone)]
pub struct AnalysisResult {
    /// Terminal verdict.
    pub verdict: Verdict,
    /// All established (send node, recv node) matches — the static
    /// communication topology at statement granularity.
    pub matches: BTreeSet<(CfgNodeId, CfgNodeId)>,
    /// Matches with their process subsets.
    pub events: Vec<MatchEvent>,
    /// Constant-propagation facts at prints.
    pub prints: Vec<PrintFact>,
    /// Send statements whose messages are provably never received
    /// (message leaks, §I error detection).
    pub leaks: Vec<CfgNodeId>,
    /// Engine steps taken.
    pub steps: u64,
    /// Closure operations performed during this run (full and incremental
    /// counts with average variable sizes — the §IX profile quantities).
    pub closure_stats: mpl_domains::ClosureStats,
    /// Optional trace (when `AnalysisConfig::trace`).
    pub trace: Vec<String>,
}

impl AnalysisResult {
    /// A bare ⊤ result that claims nothing: no matches, no leaks, no
    /// prints, zero steps. This is the sound degenerate answer the batch
    /// layer reports for jobs that never produced (or whose fault mode
    /// suppressed) a real engine run — deadline expiries in particular,
    /// where any partial progress would be wall-clock-dependent and
    /// therefore nondeterministic.
    #[must_use]
    pub fn top(reason: TopReason) -> AnalysisResult {
        AnalysisResult {
            verdict: Verdict::Top { reason },
            matches: BTreeSet::new(),
            events: Vec::new(),
            prints: Vec::new(),
            leaks: Vec::new(),
            steps: 0,
            closure_stats: mpl_domains::ClosureStats::default(),
            trace: Vec::new(),
        }
    }

    /// True if the analysis converged with exact matching.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.verdict == Verdict::Exact
    }

    /// The constant printed at `node`, if every reaching process set
    /// prints the same proven constant.
    #[must_use]
    pub fn printed_constant(&self, node: CfgNodeId) -> Option<i64> {
        let mut vals = self
            .prints
            .iter()
            .filter(|p| p.node == node)
            .map(|p| p.value);
        let first = vals.next()??;
        for v in vals {
            if v != Some(first) {
                return None;
            }
        }
        Some(first)
    }
}

/// How many worklist steps may pass between two polls of the
/// cancellation token — the bound behind the "engine observes
/// cancellation within a bounded number of steps" guarantee.
pub const CANCEL_CHECK_STEPS: u64 = 8;

/// Analyzes `program` (builds its CFG internally).
#[must_use]
pub fn analyze(program: &Program, config: &AnalysisConfig) -> AnalysisResult {
    analyze_cfg(&Cfg::build(program), config)
}

/// Analyzes an already-built CFG (so node ids can be shared with the
/// simulator or other tooling).
#[must_use]
pub fn analyze_cfg(cfg: &Cfg, config: &AnalysisConfig) -> AnalysisResult {
    Engine::new(cfg, config.clone()).run()
}

struct Engine<'a> {
    cfg: &'a Cfg,
    norm: NormCtx,
    config: AnalysisConfig,
    session: crate::session::AnalysisSession,
    assumes: Vec<Expr>,
    matches: BTreeSet<(CfgNodeId, CfgNodeId)>,
    events: BTreeMap<String, MatchEvent>,
    prints: BTreeMap<(CfgNodeId, String), Option<i64>>,
    leaks: BTreeSet<CfgNodeId>,
    trace: Vec<String>,
    deadlock: Option<Vec<(CfgNodeId, String)>>,
    top: Option<TopReason>,
    steps: u64,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a Cfg, config: AnalysisConfig) -> Engine<'a> {
        let norm = NormCtx::from_cfg(cfg);
        let assumes = cfg
            .node_ids()
            .filter_map(|id| match cfg.node(id) {
                CfgNode::Assume(e) => Some(e.clone()),
                _ => None,
            })
            .collect();
        let session = crate::session::AnalysisSession::new(config.widen_thresholds.clone());
        Engine {
            cfg,
            norm,
            config,
            session,
            assumes,
            matches: BTreeSet::new(),
            events: BTreeMap::new(),
            prints: BTreeMap::new(),
            leaks: BTreeSet::new(),
            trace: Vec::new(),
            deadlock: None,
            top: None,
            steps: 0,
        }
    }

    fn matcher(&self) -> Box<dyn MatchStrategy> {
        match self.config.client {
            Client::Simple => Box::new(SimpleMatcher),
            Client::Cartesian => Box::new(CartesianMatcher),
        }
    }

    fn run(mut self) -> AnalysisResult {
        let mut stored: HashMap<Vec<(CfgNodeId, bool)>, (AnalysisState, u32)> = HashMap::new();
        let mut work: VecDeque<AnalysisState> = VecDeque::new();

        let mut init = AnalysisState::initial(self.cfg.entry(), self.config.min_np);
        init.renumber_canonical();
        stored.insert(init.location_key(), (init.clone(), 1));
        work.push_back(init);

        while let Some(st) = work.pop_front() {
            if self.top.is_some() {
                break;
            }
            self.steps += 1;
            if self.steps > self.config.max_steps {
                self.top = Some(TopReason::StepBudget);
                break;
            }
            // Cooperative deadline: one cheap poll every
            // CANCEL_CHECK_STEPS worklist steps (starting at step 1, so
            // a pre-cancelled token is observed before any real work).
            if self.steps % CANCEL_CHECK_STEPS == 1 {
                if let Some(token) = &self.config.cancel {
                    if token.is_cancelled() {
                        self.top = Some(TopReason::Deadline);
                        break;
                    }
                }
            }
            if self.config.trace {
                self.trace.push(format!("step {}: {st}", self.steps));
            }
            let successors = self.step(st);
            for mut s in successors {
                // An inconsistent constraint graph marks an infeasible
                // path: under it every range would look empty and the
                // state would collapse to a bogus terminal.
                s.cg.close();
                if s.cg.is_bottom() || s.psets.is_empty() {
                    continue; // Infeasible path.
                }
                if !s.drop_empty_psets() {
                    // A possibly-empty set would make matching unsound.
                    // Keep going only if it never participates in a
                    // match; conservatively we continue (matching demands
                    // provable non-emptiness anyway).
                }
                s.merge_psets();
                s.drop_empty_psets();
                if s.any_vacant_range() {
                    self.top = Some(TopReason::AbstractionLoss);
                    continue;
                }
                if s.psets.len() > self.config.max_psets {
                    self.top = Some(TopReason::PsetBudget {
                        max: self.config.max_psets,
                    });
                    continue;
                }
                s.renumber_canonical();
                // Re-saturate range bounds against the current facts so
                // loop-invariant aliases (e.g. a wavefront's own `id`)
                // are present before widening intersects alias sets.
                for i in 0..s.psets.len() {
                    let mut range = s.psets[i].range.clone();
                    range.saturate(&mut s.cg);
                    s.psets[i].range = range;
                }
                self.matches.extend(s.matches.iter().cloned());
                if self.is_terminal(&s) {
                    self.finish_terminal(&s);
                    continue;
                }
                let key = s.location_key();
                match stored.get(&key) {
                    None => {
                        stored.insert(key, (s.clone(), 1));
                        work.push_back(s);
                    }
                    Some((old, visits)) => {
                        let visits = visits + 1;
                        if visits <= self.config.widen_delay {
                            // Delayed widening: explore the state exactly
                            // (bounded concrete chains finish precisely),
                            // but stop if nothing changed.
                            if s.same_as(old) {
                                continue;
                            }
                            stored.insert(key, (s.clone(), visits));
                            work.push_back(s);
                            continue;
                        }
                        let widened = old.widen_with_thresholds(&s, &self.session.widen_thresholds);
                        if widened.same_as(old) {
                            continue; // Converged at this location.
                        }
                        if widened.any_vacant_range() {
                            self.top = Some(TopReason::AbstractionLoss);
                            continue;
                        }
                        stored.insert(key, (widened.clone(), visits));
                        work.push_back(widened);
                    }
                }
            }
        }

        let verdict = if let Some(reason) = self.top {
            Verdict::Top { reason }
        } else if let Some(blocked) = self.deadlock {
            Verdict::Deadlock { blocked }
        } else {
            Verdict::Exact
        };
        AnalysisResult {
            verdict,
            matches: self.matches,
            events: self.events.into_values().collect(),
            prints: self
                .prints
                .into_iter()
                .map(|((node, range), value)| PrintFact { node, range, value })
                .collect(),
            leaks: self.leaks.into_iter().collect(),
            steps: self.steps,
            closure_stats: self.session.closure_delta(),
            trace: self.trace,
        }
    }

    fn is_terminal(&self, st: &AnalysisState) -> bool {
        // An empty state is an infeasible path, never a real terminal
        // (a completed analysis always holds [0..np-1] at exit).
        !st.psets.is_empty() && st.psets.iter().all(|p| p.node == self.cfg.exit())
    }

    fn finish_terminal(&mut self, st: &AnalysisState) {
        for p in &st.psets {
            if let Some(pend) = &p.pending {
                self.leaks.insert(pend.node);
            }
        }
        if self.config.trace {
            self.trace.push(format!("terminal: {st}"));
        }
    }

    /// One engine step from `st`: returns successor states.
    fn step(&mut self, st: AnalysisState) -> Vec<AnalysisState> {
        self.step_inner(st, 0)
    }

    fn step_inner(&mut self, st: AnalysisState, depth: u32) -> Vec<AnalysisState> {
        // 1. Advance an unblocked process set.
        let unblocked = st.psets.iter().position(|p| {
            !matches!(
                self.cfg.node(p.node),
                CfgNode::Send { .. } | CfgNode::Recv { .. } | CfgNode::Exit
            )
        });
        if let Some(idx) = unblocked {
            return self.advance(st, idx);
        }
        // 2. All blocked: match sends to receives.
        if let Some(next) = self.match_step(&st) {
            return vec![next];
        }
        // 3. Fork the state on an undecidable match comparison (the §VI
        //    split driven by partially-matched subsets).
        if let Some(states) = self.ambiguity_split(&st, depth) {
            return states;
        }
        // 4. Buffer a send (depth-1 aggregation).
        if self.config.allow_pending_sends {
            let promotable = st.psets.iter().position(|p| {
                matches!(self.cfg.node(p.node), CfgNode::Send { .. }) && p.pending.is_none()
            });
            if let Some(idx) = promotable {
                if self.config.trace {
                    self.trace
                        .push(format!("promote pending send on pset {idx}: {st}"));
                }
                let mut s = st;
                let CfgNode::Send { value, dest } = self.cfg.node(s.psets[idx].node).clone() else {
                    unreachable!()
                };
                s.psets[idx].pending = Some(PendingSend {
                    node: s.psets[idx].node,
                    value,
                    dest,
                });
                s.psets[idx].node = self.cfg.sole_succ(s.psets[idx].node);
                return vec![s];
            }
        }
        // 5. Stuck. Pending sends at exit are leaks; receives that can
        //    never be satisfied are a deadlock; anything else is ⊤.
        let any_comm_blocked = st.psets.iter().any(|p| {
            matches!(
                self.cfg.node(p.node),
                CfgNode::Send { .. } | CfgNode::Recv { .. }
            )
        });
        if !any_comm_blocked {
            // Everyone is at exit but pendings remain: terminal (leaks
            // recorded by finish_terminal).
            return vec![st];
        }
        let has_send_capability = st
            .psets
            .iter()
            .any(|p| p.pending.is_some() || matches!(self.cfg.node(p.node), CfgNode::Send { .. }));
        if !has_send_capability {
            // Only receives outstanding and nothing can ever send:
            // guaranteed deadlock (matching so far was exact).
            let blocked = st
                .psets
                .iter()
                .filter(|p| !matches!(self.cfg.node(p.node), CfgNode::Exit))
                .map(|p| (p.node, p.range.to_string()))
                .collect();
            if self.deadlock.is_none() {
                self.deadlock = Some(blocked);
            }
            return Vec::new();
        }
        self.top = Some(TopReason::MatchFailure {
            state: st.to_string(),
        });
        Vec::new()
    }

    /// Advances the unblocked pset `idx` one CFG step.
    fn advance(&mut self, mut st: AnalysisState, idx: usize) -> Vec<AnalysisState> {
        let node = st.psets[idx].node;
        match self.cfg.node(node).clone() {
            CfgNode::Entry | CfgNode::Skip => {
                st.psets[idx].node = self.cfg.sole_succ(node);
                vec![st]
            }
            CfgNode::Assign { name, value } => {
                self.transfer_assign(&mut st, idx, &name, &value);
                st.psets[idx].node = self.cfg.sole_succ(node);
                vec![st]
            }
            CfgNode::Print(e) => {
                self.record_print(&mut st, idx, node, &e);
                st.psets[idx].node = self.cfg.sole_succ(node);
                vec![st]
            }
            CfgNode::Assume(e) => {
                self.transfer_assume(&mut st, idx, &e);
                st.psets[idx].node = self.cfg.sole_succ(node);
                vec![st]
            }
            CfgNode::Branch { cond } => self.branch(st, idx, &cond),
            CfgNode::Send { .. } | CfgNode::Recv { .. } | CfgNode::Exit => {
                unreachable!("blocked node reached advance")
            }
        }
    }

    /// True if `expr` provably evaluates to the same value on every
    /// process of the set: it avoids `id` and only reads inputs and
    /// proven-uniform variables.
    fn is_uniform_expr(&self, st: &AnalysisState, pset: mpl_domains::PsetId, expr: &Expr) -> bool {
        !expr.mentions_id()
            && expr
                .variables()
                .iter()
                .all(|n| self.norm.is_input(n) || st.uniform.contains(&self.norm.var(pset, n)))
    }

    /// Replaces variables provably equal to `id + k` by that expression,
    /// so conditions like `x < np - 1` after `x := id` split correctly.
    fn subst_id_aliases(
        &self,
        st: &mut AnalysisState,
        pset: mpl_domains::PsetId,
        expr: &Expr,
    ) -> Expr {
        match expr {
            Expr::Var(name) if !self.norm.is_input(name) => {
                let v = self.norm.var(pset, name);
                match st.cg.eq_offset(v, VarId::id_of(pset)) {
                    Some(0) => Expr::Id,
                    Some(k) => Expr::binary(BinOp::Add, Expr::Id, Expr::Int(k)),
                    None => expr.clone(),
                }
            }
            Expr::Binary(op, l, r) => Expr::binary(
                *op,
                self.subst_id_aliases(st, pset, l),
                self.subst_id_aliases(st, pset, r),
            ),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(self.subst_id_aliases(st, pset, e))),
            _ => expr.clone(),
        }
    }

    fn transfer_assign(&mut self, st: &mut AnalysisState, idx: usize, name: &str, value: &Expr) {
        let pset = st.psets[idx].id;
        let var = self.norm.var(pset, name);
        if self.is_uniform_expr(st, pset, value) {
            st.uniform.insert(var);
        } else {
            st.uniform.remove(&var);
        }
        st.resaturate_ranges();
        match self.norm.linearize(value, pset) {
            Some(lin) => {
                let shift = (lin.var.as_ref() == Some(&var)).then_some(lin.offset);
                st.cg.assign(var, &lin);
                st.rewrite_aliases_on_assign(var, shift);
                // Flat constant environment.
                match shift {
                    Some(c) => {
                        if let Some(old) = st.consts.const_of(var) {
                            st.consts.set_const(var, old + c);
                        } else {
                            st.consts.set_unknown(var);
                        }
                    }
                    None => {
                        let cval = lin.as_constant().or_else(|| {
                            lin.var
                                .as_ref()
                                .and_then(|v| st.consts.const_of(v))
                                .map(|c| c + lin.offset)
                        });
                        match cval {
                            Some(c) => st.consts.set_const(var, c),
                            None => st.consts.set_unknown(var),
                        }
                    }
                }
            }
            None => {
                // Non-linear: fall back to constant evaluation.
                match self.norm.eval_const(value, pset, &st.consts) {
                    Some(c) => {
                        st.cg.assign(var, &LinExpr::constant(c));
                        st.consts.set_const(var, c);
                    }
                    None => {
                        st.cg.assign_unknown(var);
                        st.consts.set_unknown(var);
                    }
                }
                st.rewrite_aliases_on_assign(var, None);
            }
        }
    }

    fn transfer_assume(&mut self, st: &mut AnalysisState, idx: usize, e: &Expr) {
        let pset = st.psets[idx].id;
        let refs = self.norm.refinements(e, pset, false);
        self.norm.apply_refinements(&mut st.cg, &refs);
        // Equalities with one linear side and one constant-evaluable side
        // (e.g. `np = nrows * ncols` with concrete dims).
        if let Expr::Binary(BinOp::Eq, l, r) = e {
            for (a, b) in [(l, r), (r, l)] {
                if let (Some(lin), Some(c)) = (
                    self.norm.linearize(a, pset),
                    self.norm.eval_const(b, pset, &st.consts),
                ) {
                    if let Some(v) = &lin.var {
                        st.cg.assert_eq_const(v, c - lin.offset);
                    }
                }
            }
        }
    }

    fn record_print(&mut self, st: &mut AnalysisState, idx: usize, node: CfgNodeId, e: &Expr) {
        let pset = st.psets[idx].id;
        let value = self.norm.eval_const(e, pset, &st.consts).or_else(|| {
            self.norm
                .linearize(e, pset)
                .and_then(|lin| st.cg.eval_expr(&lin))
        });
        let key = (node, st.psets[idx].range.to_string());
        match self.prints.get(&key) {
            Some(prev) if *prev != value => {
                self.prints.insert(key, None);
            }
            Some(_) => {}
            None => {
                self.prints.insert(key, value);
            }
        }
    }

    fn branch(&mut self, st: AnalysisState, idx: usize, cond: &Expr) -> Vec<AnalysisState> {
        let t_succ = self
            .cfg
            .succ_along(st.psets[idx].node, EdgeKind::True)
            .expect("branch true edge");
        let f_succ = self
            .cfg
            .succ_along(st.psets[idx].node, EdgeKind::False)
            .expect("branch false edge");

        // Rewrite id-aliased variables so `x := id; if x < k` splits like
        // an id-branch.
        let cond = {
            let mut probe = st.clone();
            let pset = st.psets[idx].id;
            self.subst_id_aliases(&mut probe, pset, cond)
        };
        let cond = &cond;

        // (a) id-dependent branch. A provably-singleton set has a single
        // `id` value, so the condition is uniform over the set and the
        // decide/refine machinery below applies (its refinements
        // constrain the set's `id` variable directly). Larger sets split.
        let singleton = {
            let mut probe = st.cg.clone();
            st.psets[idx].range.is_singleton(&mut probe)
        };
        if cond.mentions_id() && !singleton {
            let mut s = st.clone();
            if let Some((t_parts, f_parts)) = self.split_on_id(&mut s, idx, cond) {
                let mut parts: Vec<(ProcRange, CfgNodeId, bool)> = Vec::new();
                for r in t_parts {
                    parts.push((r, t_succ, true));
                }
                for r in f_parts {
                    parts.push((r, f_succ, true));
                }
                s.split_pset(idx, parts);
                return vec![s];
            }
            self.top = Some(TopReason::SplitFailure {
                cond: cond.to_string(),
            });
            return Vec::new();
        }

        // Soundness gate: a whole (non-singleton) set may take one branch
        // edge only if the condition provably evaluates identically on
        // every member.
        let pset = st.psets[idx].id;
        if !singleton && !cond.mentions_id() && !self.is_uniform_expr(&st, pset, cond) {
            self.top = Some(TopReason::NonUniformCondition {
                cond: cond.to_string(),
            });
            return Vec::new();
        }

        // (b) uniform condition: decide if possible.
        if let Some(truth) = self.decide(&st, pset, cond) {
            let mut s = st;
            let refs = self.norm.refinements(cond, pset, !truth);
            if !self.refine_or_drop_empty(&mut s, &refs) {
                return Vec::new();
            }
            if let Some(i) = s.index_of(pset) {
                s.psets[i].node = if truth { t_succ } else { f_succ };
            }
            return vec![s];
        }

        // (c) undecided: explore both outcomes.
        let mut out = Vec::new();
        for (truth, succ) in [(true, t_succ), (false, f_succ)] {
            let mut s = st.clone();
            let refs = self.norm.refinements(cond, pset, !truth);
            if !self.refine_or_drop_empty(&mut s, &refs) {
                continue;
            }
            if let Some(i) = s.index_of(pset) {
                s.psets[i].node = succ;
                out.push(s);
            }
        }
        out
    }

    /// Applies comparison refinements to the state. A refinement that
    /// contradicts some *other* process set's `id` bounds proves that set
    /// empty under this path (e.g. the Fig 5 loop-exit edge `i = np`
    /// emptying the blocked receivers `[i..np-1]`): such sets are deleted
    /// and the refinement retried. Returns `false` if the path is
    /// genuinely infeasible (the branching set's own facts contradict).
    fn refine_or_drop_empty(
        &self,
        st: &mut AnalysisState,
        refs: &[(LinExpr, LinExpr, crate::norm::RelOp)],
    ) -> bool {
        loop {
            let mut probe = st.cg.clone();
            self.norm.apply_refinements(&mut probe, refs);
            probe.close();
            if !probe.is_bottom() {
                st.cg = probe;
                return true;
            }
            // Find a process set whose removal restores consistency.
            let mut removed = false;
            for i in 0..st.psets.len() {
                let victim = st.psets[i].id;
                let mut without = st.cg.clone();
                without.drop_namespace(victim);
                self.norm.apply_refinements(&mut without, refs);
                without.close();
                if !without.is_bottom() {
                    // `victim` is provably empty under the refinement.
                    let _ = victim;
                    st.remove_pset(i);
                    removed = true;
                    break;
                }
            }
            if !removed {
                return false;
            }
        }
    }

    /// Decides a set-uniform condition when provable.
    fn decide(&self, st: &AnalysisState, pset: mpl_domains::PsetId, cond: &Expr) -> Option<bool> {
        if let Some(c) = self.norm.eval_const(cond, pset, &st.consts) {
            return Some(c != 0);
        }
        // Single comparison decidable from the constraint graph.
        let (op, l, r) = match cond {
            Expr::Binary(op, l, r) if op.is_boolean() => (*op, l, r),
            Expr::Unary(UnOp::Not, inner) => {
                return self.decide(st, pset, inner).map(|b| !b);
            }
            _ => return None,
        };
        let mut cg = st.cg.clone();
        let (le, re) = (
            self.norm.linearize_resolved(l, pset, &st.consts, &mut cg)?,
            self.norm.linearize_resolved(r, pset, &st.consts, &mut cg)?,
        );
        let cmp = cg.compare_exprs(&le, &re);
        use std::cmp::Ordering::{Equal, Greater, Less};
        match op {
            BinOp::Eq => match cmp {
                Some(Equal) => Some(true),
                Some(Less | Greater) => Some(false),
                None => None,
            },
            BinOp::Ne => match cmp {
                Some(Equal) => Some(false),
                Some(Less | Greater) => Some(true),
                None => None,
            },
            BinOp::Le => {
                if cg.proves_le(&le, &re) {
                    Some(true)
                } else if cg.proves_le(&re.plus(1), &le) {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Lt => {
                if cg.proves_le(&le.plus(1), &re) {
                    Some(true)
                } else if cg.proves_le(&re, &le) {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Ge => {
                if cg.proves_le(&re, &le) {
                    Some(true)
                } else if cg.proves_le(&le.plus(1), &re) {
                    Some(false)
                } else {
                    None
                }
            }
            BinOp::Gt => {
                if cg.proves_le(&re.plus(1), &le) {
                    Some(true)
                } else if cg.proves_le(&le, &re) {
                    Some(false)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Splits pset `idx`'s range by an id-comparison. Returns
    /// (true-parts, false-parts).
    #[allow(clippy::type_complexity)]
    fn split_on_id(
        &self,
        st: &mut AnalysisState,
        idx: usize,
        cond: &Expr,
    ) -> Option<(Vec<ProcRange>, Vec<ProcRange>)> {
        let pset = st.psets[idx].id;
        if let Expr::Unary(UnOp::Not, inner) = cond {
            // ¬c: swap the split sides.
            return self.split_on_id(st, idx, inner).map(|(t, f)| (f, t));
        }
        let (op, l, r) = match cond {
            Expr::Binary(op, l, r) if op.is_boolean() => (*op, l.as_ref(), r.as_ref()),
            _ => return None,
        };
        let consts = st.consts.clone();
        let (le, re) = (
            self.norm.linearize_resolved(l, pset, &consts, &mut st.cg)?,
            self.norm.linearize_resolved(r, pset, &consts, &mut st.cg)?,
        );
        let idv = VarId::id_of(pset);
        // Normalize to `id REL e`.
        let (e, op) = if le.var == Some(idv) && re.var != Some(idv) {
            (re.plus(-le.offset), op)
        } else if re.var == Some(idv) && le.var != Some(idv) {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => other,
            };
            (le.plus(-re.offset), flipped)
        } else {
            return None;
        };
        // The non-id side must itself be uniform across the set, or the
        // computed sub-ranges would differ per process.
        if let Some(v) = e.var {
            if v.namespace().is_some() && !st.uniform.contains(&v) {
                return None;
            }
        }
        let range = st.psets[idx].range.clone();
        match op {
            BinOp::Eq => self.split_eq(st, &range, e),
            BinOp::Ne => self.split_eq(st, &range, e).map(|(t, f)| (f, t)),
            BinOp::Le => self.split_le(st, &range, e),
            BinOp::Lt => self.split_le(st, &range, e.plus(-1)),
            BinOp::Ge => self.split_le(st, &range, e.plus(-1)).map(|(t, f)| (f, t)),
            BinOp::Gt => self.split_le(st, &range, e).map(|(t, f)| (f, t)),
            _ => None,
        }
    }

    /// Splits `range` by `id = e`.
    #[allow(clippy::type_complexity)]
    fn split_eq(
        &self,
        st: &mut AnalysisState,
        range: &ProcRange,
        e: LinExpr,
    ) -> Option<(Vec<ProcRange>, Vec<ProcRange>)> {
        let mut eb = Bound::of(e);
        eb.saturate(&mut st.cg);
        let singleton = ProcRange::new(eb.clone(), eb.clone());
        if eb.provably_eq(&mut st.cg, &range.lb) {
            let rest = ProcRange::new(range.lb.plus(1), range.ub.clone());
            return Some((vec![singleton], vec![rest]));
        }
        if eb.provably_eq(&mut st.cg, &range.ub) {
            let rest = ProcRange::new(range.lb.clone(), range.ub.plus(-1));
            return Some((vec![singleton], vec![rest]));
        }
        // Strictly inside?
        if range.lb.provably_lt(&mut st.cg, &eb) && eb.provably_lt(&mut st.cg, &range.ub) {
            let low = ProcRange::new(range.lb.clone(), eb.plus(-1));
            let high = ProcRange::new(eb.plus(1), range.ub.clone());
            return Some((vec![singleton], vec![low, high]));
        }
        // Provably outside?
        if eb.provably_lt(&mut st.cg, &range.lb) || range.ub.provably_lt(&mut st.cg, &eb) {
            return Some((Vec::new(), vec![range.clone()]));
        }
        None
    }

    /// Splits `range` by `id <= e`.
    #[allow(clippy::type_complexity)]
    fn split_le(
        &self,
        st: &mut AnalysisState,
        range: &ProcRange,
        e: LinExpr,
    ) -> Option<(Vec<ProcRange>, Vec<ProcRange>)> {
        let mut eb = Bound::of(e);
        eb.saturate(&mut st.cg);
        // Everything true?
        if range.ub.provably_le(&mut st.cg, &eb) {
            return Some((vec![range.clone()], Vec::new()));
        }
        // Everything false?
        if eb.provably_lt(&mut st.cg, &range.lb) {
            return Some((Vec::new(), vec![range.clone()]));
        }
        // Proper split: lb <= e < ub.
        if range.lb.provably_le(&mut st.cg, &eb) && eb.provably_lt(&mut st.cg, &range.ub) {
            let low = ProcRange::new(range.lb.clone(), eb.clone());
            let high = ProcRange::new(eb.plus(1), range.ub.clone());
            return Some((vec![low], vec![high]));
        }
        None
    }

    /// Collects the send/receive operations available for matching.
    fn comm_sites(&self, st: &AnalysisState) -> (Vec<SendSite>, Vec<RecvSite>) {
        let mut sends: Vec<SendSite> = Vec::new();
        let mut recvs: Vec<RecvSite> = Vec::new();
        for (i, p) in st.psets.iter().enumerate() {
            if let Some(pend) = &p.pending {
                sends.push(SendSite {
                    pset_idx: i,
                    node: pend.node,
                    value: pend.value.clone(),
                    dest: pend.dest.clone(),
                    pending: true,
                });
            }
            match self.cfg.node(p.node) {
                CfgNode::Send { value, dest } if p.pending.is_none() => {
                    sends.push(SendSite {
                        pset_idx: i,
                        node: p.node,
                        value: value.clone(),
                        dest: dest.clone(),
                        pending: false,
                    });
                }
                CfgNode::Recv { var, src } => {
                    recvs.push(RecvSite {
                        pset_idx: i,
                        node: p.node,
                        src: src.clone(),
                        var: var.clone(),
                    });
                }
                _ => {}
            }
        }
        (sends, recvs)
    }

    /// Attempts one send–receive match; returns the successor state.
    fn match_step(&mut self, st: &AnalysisState) -> Option<AnalysisState> {
        let matcher = self.matcher();
        let (sends, recvs) = self.comm_sites(st);
        for send in &sends {
            for recv in &recvs {
                let mut s = st.clone();
                if let Some(outcome) =
                    matcher.try_match(&mut s, send, recv, &self.norm, &self.assumes)
                {
                    match self.apply_match(s, send, recv, &outcome) {
                        Some(next) => return Some(next),
                        None if self.config.trace => {
                            self.trace.push("  (match could not be applied)".to_owned());
                        }
                        None => {}
                    }
                }
            }
        }
        None
    }

    /// Forks the state on the first undecidable comparison blocking a
    /// match, then advances each branch (the comparison is decided in
    /// each, so the match proceeds one way or the other).
    fn ambiguity_split(&mut self, st: &AnalysisState, depth: u32) -> Option<Vec<AnalysisState>> {
        if depth > 8 {
            self.top = Some(TopReason::SplitDepthExceeded);
            return Some(Vec::new());
        }
        let matcher = self.matcher();
        let (sends, recvs) = self.comm_sites(st);
        for send in &sends {
            for recv in &recvs {
                let mut probe = st.clone();
                let Some((a, b)) = matcher.split_hint(&mut probe, send, recv, &self.norm) else {
                    continue;
                };
                if self.config.trace {
                    self.trace.push(format!("split on {a} <= {b} vs {b} < {a}"));
                }
                let mut out = Vec::new();
                let av = a.var.unwrap_or(VarId::ZERO);
                let bv = b.var.unwrap_or(VarId::ZERO);
                // Branch 1: a <= b.
                let mut s1 = st.clone();
                s1.cg.assert_le(av, bv, b.offset - a.offset);
                s1.cg.close();
                if !s1.cg.is_bottom() {
                    out.extend(self.step_inner(s1, depth + 1));
                }
                // Branch 2: b <= a - 1.
                let mut s2 = st.clone();
                s2.cg.assert_le(bv, av, a.offset - b.offset - 1);
                s2.cg.close();
                if !s2.cg.is_bottom() {
                    out.extend(self.step_inner(s2, depth + 1));
                }
                return Some(out);
            }
        }
        None
    }

    /// Applies a successful match: splits/releases the participating
    /// process sets, propagates the sent value, records the match.
    fn apply_match(
        &mut self,
        mut st: AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        outcome: &MatchOutcome,
    ) -> Option<AnalysisState> {
        let recv_succ = self.cfg.sole_succ(recv.node);
        st.matches.insert((send.node, recv.node));
        // Capture the event now (the constants are provable in the
        // pre-release state), but only *record* it once the match has
        // actually been applied — a failed application must leave no
        // trace in the reported topology.
        let singleton_const = |st: &mut AnalysisState, r: &ProcRange| -> Option<i64> {
            let mut cg = st.cg.clone();
            if !r.is_singleton(&mut cg) {
                return None;
            }
            r.lb.exprs().iter().find_map(|e| cg.eval_expr(e))
        };
        let event = MatchEvent {
            send_node: send.node,
            recv_node: recv.node,
            s_procs: outcome.s_procs.to_string(),
            r_procs: outcome.r_procs.to_string(),
            kind: outcome.kind,
            s_const: singleton_const(&mut st, &outcome.s_procs),
            r_const: singleton_const(&mut st, &outcome.r_procs),
        };

        if send.pset_idx == recv.pset_idx {
            // Self-exchange (transpose): only full-set matches supported.
            let range = st.psets[send.pset_idx].range.clone();
            if !outcome.s_procs.provably_eq(&mut st.cg, &range)
                || !outcome.r_procs.provably_eq(&mut st.cg, &range)
            {
                return None;
            }
            if !send.pending {
                return None; // A set cannot be at send and recv at once.
            }
            self.propagate_value(&mut st, send, recv, recv.pset_idx);
            st.psets[recv.pset_idx].pending = None;
            st.psets[recv.pset_idx].node = recv_succ;
            self.record_match_event(event);
            return Some(st);
        }

        // Receiver side first (indices shift when psets split).
        let r_full = {
            let range = st.psets[recv.pset_idx].range.clone();
            outcome.r_procs.provably_eq(&mut st.cg, &range)
        };
        let mut receiver_new_idx = recv.pset_idx;
        let assigned_ns;
        if r_full {
            assigned_ns = st.psets[recv.pset_idx].id;
            self.propagate_value(&mut st, send, recv, recv.pset_idx);
            st.psets[recv.pset_idx].node = recv_succ;
        } else {
            let range = st.psets[recv.pset_idx].range.clone();
            let remainder = range.subtract(&mut st.cg, &outcome.r_procs)?;
            let mut parts: Vec<(ProcRange, CfgNodeId, bool)> =
                vec![(outcome.r_procs.clone(), recv_succ, true)];
            match remainder {
                SubtractOutcome::Empty => {}
                SubtractOutcome::One(r) => parts.push((r, recv.node, true)),
                SubtractOutcome::Two(a, b) => {
                    parts.push((a, recv.node, true));
                    parts.push((b, recv.node, true));
                }
            }
            let sender_id = st.psets[send.pset_idx].id;
            st.split_pset(recv.pset_idx, parts);
            // After split_pset the new psets are appended at the end; the
            // matched part is the one at recv_succ (first pushed).
            receiver_new_idx = st
                .psets
                .iter()
                .position(|p| {
                    p.node == recv_succ && p.range.lb.exprs() == outcome.r_procs.lb.exprs()
                })
                .unwrap_or(st.psets.len() - 1);
            assigned_ns = st.psets[receiver_new_idx].id;
            self.propagate_value_by_ids(&mut st, send, recv, sender_id, receiver_new_idx);
        }
        let _ = receiver_new_idx;

        // The receiver-side value propagation reassigned `recv.var`, so
        // any alias mentioning it inside the matched ranges is stale and
        // would corrupt bound comparisons (e.g. falsely proving the
        // matched senders empty). Strip those aliases and re-saturate
        // against the updated facts.
        let stale = VarId::pset_var(assigned_ns, mpl_domains::intern_name(&recv.var));
        let sanitize = |st: &mut AnalysisState, r: &ProcRange| -> ProcRange {
            let keep = |b: &mpl_procset::Bound| {
                mpl_procset::Bound::from_exprs(
                    b.exprs()
                        .iter()
                        .filter(|e| e.var != Some(stale))
                        .cloned()
                        .collect(),
                )
            };
            let mut out = ProcRange::new(keep(&r.lb), keep(&r.ub));
            if out.is_vacant() {
                return r.clone();
            }
            out.saturate(&mut st.cg);
            out
        };
        let s_procs = sanitize(&mut st, &outcome.s_procs);

        // Sender side.
        let send_idx = st.psets.iter().position(|p| {
            if send.pending {
                p.pending.as_ref().is_some_and(|pd| pd.node == send.node)
            } else {
                p.node == send.node
            }
        })?;
        let s_range = st.psets[send_idx].range.clone();
        let s_full = s_procs.provably_eq(&mut st.cg, &s_range);
        if s_full {
            if send.pending {
                st.psets[send_idx].pending = None;
            } else {
                st.psets[send_idx].node = self.cfg.sole_succ(send.node);
            }
        } else {
            let remainder = s_range.subtract(&mut st.cg, &s_procs)?;
            let released_node = if send.pending {
                st.psets[send_idx].node
            } else {
                self.cfg.sole_succ(send.node)
            };
            let mut parts: Vec<(ProcRange, CfgNodeId, bool)> = Vec::new();
            // Matched part: pending cleared (if pending) or advanced.
            parts.push((s_procs.clone(), released_node, false));
            match remainder {
                SubtractOutcome::Empty => {}
                SubtractOutcome::One(r) => parts.push((r, st.psets[send_idx].node, true)),
                SubtractOutcome::Two(a, b) => {
                    parts.push((a, st.psets[send_idx].node, true));
                    parts.push((b, st.psets[send_idx].node, true));
                }
            }
            // For a non-pending sender the "keep pending" flag is
            // irrelevant (no pending exists); for a pending sender the
            // matched part released its pending while the rest keeps it.
            st.split_pset(send_idx, parts);
        }
        self.record_match_event(event);
        Some(st)
    }

    fn record_match_event(&mut self, event: MatchEvent) {
        if self.config.trace {
            self.trace.push(format!("match: {event}"));
        }
        self.events.insert(event.to_string(), event);
    }

    /// Propagates the sent value into the receiver's variable (Fig 2's
    /// cross-process constant propagation).
    fn propagate_value(
        &mut self,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        recv_idx: usize,
    ) {
        let sender_id = st.psets[send.pset_idx].id;
        self.propagate_value_by_ids(st, send, recv, sender_id, recv_idx);
    }

    fn propagate_value_by_ids(
        &mut self,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        sender_id: mpl_domains::PsetId,
        recv_idx: usize,
    ) {
        let recv_pset = st.psets[recv_idx].id;
        let var = self.norm.var(recv_pset, &recv.var);
        st.resaturate_ranges();
        st.rewrite_aliases_on_assign(var, None);
        // Received values are uniform only when pinned to one constant.
        st.uniform.remove(&var);

        // Constant value through the flat environment.
        let cval = self.norm.eval_const(&send.value, sender_id, &st.consts);
        match cval {
            Some(c) => {
                st.consts.set_const(var, c);
                st.cg.assign(var, &LinExpr::constant(c));
                st.uniform.insert(var);
                return;
            }
            None => st.consts.set_unknown(var),
        }

        // Relational value through the constraint graph.
        if let Some(lin) = self.norm.linearize(&send.value, sender_id) {
            if let Some(c) = st.cg.eval_expr(&lin) {
                st.cg.assign(var, &LinExpr::constant(c));
                st.consts.set_const(var, c);
                st.uniform.insert(var);
                return;
            }
            // A per-process value (anything provably id-based) must be
            // rewritten through the receiver's src expression: receiver r
            // got the value of sender src(r), i.e. var = src(r) + k. A
            // plain cross-namespace equality would claim *every* receiver
            // equals *every* sender and bottom the graph after splits.
            let id_s = VarId::id_of(sender_id);
            let id_offset = match &lin.var {
                Some(v) if *v == id_s => Some(lin.offset),
                Some(v) => st.cg.eq_offset(v, id_s).map(|k| k + lin.offset),
                None => None,
            };
            if let Some(k) = id_offset {
                if let Some(src_lin) = self.norm.linearize(&recv.src, recv_pset) {
                    st.cg.assign(var, &src_lin.plus(k));
                    return;
                }
                st.cg.assign_unknown(var);
                return;
            }
            match &lin.var {
                Some(v) if v.namespace() == Some(sender_id) => {
                    // A sender-local variable: a cross-namespace equality
                    // is only sound when the value is uniform across the
                    // sender set.
                    if lin.var.as_ref().is_some_and(|v| st.uniform.contains(v)) {
                        st.cg.assign(var, &lin);
                    } else {
                        st.cg.assign_unknown(var);
                    }
                    return;
                }
                _ => {
                    // Constant or global/np-based: valid in any namespace.
                    st.cg.assign(var, &lin);
                    return;
                }
            }
        }
        st.cg.assign_unknown(var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::corpus;

    fn run(prog: &corpus::CorpusProgram, client: Client) -> AnalysisResult {
        let config = AnalysisConfig {
            client,
            ..AnalysisConfig::default()
        };
        analyze(&prog.program, &config)
    }

    #[test]
    fn fig2_exchange_is_exact_with_constant_propagation() {
        let prog = corpus::fig2_exchange();
        let result = run(&prog, Client::Simple);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
        // Two matches: 0's send -> 1's recv, 1's send -> 0's recv.
        assert_eq!(result.matches.len(), 2);
        // Both prints output the constant 5 (the Fig 2 headline).
        let fives: Vec<&PrintFact> = result
            .prints
            .iter()
            .filter(|p| p.value == Some(5))
            .collect();
        assert_eq!(fives.len(), 2, "prints: {:?}", result.prints);
        assert!(result.leaks.is_empty());
    }

    #[test]
    fn fanout_broadcast_is_exact() {
        let prog = corpus::fanout_broadcast();
        let result = run(&prog, Client::Simple);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
        assert_eq!(
            result.matches.len(),
            1,
            "one send statement matches one recv"
        );
        assert!(result.leaks.is_empty());
    }

    #[test]
    fn exchange_with_root_is_exact_fig5() {
        let prog = corpus::exchange_with_root();
        let result = run(&prog, Client::Simple);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
        // Root's send matches worker recv; worker send matches root recv.
        assert_eq!(result.matches.len(), 2, "matches: {:?}", result.matches);
        assert!(result.leaks.is_empty());
    }

    #[test]
    fn gather_to_root_is_exact() {
        let prog = corpus::gather_to_root();
        let result = run(&prog, Client::Simple);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
        assert_eq!(result.matches.len(), 1);
    }

    #[test]
    fn nearest_neighbor_shift_is_exact() {
        let prog = corpus::nearest_neighbor_shift();
        let result = run(&prog, Client::Simple);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
        // Sends: edge 0's send, interior send; recvs: edge np-1, interior.
        assert!(!result.matches.is_empty(), "matches: {:?}", result.matches);
        assert!(result.leaks.is_empty());
    }

    #[test]
    fn transpose_square_needs_cartesian_client() {
        let prog = corpus::nas_cg_transpose_square(corpus::GridDims::Symbolic);
        // The simple client must give up (E3's contrast)...
        let simple = run(&prog, Client::Simple);
        assert!(
            !simple.is_exact(),
            "simple client should fail: {:?}",
            simple.verdict
        );
        // ...while the HSM client matches exactly.
        let cart = run(&prog, Client::Cartesian);
        assert!(cart.is_exact(), "verdict: {:?}", cart.verdict);
        assert_eq!(cart.matches.len(), 1);
        assert!(cart
            .events
            .iter()
            .all(|e| e.kind == crate::matcher::MatchKind::SelfPermutation));
    }

    #[test]
    fn transpose_rect_is_exact_with_cartesian_client() {
        let prog = corpus::nas_cg_transpose_rect(corpus::GridDims::Symbolic);
        let result = run(&prog, Client::Cartesian);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
        assert_eq!(result.matches.len(), 1);
    }

    #[test]
    fn message_leak_detected_statically() {
        let prog = corpus::message_leak();
        let result = run(&prog, Client::Simple);
        assert_eq!(result.leaks.len(), 1, "verdict {:?}", result.verdict);
    }

    #[test]
    fn deadlock_pair_detected_statically() {
        let prog = corpus::deadlock_pair();
        let result = run(&prog, Client::Cartesian);
        assert!(
            matches!(result.verdict, Verdict::Deadlock { .. }),
            "verdict: {:?}",
            result.verdict
        );
    }

    #[test]
    fn ring_uniform_is_top() {
        // Modular wrap-around exceeds both clients (paper §X).
        let prog = corpus::ring_uniform();
        let result = run(&prog, Client::Cartesian);
        assert!(
            matches!(result.verdict, Verdict::Top { .. }),
            "{:?}",
            result.verdict
        );
    }

    #[test]
    fn pairwise_exchange_is_top() {
        // Parity split needs non-contiguous process sets.
        let prog = corpus::pairwise_exchange();
        let result = run(&prog, Client::Cartesian);
        assert!(
            matches!(result.verdict, Verdict::Top { .. }),
            "{:?}",
            result.verdict
        );
    }

    #[test]
    fn const_relay_propagates_constant_through_two_hops() {
        let prog = corpus::const_relay();
        let result = run(&prog, Client::Simple);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
        let elevens = result.prints.iter().filter(|p| p.value == Some(11)).count();
        assert_eq!(elevens, 3, "prints: {:?}", result.prints);
    }

    #[test]
    fn trace_collects_steps() {
        let prog = corpus::fig2_exchange();
        let config = AnalysisConfig {
            trace: true,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        assert!(
            result.trace.iter().any(|l| l.contains("match")),
            "{:?}",
            result.trace
        );
    }

    #[test]
    fn left_shift_is_exact() {
        let prog = corpus::left_shift();
        let result = run(&prog, Client::Simple);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    }

    #[test]
    fn mdcask_full_is_exact() {
        let prog = corpus::mdcask_full();
        let result = run(&prog, Client::Simple);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
        // Phase 1 send->recv(b), phase 2 send->recv(y), worker send->root recv.
        assert_eq!(result.matches.len(), 3, "matches: {:?}", result.matches);
    }

    #[test]
    fn scatter_indexed_is_exact() {
        let prog = corpus::scatter_indexed();
        let result = run(&prog, Client::Simple);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    }

    #[test]
    fn stencil_2d_vertical_concrete_is_exact() {
        let prog = corpus::stencil_2d_vertical(corpus::GridDims::Concrete { nrows: 3, ncols: 3 });
        let result = run(&prog, Client::Simple);
        assert!(result.is_exact(), "verdict: {:?}", result.verdict);
    }

    #[test]
    fn pre_cancelled_token_yields_deadline_top_within_bounded_steps() {
        let prog = corpus::exchange_with_root();
        let token = mpl_runtime::CancelToken::new();
        token.cancel();
        let config = AnalysisConfig::builder()
            .cancel_token(token)
            .build()
            .expect("valid config");
        let result = analyze(&prog.program, &config);
        assert!(
            matches!(
                result.verdict,
                Verdict::Top {
                    reason: TopReason::Deadline
                }
            ),
            "{:?}",
            result.verdict
        );
        assert!(
            result.steps <= CANCEL_CHECK_STEPS,
            "cancellation observed after {} steps (bound {CANCEL_CHECK_STEPS})",
            result.steps
        );
        // Sound ⊤: nothing is claimed about the program.
        assert!(result.matches.is_empty());
        assert!(result.leaks.is_empty());
    }

    #[test]
    fn uncancelled_token_does_not_perturb_the_analysis() {
        let prog = corpus::exchange_with_root();
        let plain = analyze(&prog.program, &AnalysisConfig::default());
        let config = AnalysisConfig::builder()
            .cancel_token(mpl_runtime::CancelToken::new())
            .build()
            .expect("valid config");
        let tokened = analyze(&prog.program, &config);
        assert_eq!(plain.verdict, tokened.verdict);
        assert_eq!(plain.matches, tokened.matches);
        assert_eq!(plain.steps, tokened.steps);
    }

    #[test]
    fn deadline_reason_has_stable_code_and_message() {
        assert_eq!(TopReason::Deadline.code(), "deadline");
        assert_eq!(
            TopReason::Deadline.to_string(),
            "analysis deadline exceeded"
        );
        let bare = AnalysisResult::top(TopReason::Deadline);
        assert!(!bare.is_exact());
        assert_eq!(bare.steps, 0);
    }

    #[test]
    fn step_budget_yields_top() {
        let prog = corpus::exchange_with_root();
        let config = AnalysisConfig {
            max_steps: 3,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        assert!(matches!(result.verdict, Verdict::Top { .. }));
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;
    use mpl_lang::corpus;

    #[test]
    fn transpose_requires_pending_sends() {
        // With strictly blocking sends (no §X aggregation) the whole set
        // blocks at the send forever: the framework must give up.
        let prog = corpus::nas_cg_transpose_square(corpus::GridDims::Symbolic);
        let config = AnalysisConfig {
            allow_pending_sends: false,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        assert!(
            matches!(result.verdict, Verdict::Top { .. }),
            "{:?}",
            result.verdict
        );
        // Rendezvous-compatible patterns still work without aggregation.
        let prog = corpus::exchange_with_root();
        let result = analyze(&prog.program, &config);
        assert!(result.is_exact(), "{:?}", result.verdict);
    }

    #[test]
    fn max_psets_budget_yields_top() {
        let prog = corpus::nearest_neighbor_shift();
        let config = AnalysisConfig {
            max_psets: 2,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        assert!(matches!(result.verdict, Verdict::Top { .. }));
    }

    #[test]
    fn min_np_is_respected() {
        // With min_np = 8 the analysis still succeeds (it is a lower
        // bound, not an exact count).
        let prog = corpus::exchange_with_root();
        let config = AnalysisConfig {
            min_np: 8,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        assert!(result.is_exact());
    }

    #[test]
    fn printed_constant_accessor() {
        let prog = corpus::fig2_exchange();
        let result = analyze(&prog.program, &AnalysisConfig::default());
        let print_nodes: Vec<CfgNodeId> = result.prints.iter().map(|p| p.node).collect();
        for node in print_nodes {
            assert_eq!(result.printed_constant(node), Some(5));
        }
        assert_eq!(result.printed_constant(CfgNodeId(999)), None);
    }

    #[test]
    fn match_events_have_structured_kinds() {
        use crate::matcher::MatchKind;
        let prog = corpus::nearest_neighbor_shift();
        let result = analyze(&prog.program, &AnalysisConfig::default());
        assert!(result
            .events
            .iter()
            .all(|e| matches!(e.kind, MatchKind::Shift { offset: 1 })));
        let prog = corpus::fanout_broadcast();
        let result = analyze(&prog.program, &AnalysisConfig::default());
        assert!(result
            .events
            .iter()
            .all(|e| e.kind == MatchKind::UniformPair));
        assert!(result.events.iter().all(|e| e.s_const == Some(0)));
    }
}

#[cfg(test)]
mod soundness_tests {
    use super::*;
    use mpl_lang::{corpus, parse_program};

    /// Regression: a branch on a per-process (non-uniform) variable must
    /// never steer a whole set down one edge.
    #[test]
    fn non_uniform_branch_is_top() {
        // parity := id % 2 is different on different ranks; treating the
        // branch as uniform once produced a bogus "exact" verdict.
        let src = "\
            parity := id % 2;\n\
            if parity = 0 then\n  send 1 -> id + 1;\n\
            else\n  recv y <- id - 1;\nend\n";
        let result = analyze(&parse_program(src).unwrap(), &AnalysisConfig::default());
        assert!(
            matches!(result.verdict, Verdict::Top { .. }),
            "{:?}",
            result.verdict
        );
    }

    /// The id-aliased form of the same branch *is* splittable.
    #[test]
    fn id_aliased_branch_splits() {
        let src = "\
            myrank := id;\n\
            if myrank = 0 then\n  send 1 -> 1;\n\
            else\n  if myrank = 1 then\n    recv y <- 0;\n  end\nend\n";
        let result = analyze(&parse_program(src).unwrap(), &AnalysisConfig::default());
        assert!(result.is_exact(), "{:?}", result.verdict);
        assert_eq!(result.matches.len(), 1);
    }

    /// Uniform computed variables still branch both ways soundly.
    #[test]
    fn uniform_chain_stays_decidable() {
        let src = "\
            a := 3;\n\
            b := a * 2 + 1;\n\
            if b = 7 then\n  x := 1;\nelse\n  x := 2;\nend\n\
            print x;\n";
        let result = analyze(&parse_program(src).unwrap(), &AnalysisConfig::default());
        assert!(result.is_exact(), "{:?}", result.verdict);
        assert_eq!(result.prints[0].value, Some(1));
    }

    /// The five-point stencil: vertical phases match, the horizontal
    /// (id % ncols) phases honestly exceed the range abstraction.
    #[test]
    fn stencil_2d_full_is_honest_top() {
        let prog = corpus::stencil_2d_full(corpus::GridDims::Concrete { nrows: 3, ncols: 3 });
        let config = AnalysisConfig {
            client: Client::Simple,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        let Verdict::Top { reason } = &result.verdict else {
            panic!("expected ⊤, got {:?}", result.verdict);
        };
        assert!(
            matches!(reason, TopReason::NonUniformCondition { .. }),
            "{reason}"
        );
        // The vertical phases were matched before giving up.
        assert!(result.matches.len() >= 2, "{:?}", result.matches);
        // And the simulator confirms the program itself is fine.
        let out = mpl_sim::Simulator::new(&prog.program, 9).run().unwrap();
        assert!(out.is_complete());
        assert_eq!(out.topology.len(), 24);
    }

    /// Delayed widening lets bounded concrete chains finish exactly.
    #[test]
    fn concrete_block_chain_completes() {
        for nrows in [3i64, 4, 5] {
            let prog = corpus::stencil_2d_vertical(corpus::GridDims::Concrete {
                nrows,
                ncols: nrows,
            });
            let config = AnalysisConfig {
                client: Client::Simple,
                ..AnalysisConfig::default()
            };
            let result = analyze(&prog.program, &config);
            assert!(result.is_exact(), "{nrows}x{nrows}: {:?}", result.verdict);
        }
    }

    /// Received values are only uniform when pinned to a constant.
    #[test]
    fn received_rank_dependent_value_is_not_uniform() {
        // Workers receive their own rank back and branch on it: the
        // branch is on a non-uniform value (except via the id-alias
        // rewrite, which applies here since y = id - 1 + 1 = id is not
        // established... y = src + k gives y = id - 1 + ... ). The
        // program is constructed so y = id on every receiver; the
        // analysis may only proceed through the id-alias route or ⊤ —
        // never through a bogus uniform treatment.
        let src = "\
            x := id;\n\
            if id = 0 then\n  send x -> 1;\n\
            else\n  if id = 1 then\n    recv y <- 0;\n    if y = 0 then\n      print y;\n    end\n  end\nend\n";
        let result = analyze(&parse_program(src).unwrap(), &AnalysisConfig::default());
        // Singleton receiver: both branch directions are sound. Whatever
        // the verdict, it must not be a wrong topology.
        if result.is_exact() {
            assert_eq!(result.matches.len(), 1);
        }
    }
}

#[cfg(test)]
mod branch_split_tests {
    use super::*;
    use mpl_lang::parse_program;

    fn analyze_src(src: &str) -> AnalysisResult {
        analyze(&parse_program(src).unwrap(), &AnalysisConfig::default())
    }

    #[test]
    fn ne_branch_swaps_split_sides() {
        // `id != 0` sends the singleton down the FALSE edge.
        let src = "\
            if id != 0 then\n  send 1 -> 0;\n\
            else\n  recv y <- np - 1;\nend\n";
        // Workers [1..np-1] all send to 0; root receives from np-1 only:
        // exactly one match, everything else unreceived -> leak... avoid
        // leaks: match only one sender. Use a clean variant instead:
        let _ = src;
        let clean = "\
            if id != 0 then\n  skip;\n\
            else\n  x := 1;\nend\n\
            print 3;\n";
        let result = analyze_src(clean);
        assert!(result.is_exact(), "{:?}", result.verdict);
        // Both sides reach the print; value constant 3 on all.
        assert!(result.prints.iter().all(|p| p.value == Some(3)));
    }

    #[test]
    fn strict_comparisons_split_correctly() {
        for cond in ["id > 0", "id >= 1", "not (id = 0)", "0 < id"] {
            let src = format!(
                "if {cond} then\n  send id -> 0;\nelse\n  for i = 1 to np - 1 do\n    recv y <- i;\n  end\nend\n"
            );
            let result = analyze_src(&src);
            assert!(result.is_exact(), "cond `{cond}`: {:?}", result.verdict);
            assert_eq!(result.matches.len(), 1, "cond `{cond}`");
        }
    }

    #[test]
    fn middle_singleton_split_produces_three_parts() {
        // id = 2 inside [0..np-1] splits into [0..1], [2..2], [3..np-1].
        let src = "\
            if id = 2 then\n  for i = 0 to 1 do\n    recv y <- i;\n  end\n\
            else\n  if id < 2 then\n    send id -> 2;\n  end\nend\n";
        let result = analyze_src(src);
        assert!(result.is_exact(), "{:?}", result.verdict);
        assert_eq!(result.matches.len(), 1);
    }
}

#[cfg(test)]
mod widen_delay_tests {
    use super::*;
    use mpl_lang::corpus;

    #[test]
    fn immediate_widening_loses_concrete_chains() {
        // The delayed-widening knob: with no delay, the 4-block stencil
        // chain on a 4x4 grid is destructively merged; with the default
        // delay it completes exactly.
        let prog = corpus::stencil_2d_vertical(corpus::GridDims::Concrete { nrows: 4, ncols: 4 });
        let eager = AnalysisConfig {
            client: Client::Simple,
            widen_delay: 0,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &eager);
        assert!(
            matches!(result.verdict, Verdict::Top { .. }),
            "eager widening should lose the chain: {:?}",
            result.verdict
        );
        let default = AnalysisConfig {
            client: Client::Simple,
            ..AnalysisConfig::default()
        };
        assert!(analyze(&prog.program, &default).is_exact());
    }

    #[test]
    fn symbolic_loops_converge_under_any_delay() {
        for delay in [0u32, 2, 6, 12] {
            let config = AnalysisConfig {
                client: Client::Simple,
                widen_delay: delay,
                ..AnalysisConfig::default()
            };
            let result = analyze(&corpus::exchange_with_root().program, &config);
            assert!(result.is_exact(), "delay {delay}: {:?}", result.verdict);
        }
    }
}
