//! The framework/client seam (§VI): the engine is parameterized by a
//! [`ClientDomain`] — lattice operations, transfer functions, the
//! message-expression abstraction and the split/merge/rename hooks.
//!
//! The two clients of the paper instantiate it:
//!
//! * [`SymbolicClient`] — §VII, `var + c` message expressions matched by
//!   [`crate::matcher::SimpleMatcher`] over [`mpl_domains`] constraint
//!   graphs;
//! * [`CartesianClient`] — §VIII, everything the symbolic client does
//!   plus whole-set grid matching by
//!   [`crate::matcher::CartesianMatcher`] over [`mpl_hsm`] sequence maps.
//!
//! Both clients share the default transfer functions (constraint-graph
//! assignment, assume refinement, cross-process value propagation) and
//! the default split/merge/rename hooks; they differ only in the
//! message-expression abstraction reached through
//! [`ClientDomain::matcher`]. The [`Client`] enum remains as a thin
//! compat constructor — [`Client::domain`] is the single place a client
//! tag is dispatched.

use std::fmt;

use mpl_domains::{LinExpr, PsetId, VarId};
use mpl_lang::ast::{BinOp, Expr, UnOp};
use mpl_procset::{Bound, ProcRange};

use crate::matcher::{CartesianMatcher, MatchStrategy, RecvSite, SendSite, SimpleMatcher};
use crate::norm::NormCtx;
use crate::state::AnalysisState;

/// Which client analysis instantiates the framework.
///
/// A thin compat constructor over the [`ClientDomain`] trait: existing
/// code keeps selecting clients by enum value, and [`Client::domain`]
/// resolves to the trait object the engine actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Client {
    /// §VII: simple symbolic send–receive analysis (`var + c`).
    Simple,
    /// §VIII: cartesian topology analysis (adds HSM matching).
    #[default]
    Cartesian,
}

impl Client {
    /// The client implementation behind this tag — the one dispatch
    /// point from enum to trait.
    #[must_use]
    pub fn domain(self) -> &'static dyn ClientDomain {
        match self {
            Client::Simple => &SymbolicClient,
            Client::Cartesian => &CartesianClient,
        }
    }

    /// The stable machine-readable tag (`"simple"` / `"cartesian"`),
    /// used by the CLI flags and the corpus JSON output.
    #[must_use]
    pub fn tag(self) -> &'static str {
        self.domain().tag()
    }

    /// Parses a [`Client::tag`] back into the enum.
    #[must_use]
    pub fn from_tag(tag: &str) -> Option<Client> {
        [Client::Simple, Client::Cartesian]
            .into_iter()
            .find(|c| c.tag() == tag)
    }
}

/// A client analysis instantiating the pCFG framework (§VI).
///
/// Default method bodies implement the shared symbolic behaviour over
/// the interned constraint-graph state; a client must provide only its
/// identity (name/tag) and its message-expression abstraction (the
/// [`MatchStrategy`]). Everything is overridable so future domains
/// (e.g. transducer-based abstractions) can replace transfer functions
/// or widening wholesale without touching the engine.
pub trait ClientDomain: fmt::Debug + Sync {
    /// A descriptive name for reports.
    fn name(&self) -> &'static str;

    /// The stable machine-readable tag (kebab-case, never localized).
    fn tag(&self) -> &'static str;

    /// The client's message-expression abstraction: the paper's
    /// `image` / `compose` / `is-identity` algebra, realized as the
    /// matching strategy run when all process sets block.
    fn matcher(&self) -> &'static dyn MatchStrategy;

    /// True if `expr` provably evaluates to the same value on every
    /// process of the set: it avoids `id` and only reads inputs and
    /// proven-uniform variables.
    fn is_uniform_expr(
        &self,
        norm: &NormCtx,
        st: &AnalysisState,
        pset: PsetId,
        expr: &Expr,
    ) -> bool {
        !expr.mentions_id()
            && expr
                .variables()
                .iter()
                .all(|n| norm.is_input(n) || st.uniform.contains(&norm.var(pset, n)))
    }

    /// Transfer function for `name := value` on pset `idx`.
    fn transfer_assign(
        &self,
        norm: &NormCtx,
        st: &mut AnalysisState,
        idx: usize,
        name: &str,
        value: &Expr,
    ) {
        let pset = st.psets[idx].id;
        let var = norm.var(pset, name);
        if self.is_uniform_expr(norm, st, pset, value) {
            st.uniform.insert(var);
        } else {
            st.uniform.remove(&var);
        }
        st.resaturate_ranges();
        match norm.linearize(value, pset) {
            Some(lin) => {
                let shift = (lin.var.as_ref() == Some(&var)).then_some(lin.offset);
                st.cg.assign(var, &lin);
                st.rewrite_aliases_on_assign(var, shift);
                // Flat constant environment.
                match shift {
                    Some(c) => {
                        if let Some(old) = st.consts.const_of(var) {
                            st.consts.set_const(var, old + c);
                        } else {
                            st.consts.set_unknown(var);
                        }
                    }
                    None => {
                        let cval = lin.as_constant().or_else(|| {
                            lin.var
                                .as_ref()
                                .and_then(|v| st.consts.const_of(v))
                                .map(|c| c + lin.offset)
                        });
                        match cval {
                            Some(c) => st.consts.set_const(var, c),
                            None => st.consts.set_unknown(var),
                        }
                    }
                }
            }
            None => {
                // Non-linear: fall back to constant evaluation.
                match norm.eval_const(value, pset, &st.consts) {
                    Some(c) => {
                        st.cg.assign(var, &LinExpr::constant(c));
                        st.consts.set_const(var, c);
                    }
                    None => {
                        st.cg.assign_unknown(var);
                        st.consts.set_unknown(var);
                    }
                }
                st.rewrite_aliases_on_assign(var, None);
            }
        }
    }

    /// Transfer function for `assume e` on pset `idx`.
    fn transfer_assume(&self, norm: &NormCtx, st: &mut AnalysisState, idx: usize, e: &Expr) {
        let pset = st.psets[idx].id;
        let refs = norm.refinements(e, pset, false);
        norm.apply_refinements(&mut st.cg, &refs);
        // Equalities with one linear side and one constant-evaluable side
        // (e.g. `np = nrows * ncols` with concrete dims).
        if let Expr::Binary(BinOp::Eq, l, r) = e {
            for (a, b) in [(l, r), (r, l)] {
                if let (Some(lin), Some(c)) = (
                    norm.linearize(a, pset),
                    norm.eval_const(b, pset, &st.consts),
                ) {
                    if let Some(v) = &lin.var {
                        st.cg.assert_eq_const(v, c - lin.offset);
                    }
                }
            }
        }
    }

    /// Propagates the sent value into the receiver's variable (Fig 2's
    /// cross-process constant propagation). `sender_id` is the sending
    /// pset's namespace (captured before any receiver split), `recv_idx`
    /// the receiving pset's index in `st`.
    fn propagate_received(
        &self,
        norm: &NormCtx,
        st: &mut AnalysisState,
        send: &SendSite,
        recv: &RecvSite,
        sender_id: PsetId,
        recv_idx: usize,
    ) {
        let recv_pset = st.psets[recv_idx].id;
        let var = norm.var(recv_pset, &recv.var);
        st.resaturate_ranges();
        st.rewrite_aliases_on_assign(var, None);
        // Received values are uniform only when pinned to one constant.
        st.uniform.remove(&var);

        // Constant value through the flat environment.
        let cval = norm.eval_const(&send.value, sender_id, &st.consts);
        match cval {
            Some(c) => {
                st.consts.set_const(var, c);
                st.cg.assign(var, &LinExpr::constant(c));
                st.uniform.insert(var);
                return;
            }
            None => st.consts.set_unknown(var),
        }

        // Relational value through the constraint graph.
        if let Some(lin) = norm.linearize(&send.value, sender_id) {
            if let Some(c) = st.cg.eval_expr(&lin) {
                st.cg.assign(var, &LinExpr::constant(c));
                st.consts.set_const(var, c);
                st.uniform.insert(var);
                return;
            }
            // A per-process value (anything provably id-based) must be
            // rewritten through the receiver's src expression: receiver r
            // got the value of sender src(r), i.e. var = src(r) + k. A
            // plain cross-namespace equality would claim *every* receiver
            // equals *every* sender and bottom the graph after splits.
            let id_s = VarId::id_of(sender_id);
            let id_offset = match &lin.var {
                Some(v) if *v == id_s => Some(lin.offset),
                Some(v) => st.cg.eq_offset(v, id_s).map(|k| k + lin.offset),
                None => None,
            };
            if let Some(k) = id_offset {
                if let Some(src_lin) = norm.linearize(&recv.src, recv_pset) {
                    st.cg.assign(var, &src_lin.plus(k));
                    return;
                }
                st.cg.assign_unknown(var);
                return;
            }
            match &lin.var {
                Some(v) if v.namespace() == Some(sender_id) => {
                    // A sender-local variable: a cross-namespace equality
                    // is only sound when the value is uniform across the
                    // sender set.
                    if lin.var.as_ref().is_some_and(|v| st.uniform.contains(v)) {
                        st.cg.assign(var, &lin);
                    } else {
                        st.cg.assign_unknown(var);
                    }
                    return;
                }
                _ => {
                    // Constant or global/np-based: valid in any namespace.
                    st.cg.assign(var, &lin);
                    return;
                }
            }
        }
        st.cg.assign_unknown(var);
    }

    /// The join hook: merges compatible process sets back together
    /// (contiguous ranges at the same location — the state-level join).
    fn join(&self, st: &mut AnalysisState) {
        st.merge_psets();
    }

    /// Widening with thresholds at a recurring pCFG location.
    #[must_use]
    fn widen(
        &self,
        old: &AnalysisState,
        newer: &AnalysisState,
        thresholds: &[i64],
    ) -> AnalysisState {
        old.widen_with_thresholds(newer, thresholds)
    }

    /// The rename hook: renumbers process-set namespaces into canonical
    /// order so states at the same location compare equal.
    fn rename(&self, st: &mut AnalysisState) {
        st.renumber_canonical();
    }

    /// Splits pset `idx`'s range by an id-comparison. Returns
    /// (true-parts, false-parts), or `None` when the condition shape is
    /// not splittable in this client's range abstraction.
    #[allow(clippy::type_complexity)]
    fn split_on_id(
        &self,
        norm: &NormCtx,
        st: &mut AnalysisState,
        idx: usize,
        cond: &Expr,
    ) -> Option<(Vec<ProcRange>, Vec<ProcRange>)> {
        let pset = st.psets[idx].id;
        if let Expr::Unary(UnOp::Not, inner) = cond {
            // ¬c: swap the split sides.
            return self.split_on_id(norm, st, idx, inner).map(|(t, f)| (f, t));
        }
        let (op, l, r) = match cond {
            Expr::Binary(op, l, r) if op.is_boolean() => (*op, l.as_ref(), r.as_ref()),
            _ => return None,
        };
        let consts = st.consts.clone();
        let (le, re) = (
            norm.linearize_resolved(l, pset, &consts, &mut st.cg)?,
            norm.linearize_resolved(r, pset, &consts, &mut st.cg)?,
        );
        let idv = VarId::id_of(pset);
        // Normalize to `id REL e`.
        let (e, op) = if le.var == Some(idv) && re.var != Some(idv) {
            (re.plus(-le.offset), op)
        } else if re.var == Some(idv) && le.var != Some(idv) {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => other,
            };
            (le.plus(-re.offset), flipped)
        } else {
            return None;
        };
        // The non-id side must itself be uniform across the set, or the
        // computed sub-ranges would differ per process.
        if let Some(v) = e.var {
            if v.namespace().is_some() && !st.uniform.contains(&v) {
                return None;
            }
        }
        let range = st.psets[idx].range.clone();
        match op {
            BinOp::Eq => split_eq(st, &range, e),
            BinOp::Ne => split_eq(st, &range, e).map(|(t, f)| (f, t)),
            BinOp::Le => split_le(st, &range, e),
            BinOp::Lt => split_le(st, &range, e.plus(-1)),
            BinOp::Ge => split_le(st, &range, e.plus(-1)).map(|(t, f)| (f, t)),
            BinOp::Gt => split_le(st, &range, e).map(|(t, f)| (f, t)),
            _ => None,
        }
    }

    /// The image of the sender subset `senders` under `send`'s
    /// destination expression, in this client's message-expression
    /// abstraction (`None` = not representable).
    fn msg_image(
        &self,
        st: &mut AnalysisState,
        norm: &NormCtx,
        send: &SendSite,
        senders: &ProcRange,
    ) -> Option<ProcRange> {
        self.matcher().image(st, norm, send, senders)
    }

    /// Whether `recv.src ∘ send.dest` is provably the identity on
    /// `senders` (`None` = not provable either way).
    fn msg_composes_to_identity(
        &self,
        st: &mut AnalysisState,
        norm: &NormCtx,
        send: &SendSite,
        recv: &RecvSite,
        senders: &ProcRange,
        assumes: &[Expr],
    ) -> Option<bool> {
        self.matcher()
            .composes_to_identity(st, send, recv, norm, senders, assumes)
    }
}

/// Splits `range` by `id = e`.
#[allow(clippy::type_complexity)]
fn split_eq(
    st: &mut AnalysisState,
    range: &ProcRange,
    e: LinExpr,
) -> Option<(Vec<ProcRange>, Vec<ProcRange>)> {
    let mut eb = Bound::of(e);
    eb.saturate(&mut st.cg);
    let singleton = ProcRange::new(eb.clone(), eb.clone());
    if eb.provably_eq(&mut st.cg, &range.lb) {
        let rest = ProcRange::new(range.lb.plus(1), range.ub.clone());
        return Some((vec![singleton], vec![rest]));
    }
    if eb.provably_eq(&mut st.cg, &range.ub) {
        let rest = ProcRange::new(range.lb.clone(), range.ub.plus(-1));
        return Some((vec![singleton], vec![rest]));
    }
    // Strictly inside?
    if range.lb.provably_lt(&mut st.cg, &eb) && eb.provably_lt(&mut st.cg, &range.ub) {
        let low = ProcRange::new(range.lb.clone(), eb.plus(-1));
        let high = ProcRange::new(eb.plus(1), range.ub.clone());
        return Some((vec![singleton], vec![low, high]));
    }
    // Provably outside?
    if eb.provably_lt(&mut st.cg, &range.lb) || range.ub.provably_lt(&mut st.cg, &eb) {
        return Some((Vec::new(), vec![range.clone()]));
    }
    None
}

/// Splits `range` by `id <= e`.
#[allow(clippy::type_complexity)]
fn split_le(
    st: &mut AnalysisState,
    range: &ProcRange,
    e: LinExpr,
) -> Option<(Vec<ProcRange>, Vec<ProcRange>)> {
    let mut eb = Bound::of(e);
    eb.saturate(&mut st.cg);
    // Everything true?
    if range.ub.provably_le(&mut st.cg, &eb) {
        return Some((vec![range.clone()], Vec::new()));
    }
    // Everything false?
    if eb.provably_lt(&mut st.cg, &range.lb) {
        return Some((Vec::new(), vec![range.clone()]));
    }
    // Proper split: lb <= e < ub.
    if range.lb.provably_le(&mut st.cg, &eb) && eb.provably_lt(&mut st.cg, &range.ub) {
        let low = ProcRange::new(range.lb.clone(), eb.clone());
        let high = ProcRange::new(eb.plus(1), range.ub.clone());
        return Some((vec![low], vec![high]));
    }
    None
}

/// The §VII client: `var + c` message expressions over the symbolic
/// constraint-graph domain ([`mpl_domains`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SymbolicClient;

impl ClientDomain for SymbolicClient {
    fn name(&self) -> &'static str {
        "simple-symbolic"
    }

    fn tag(&self) -> &'static str {
        "simple"
    }

    fn matcher(&self) -> &'static dyn MatchStrategy {
        &SimpleMatcher
    }
}

/// The §VIII client: the symbolic client plus whole-set cartesian-grid
/// matching through Hierarchical Sequence Maps ([`mpl_hsm`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CartesianClient;

impl ClientDomain for CartesianClient {
    fn name(&self) -> &'static str {
        "cartesian-hsm"
    }

    fn tag(&self) -> &'static str {
        "cartesian"
    }

    fn matcher(&self) -> &'static dyn MatchStrategy {
        &CartesianMatcher
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_enum_round_trips_through_tags() {
        for client in [Client::Simple, Client::Cartesian] {
            assert_eq!(Client::from_tag(client.tag()), Some(client));
        }
        assert_eq!(Client::from_tag("quantum"), None);
        assert_eq!(Client::default().tag(), "cartesian");
    }

    #[test]
    fn domains_report_their_matchers() {
        assert_eq!(Client::Simple.domain().name(), "simple-symbolic");
        assert_eq!(Client::Simple.domain().matcher().name(), "simple-symbolic");
        assert_eq!(Client::Cartesian.domain().name(), "cartesian-hsm");
        assert_eq!(Client::Cartesian.domain().matcher().name(), "cartesian-hsm");
    }
}

#[cfg(test)]
mod soundness_tests {
    use crate::client::Client;
    use crate::config::AnalysisConfig;
    use crate::engine::analyze;
    use crate::result::{TopReason, Verdict};
    use mpl_lang::{corpus, parse_program};

    /// Regression: a branch on a per-process (non-uniform) variable must
    /// never steer a whole set down one edge.
    #[test]
    fn non_uniform_branch_is_top() {
        // parity := id % 2 is different on different ranks; treating the
        // branch as uniform once produced a bogus "exact" verdict.
        let src = "\
            parity := id % 2;\n\
            if parity = 0 then\n  send 1 -> id + 1;\n\
            else\n  recv y <- id - 1;\nend\n";
        let result = analyze(&parse_program(src).unwrap(), &AnalysisConfig::default());
        assert!(
            matches!(result.verdict, Verdict::Top { .. }),
            "{:?}",
            result.verdict
        );
    }

    /// The id-aliased form of the same branch *is* splittable.
    #[test]
    fn id_aliased_branch_splits() {
        let src = "\
            myrank := id;\n\
            if myrank = 0 then\n  send 1 -> 1;\n\
            else\n  if myrank = 1 then\n    recv y <- 0;\n  end\nend\n";
        let result = analyze(&parse_program(src).unwrap(), &AnalysisConfig::default());
        assert!(result.is_exact(), "{:?}", result.verdict);
        assert_eq!(result.matches.len(), 1);
    }

    /// Uniform computed variables still branch both ways soundly.
    #[test]
    fn uniform_chain_stays_decidable() {
        let src = "\
            a := 3;\n\
            b := a * 2 + 1;\n\
            if b = 7 then\n  x := 1;\nelse\n  x := 2;\nend\n\
            print x;\n";
        let result = analyze(&parse_program(src).unwrap(), &AnalysisConfig::default());
        assert!(result.is_exact(), "{:?}", result.verdict);
        assert_eq!(result.prints[0].value, Some(1));
    }

    /// The five-point stencil: vertical phases match, the horizontal
    /// (id % ncols) phases honestly exceed the range abstraction.
    #[test]
    fn stencil_2d_full_is_honest_top() {
        let prog = corpus::stencil_2d_full(corpus::GridDims::Concrete { nrows: 3, ncols: 3 });
        let config = AnalysisConfig {
            client: Client::Simple,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        let Verdict::Top { reason } = &result.verdict else {
            panic!("expected ⊤, got {:?}", result.verdict);
        };
        assert!(
            matches!(reason, TopReason::NonUniformCondition { .. }),
            "{reason}"
        );
        // The vertical phases were matched before giving up.
        assert!(result.matches.len() >= 2, "{:?}", result.matches);
        // And the simulator confirms the program itself is fine.
        let out = mpl_sim::Simulator::new(&prog.program, 9).run().unwrap();
        assert!(out.is_complete());
        assert_eq!(out.topology.len(), 24);
    }

    /// Delayed widening lets bounded concrete chains finish exactly.
    #[test]
    fn concrete_block_chain_completes() {
        for nrows in [3i64, 4, 5] {
            let prog = corpus::stencil_2d_vertical(corpus::GridDims::Concrete {
                nrows,
                ncols: nrows,
            });
            let config = AnalysisConfig {
                client: Client::Simple,
                ..AnalysisConfig::default()
            };
            let result = analyze(&prog.program, &config);
            assert!(result.is_exact(), "{nrows}x{nrows}: {:?}", result.verdict);
        }
    }

    /// Received values are only uniform when pinned to a constant.
    #[test]
    fn received_rank_dependent_value_is_not_uniform() {
        // Workers receive their own rank back and branch on it: the
        // branch is on a non-uniform value (except via the id-alias
        // rewrite, which applies here since y = id - 1 + 1 = id is not
        // established... y = src + k gives y = id - 1 + ... ). The
        // program is constructed so y = id on every receiver; the
        // analysis may only proceed through the id-alias route or ⊤ —
        // never through a bogus uniform treatment.
        let src = "\
            x := id;\n\
            if id = 0 then\n  send x -> 1;\n\
            else\n  if id = 1 then\n    recv y <- 0;\n    if y = 0 then\n      print y;\n    end\n  end\nend\n";
        let result = analyze(&parse_program(src).unwrap(), &AnalysisConfig::default());
        // Singleton receiver: both branch directions are sound. Whatever
        // the verdict, it must not be a wrong topology.
        if result.is_exact() {
            assert_eq!(result.matches.len(), 1);
        }
    }
}

#[cfg(test)]
mod branch_split_tests {
    use crate::config::AnalysisConfig;
    use crate::engine::analyze;
    use crate::result::AnalysisResult;
    use mpl_lang::parse_program;

    fn analyze_src(src: &str) -> AnalysisResult {
        analyze(&parse_program(src).unwrap(), &AnalysisConfig::default())
    }

    #[test]
    fn ne_branch_swaps_split_sides() {
        // `id != 0` sends the singleton down the FALSE edge.
        let src = "\
            if id != 0 then\n  send 1 -> 0;\n\
            else\n  recv y <- np - 1;\nend\n";
        // Workers [1..np-1] all send to 0; root receives from np-1 only:
        // exactly one match, everything else unreceived -> leak... avoid
        // leaks: match only one sender. Use a clean variant instead:
        let _ = src;
        let clean = "\
            if id != 0 then\n  skip;\n\
            else\n  x := 1;\nend\n\
            print 3;\n";
        let result = analyze_src(clean);
        assert!(result.is_exact(), "{:?}", result.verdict);
        // Both sides reach the print; value constant 3 on all.
        assert!(result.prints.iter().all(|p| p.value == Some(3)));
    }

    #[test]
    fn strict_comparisons_split_correctly() {
        for cond in ["id > 0", "id >= 1", "not (id = 0)", "0 < id"] {
            let src = format!(
                "if {cond} then\n  send id -> 0;\nelse\n  for i = 1 to np - 1 do\n    recv y <- i;\n  end\nend\n"
            );
            let result = analyze_src(&src);
            assert!(result.is_exact(), "cond `{cond}`: {:?}", result.verdict);
            assert_eq!(result.matches.len(), 1, "cond `{cond}`");
        }
    }

    #[test]
    fn middle_singleton_split_produces_three_parts() {
        // id = 2 inside [0..np-1] splits into [0..1], [2..2], [3..np-1].
        let src = "\
            if id = 2 then\n  for i = 0 to 1 do\n    recv y <- i;\n  end\n\
            else\n  if id < 2 then\n    send id -> 2;\n  end\nend\n";
        let result = analyze_src(src);
        assert!(result.is_exact(), "{:?}", result.verdict);
        assert_eq!(result.matches.len(), 1);
    }
}
