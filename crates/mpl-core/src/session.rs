//! Shared per-analysis session state: the variable interner, widening
//! thresholds, and closure-instrumentation baseline.
//!
//! Every layer of the engine used to carry `String`-keyed variables and
//! re-derive configuration ad hoc. An [`AnalysisSession`] centralizes the
//! cross-cutting pieces:
//!
//! * **interning** — helpers that map source-level names to packed
//!   [`VarId`] handles through the thread-local [`mpl_domains::VarTable`],
//!   so clients construct ids the same way the engine does;
//! * **widening thresholds** — the ladder of constants the DBM widening
//!   snaps to (paper §VI fixpoint acceleration), configurable per run;
//! * **closure stats** — a [`ClosureStats`] baseline captured when the
//!   session starts, so the per-run delta (the §IX profile numbers) can
//!   be reported without resetting global counters. The engine stamps the
//!   delta into [`crate::result::AnalysisResult::closure_stats`], where a
//!   [`crate::observer::StatsObserver`] picks it up via `on_complete`.

use mpl_domains::{intern_name, ClosureStats, PsetId, VarId, DEFAULT_WIDEN_THRESHOLDS};

/// Cross-cutting state shared by one analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisSession {
    /// Threshold ladder used by constraint-graph widening.
    pub widen_thresholds: Vec<i64>,
    baseline: ClosureStats,
}

impl AnalysisSession {
    /// Starts a session with the given widening thresholds, snapshotting
    /// the closure counters as the baseline for [`Self::closure_delta`].
    #[must_use]
    pub fn new(widen_thresholds: Vec<i64>) -> AnalysisSession {
        AnalysisSession {
            widen_thresholds,
            baseline: ClosureStats::snapshot(),
        }
    }

    /// The closure operations performed since this session started.
    #[must_use]
    pub fn closure_delta(&self) -> ClosureStats {
        ClosureStats::snapshot().since(&self.baseline)
    }

    /// Interns `name` and returns its table index.
    #[must_use]
    pub fn intern(&self, name: &str) -> u32 {
        intern_name(name)
    }

    /// The id for a global (input) variable `name`.
    #[must_use]
    pub fn global(&self, name: &str) -> VarId {
        VarId::global(intern_name(name))
    }

    /// The id for `name` owned by process set `pset`.
    #[must_use]
    pub fn pset_var(&self, pset: PsetId, name: &str) -> VarId {
        VarId::pset_var(pset, intern_name(name))
    }

    /// The per-set rank variable `pset.id`.
    #[must_use]
    pub fn rank_id(&self, pset: PsetId) -> VarId {
        VarId::id_of(pset)
    }
}

impl Default for AnalysisSession {
    fn default() -> AnalysisSession {
        AnalysisSession::new(DEFAULT_WIDEN_THRESHOLDS.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_domains::ConstraintGraph;

    #[test]
    fn interning_helpers_match_engine_packing() {
        let s = AnalysisSession::default();
        let p = PsetId(3);
        assert_eq!(s.rank_id(p), VarId::id_of(p));
        assert_eq!(s.pset_var(p, "x"), s.pset_var(p, "x"));
        assert_ne!(s.pset_var(p, "x"), s.global("x"));
        assert!(s.rank_id(p).is_rank_id());
        assert_eq!(s.intern("x"), s.intern("x"));
    }

    #[test]
    fn closure_delta_counts_only_session_work() {
        // Warm up the counters so the baseline is non-zero.
        let mut pre = ConstraintGraph::new();
        pre.assert_eq_const(VarId::global(intern_name("w")), 1);
        pre.close();

        let s = AnalysisSession::default();
        let before = s.closure_delta();
        let mut g = ConstraintGraph::new();
        g.assert_eq_const(VarId::global(intern_name("x")), 4);
        g.close();
        let after = s.closure_delta();
        let ops = |st: &ClosureStats| st.full_closures + st.incremental_closures;
        assert!(ops(&after) > ops(&before));
    }

    #[test]
    fn default_thresholds_are_the_domain_defaults() {
        let s = AnalysisSession::default();
        assert_eq!(s.widen_thresholds, DEFAULT_WIDEN_THRESHOLDS.to_vec());
    }
}
