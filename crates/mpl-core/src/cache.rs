//! The fingerprint-keyed LRU result cache behind `mpl serve`.
//!
//! Keys are 64-bit content hashes of the *normalized* request (program
//! rendered from its AST plus the full configuration signature — see
//! [`crate::request::AnalysisRequest::fingerprint`]). A 64-bit hash can
//! collide, and a collision must never surface another program's answer,
//! so every entry also stores the full normalization string it was keyed
//! from (`check`): a lookup whose key matches but whose check string
//! differs is counted as a **collision** and treated as a miss — the
//! caller recomputes, and the colliding entry is overwritten. Correctness
//! therefore never depends on hash quality; only the hit rate does.
//!
//! Recency is a doubly-linked list threaded through a slot arena by
//! index, so `lookup`/`insert` are O(1) apart from the hash-map probe.
//! The cache is deliberately single-threaded (`&mut self`); the service
//! layer wraps it in a mutex and keeps the critical section to the
//! lookup/insert itself, never the analysis.

use std::collections::HashMap;

/// Index sentinel for "no slot".
const NIL: usize = usize::MAX;

/// Counters describing cache effectiveness. All deterministic given a
/// request sequence (the cache itself has no clock or randomness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing under the key.
    pub misses: u64,
    /// Entries displaced to make room (capacity evictions only;
    /// collision overwrites are counted separately).
    pub evictions: u64,
    /// Lookups whose key matched but whose check string did not — the
    /// 64-bit fingerprint collided and the fallback path recomputed.
    pub collisions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

#[derive(Debug)]
struct Slot {
    key: u64,
    check: String,
    body: String,
    prev: usize,
    next: usize,
}

/// A fingerprint-keyed LRU cache of rendered response bodies.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    collisions: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries. Zero capacity is a
    /// valid configuration ("caching off"): every lookup misses and
    /// every insert is dropped.
    #[must_use]
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            evictions: 0,
            collisions: 0,
        }
    }

    /// Looks up `key`, verifying the entry against `check`. A verified
    /// hit refreshes recency and returns the stored body; a check
    /// mismatch is the collision fallback path — counted, and reported
    /// as a miss so the caller recomputes.
    pub fn lookup(&mut self, key: u64, check: &str) -> Option<String> {
        let Some(&slot) = self.map.get(&key) else {
            self.misses += 1;
            return None;
        };
        if self.slots[slot].check != check {
            self.collisions += 1;
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.slots[slot].body.clone())
    }

    /// Inserts (or overwrites) the entry for `key`, evicting the least
    /// recently used entry if the cache is full.
    pub fn insert(&mut self, key: u64, check: String, body: String) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            // Same key re-inserted: refresh in place. This covers both a
            // racing double-compute of one request and a collision
            // overwrite (the latest computation wins either way).
            self.slots[slot].check = check;
            self.slots[slot].body = body;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "full cache has a tail");
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Slot {
                    key,
                    check,
                    body,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slots.push(Slot {
                    key,
                    check,
                    body,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Current effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            collisions: self.collisions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates resident entries from least- to most-recently used, as
    /// `(key, check, body)`. Re-inserting in this order into an empty
    /// cache reproduces the recency order exactly — the contract journal
    /// compaction and restart replay rely on.
    pub fn iter_lru(&self) -> impl Iterator<Item = (u64, &str, &str)> {
        let mut order = Vec::with_capacity(self.map.len());
        let mut cursor = self.tail;
        while cursor != NIL {
            order.push(cursor);
            cursor = self.slots[cursor].prev;
        }
        order.into_iter().map(|slot| {
            let s = &self.slots[slot];
            (s.key, s.check.as_str(), s.body.as_str())
        })
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            if self.head == slot {
                self.head = next;
            }
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            if self.tail == slot {
                self.tail = prev;
            }
        } else {
            self.slots[next].prev = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(n: u64) -> String {
        format!("check-{n}")
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let mut cache = ResultCache::new(4);
        assert_eq!(cache.lookup(1, &check(1)), None);
        cache.insert(1, check(1), "body-1".to_owned());
        assert_eq!(cache.lookup(1, &check(1)), Some("body-1".to_owned()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.collisions), (1, 1, 0, 0));
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn lru_eviction_order_respects_recency() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, check(1), "b1".to_owned());
        cache.insert(2, check(2), "b2".to_owned());
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.lookup(1, &check(1)).is_some());
        cache.insert(3, check(3), "b3".to_owned());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(2, &check(2)).is_none(), "2 was evicted");
        assert!(cache.lookup(1, &check(1)).is_some());
        assert!(cache.lookup(3, &check(3)).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn colliding_key_falls_back_to_recompute() {
        let mut cache = ResultCache::new(4);
        cache.insert(42, "program A".to_owned(), "answer A".to_owned());
        // Same 64-bit key, different content: must NOT serve answer A.
        assert_eq!(cache.lookup(42, "program B"), None);
        let s = cache.stats();
        assert_eq!(s.collisions, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 0);
        // The recomputed entry overwrites the colliding one...
        cache.insert(42, "program B".to_owned(), "answer B".to_owned());
        assert_eq!(cache.lookup(42, "program B"), Some("answer B".to_owned()));
        // ...at which point the original is the one that collides.
        assert_eq!(cache.lookup(42, "program A"), None);
        assert_eq!(cache.stats().collisions, 2);
        assert_eq!(cache.len(), 1, "one body per key");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert(1, check(1), "b".to_owned());
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(1, &check(1)), None);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let mut cache = ResultCache::new(2);
        cache.insert(1, check(1), "old".to_owned());
        cache.insert(2, check(2), "b2".to_owned());
        cache.insert(1, check(1), "new".to_owned());
        // 1 is now most recent; inserting 3 evicts 2.
        cache.insert(3, check(3), "b3".to_owned());
        assert_eq!(cache.lookup(1, &check(1)), Some("new".to_owned()));
        assert!(cache.lookup(2, &check(2)).is_none());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn iter_lru_reproduces_recency_order() {
        let mut cache = ResultCache::new(4);
        for k in 1..=4u64 {
            cache.insert(k, check(k), format!("b{k}"));
        }
        // Touch 2 so it becomes most recent.
        assert!(cache.lookup(2, &check(2)).is_some());
        let order: Vec<u64> = cache.iter_lru().map(|(k, _, _)| k).collect();
        assert_eq!(order, vec![1, 3, 4, 2]);
        // Re-inserting in iteration order reproduces the same recency:
        // the next eviction victim matches in both caches.
        let mut rebuilt = ResultCache::new(4);
        for (k, c, b) in cache.iter_lru() {
            rebuilt.insert(k, c.to_owned(), b.to_owned());
        }
        rebuilt.insert(9, check(9), "b9".to_owned());
        assert!(rebuilt.lookup(1, &check(1)).is_none(), "1 was the LRU");
        assert!(rebuilt.lookup(2, &check(2)).is_some());
    }

    #[test]
    fn churn_over_capacity_is_stable() {
        let mut cache = ResultCache::new(8);
        for round in 0..4u64 {
            for k in 0..32u64 {
                cache.insert(k, check(k), format!("body-{k}-{round}"));
            }
        }
        assert_eq!(cache.len(), 8);
        // The last 8 keys inserted are resident with their latest bodies.
        for k in 24..32u64 {
            assert_eq!(cache.lookup(k, &check(k)), Some(format!("body-{k}-3")));
        }
        for k in 0..24u64 {
            assert_eq!(cache.lookup(k, &check(k)), None);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 8);
        assert_eq!(s.evictions, 32 * 4 - 8);
    }
}
