//! The worklist scheduler: exploration order, budgets, cancellation and
//! widening-delay bookkeeping, extracted from the engine loop.
//!
//! States are keyed by their pCFG location (the `location_key`: the
//! ordered (CFG node, pending?) pairs of their process sets) and explored
//! FIFO — the deterministic order the golden corpus pins byte-for-byte.
//! The scheduler owns the three fixpoint policies of §VI:
//!
//! * **budgets** — the step budget and (via [`Scheduler::next`]'s polling)
//!   the cooperative deadline;
//! * **delayed widening** — a recurring location is explored exactly for
//!   the first `widen_delay` visits, then widened with thresholds until
//!   it converges;
//! * **admission** — a successor state is queued only if it brings new
//!   information at its location (`same_as` dedup / widening progress).

use std::collections::{HashMap, VecDeque};

use mpl_cfg::SccRanks;
use mpl_runtime::CancelToken;

use crate::client::ClientDomain;
use crate::config::{AnalysisConfig, ScheduleOrder};
use crate::observer::AnalysisObserver;
use crate::result::TopReason;
use crate::state::AnalysisState;

/// How many worklist steps may pass between two polls of the
/// cancellation token — the bound behind the "engine observes
/// cancellation within a bounded number of steps" guarantee.
pub const CANCEL_CHECK_STEPS: u64 = 8;

/// An interned pCFG location: an index into the scheduler's slot table.
/// Replaces the per-step `Vec<(CfgNodeId, bool)>` allocation of
/// [`AnalysisState::location_key`] — the key is hashed once
/// ([`AnalysisState::location_fingerprint`]) and passed by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocationKey(u32);

impl LocationKey {
    /// The slot index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Best-known state per location, with its cached state fingerprint and
/// the location's visit count.
struct Slot {
    state: AnalysisState,
    fp: u64,
    visits: u32,
}

/// A snapshot of the scheduler's location store, for `--stats` memory
/// reporting.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct StoredStats {
    /// Number of distinct pCFG locations with a stored state.
    pub locations: usize,
    /// Estimated heap bytes of the stored states, counting each
    /// CoW-shared component allocation once.
    pub approx_bytes: usize,
}

/// The engine's worklist with its budget and widening bookkeeping.
pub struct Scheduler {
    work: VecDeque<AnalysisState>,
    /// Best-known state, cached fingerprint and visit count per interned
    /// location.
    stored: Vec<Slot>,
    /// Location fingerprint → slot index.
    loc_index: HashMap<u64, u32>,
    /// Debug-only collision guard: the full location key per slot.
    #[cfg(debug_assertions)]
    loc_keys: Vec<Vec<(mpl_cfg::CfgNodeId, bool)>>,
    steps: u64,
    max_steps: u64,
    widen_delay: u32,
    cancel: Option<CancelToken>,
    order: ScheduleOrder,
    /// SCC reverse-postorder node ranks, set by the engine when the
    /// configured [`ScheduleOrder`] is `Priority`.
    priority: Option<SccRanks>,
}

impl Scheduler {
    /// A scheduler configured from the engine knobs (step budget,
    /// widening delay, cancellation token, frontier order).
    #[must_use]
    pub fn new(config: &AnalysisConfig) -> Scheduler {
        Scheduler {
            work: VecDeque::new(),
            stored: Vec::new(),
            loc_index: HashMap::new(),
            #[cfg(debug_assertions)]
            loc_keys: Vec::new(),
            steps: 0,
            max_steps: config.max_steps,
            widen_delay: config.widen_delay,
            cancel: config.cancel.clone(),
            order: config.order,
            priority: None,
        }
    }

    /// Installs the SCC reverse-postorder ranks that back the
    /// `Priority` frontier order. A no-op under FIFO order.
    pub fn set_priority(&mut self, ranks: SccRanks) {
        self.priority = Some(ranks);
    }

    /// Interns the state's pCFG location, returning a stable by-value
    /// key. `None` if the location has never been stored.
    fn lookup(&self, s: &AnalysisState) -> Option<LocationKey> {
        let key = self
            .loc_index
            .get(&s.location_fingerprint())
            .map(|&i| LocationKey(i));
        #[cfg(debug_assertions)]
        if let Some(k) = key {
            debug_assert_eq!(
                self.loc_keys[k.index()],
                s.location_key(),
                "location fingerprint collision"
            );
        }
        key
    }

    /// Allocates a slot for a location not seen before.
    fn insert_slot(&mut self, s: &AnalysisState, fp: u64) -> LocationKey {
        let idx = u32::try_from(self.stored.len()).expect("location count overflow");
        self.loc_index.insert(s.location_fingerprint(), idx);
        #[cfg(debug_assertions)]
        self.loc_keys.push(s.location_key());
        self.stored.push(Slot {
            state: s.clone(),
            fp,
            visits: 1,
        });
        LocationKey(idx)
    }

    /// Location-store size and estimated memory, each CoW-shared
    /// allocation counted once.
    #[must_use]
    pub fn stored_stats(&self) -> StoredStats {
        let mut seen = std::collections::HashSet::new();
        let mut bytes = 0;
        for slot in &self.stored {
            bytes += slot.state.approx_bytes(&mut seen);
        }
        StoredStats {
            locations: self.stored.len(),
            approx_bytes: bytes,
        }
    }

    /// Seeds the worklist with the initial state (counted as the first
    /// visit of its location).
    pub fn seed(&mut self, init: AnalysisState) {
        let fp = init.fingerprint();
        self.insert_slot(&init, fp);
        self.work.push_back(init);
    }

    /// Worklist steps taken so far (1-based on the first [`Self::tick`]).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Pops the next state to explore.
    ///
    /// Returns `None` when the worklist is exhausted (fixpoint), and
    /// `Some(Err(reason))` when a budget ran out: the step budget, or —
    /// polled every [`CANCEL_CHECK_STEPS`] steps, starting at step 1 so a
    /// pre-cancelled token is observed before any real work — the
    /// cooperative deadline.
    pub fn tick(&mut self) -> Option<Result<AnalysisState, TopReason>> {
        let st = self.work.pop_front()?;
        match self.count_step() {
            Some(reason) => Some(Err(reason)),
            None => Some(Ok(st)),
        }
    }

    /// Counts one worklist step against the budgets — exactly the
    /// accounting [`Self::tick`] performs after popping. The round-based
    /// engine drains whole frontiers *without* counting (extraction is
    /// speculative) and calls this once per item as the item's results
    /// are merged, so step numbers, the budget cut-off and the
    /// cancellation polling cadence are byte-identical to the historical
    /// one-pop-one-tick loop for any worker count.
    pub fn count_step(&mut self) -> Option<TopReason> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Some(TopReason::StepBudget);
        }
        if self.steps % CANCEL_CHECK_STEPS == 1 {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Some(TopReason::Deadline);
                }
            }
        }
        None
    }

    /// Drains the ready frontier: every queued state, in exploration
    /// order, paired with its interned location key. Returns an empty
    /// batch at fixpoint.
    ///
    /// The drain is capped at `remaining step budget + 1` items so a
    /// parallel round never steps unboundedly many states the budget
    /// check would discard (the `+ 1` lets the over-budget step surface
    /// `TopReason::StepBudget` exactly as the sequential loop would).
    /// Under [`ScheduleOrder::Priority`] the drained batch is stably
    /// sorted by SCC reverse-postorder rank — a round-local reordering,
    /// identical for every worker count.
    pub fn drain_frontier(&mut self) -> Vec<(LocationKey, AnalysisState)> {
        let remaining = self
            .max_steps
            .saturating_sub(self.steps)
            .saturating_add(1)
            .min(self.work.len() as u64);
        let take = usize::try_from(remaining).unwrap_or(usize::MAX);
        let mut batch = Vec::with_capacity(take);
        for _ in 0..take {
            let st = self.work.pop_front().expect("drain within queue length");
            let key = self
                .lookup(&st)
                .expect("every queued state has an interned location");
            batch.push((key, st));
        }
        if self.order == ScheduleOrder::Priority {
            if let Some(ranks) = &self.priority {
                batch.sort_by_key(|(_, st)| {
                    st.psets
                        .iter()
                        .map(|p| ranks.rank(p.node))
                        .min()
                        .unwrap_or(u32::MAX)
                });
            }
        }
        batch
    }

    /// Offers a successor state for exploration.
    ///
    /// The first `widen_delay` visits of a location are explored exactly
    /// (dropped only if identical to the stored state); later visits are
    /// widened against the stored state via the client's
    /// [`ClientDomain::widen`] until convergence. Returns
    /// `Some(TopReason::AbstractionLoss)` when widening relaxed a
    /// process-set bound to ±∞.
    ///
    /// Dedup is O(1) in the common no-new-info case: the offered state's
    /// fingerprint is compared against the fingerprint cached with the
    /// stored state, and only a mismatch falls back to the full
    /// [`AnalysisState::same_as_slow`] walk.
    pub fn admit<O: AnalysisObserver>(
        &mut self,
        s: AnalysisState,
        domain: &dyn ClientDomain,
        thresholds: &[i64],
        observer: &mut O,
    ) -> Option<TopReason> {
        let s_fp = s.fingerprint();
        let Some(key) = self.lookup(&s) else {
            self.insert_slot(&s, s_fp);
            self.work.push_back(s);
            return None;
        };
        let slot = &self.stored[key.index()];
        let visits = slot.visits + 1;
        if visits <= self.widen_delay {
            // Delayed widening: explore the state exactly (bounded
            // concrete chains finish precisely), but stop if nothing
            // changed.
            if s_fp == slot.fp {
                debug_assert!(
                    s.structurally_eq(&slot.state),
                    "state fingerprint collision at admission"
                );
                return None;
            }
            if s.same_as_slow(&slot.state) {
                return None;
            }
            let slot = &mut self.stored[key.index()];
            slot.state = s.clone();
            slot.fp = s_fp;
            slot.visits = visits;
            self.work.push_back(s);
            return None;
        }
        let widened = domain.widen(&slot.state, &s, thresholds);
        let w_fp = widened.fingerprint();
        if w_fp == slot.fp {
            debug_assert!(
                widened.structurally_eq(&slot.state),
                "state fingerprint collision at widening"
            );
            return None; // Converged at this location.
        }
        if widened.same_as_slow(&slot.state) {
            return None; // Converged at this location.
        }
        if widened.any_vacant_range() {
            return Some(TopReason::AbstractionLoss);
        }
        observer.on_widen(visits, &widened);
        let slot = &mut self.stored[key.index()];
        slot.state = widened.clone();
        slot.fp = w_fp;
        slot.visits = visits;
        self.work.push_back(widened);
        None
    }
}

#[cfg(test)]
mod widen_delay_tests {
    use crate::client::Client;
    use crate::config::AnalysisConfig;
    use crate::engine::analyze;
    use crate::result::Verdict;
    use mpl_lang::corpus;

    #[test]
    fn immediate_widening_loses_concrete_chains() {
        // The delayed-widening knob: with no delay, the 4-block stencil
        // chain on a 4x4 grid is destructively merged; with the default
        // delay it completes exactly.
        let prog = corpus::stencil_2d_vertical(corpus::GridDims::Concrete { nrows: 4, ncols: 4 });
        let eager = AnalysisConfig {
            client: Client::Simple,
            widen_delay: 0,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &eager);
        assert!(
            matches!(result.verdict, Verdict::Top { .. }),
            "eager widening should lose the chain: {:?}",
            result.verdict
        );
        let default = AnalysisConfig {
            client: Client::Simple,
            ..AnalysisConfig::default()
        };
        assert!(analyze(&prog.program, &default).is_exact());
    }

    #[test]
    fn symbolic_loops_converge_under_any_delay() {
        for delay in [0u32, 2, 6, 12] {
            let config = AnalysisConfig {
                client: Client::Simple,
                widen_delay: delay,
                ..AnalysisConfig::default()
            };
            let result = analyze(&corpus::exchange_with_root().program, &config);
            assert!(result.is_exact(), "delay {delay}: {:?}", result.verdict);
        }
    }
}

#[cfg(test)]
mod cancel_tests {
    use super::CANCEL_CHECK_STEPS;
    use crate::config::AnalysisConfig;
    use crate::engine::analyze;
    use crate::result::{AnalysisResult, TopReason, Verdict};
    use mpl_lang::corpus;

    #[test]
    fn pre_cancelled_token_yields_deadline_top_within_bounded_steps() {
        let prog = corpus::exchange_with_root();
        let token = mpl_runtime::CancelToken::new();
        token.cancel();
        let config = AnalysisConfig::builder()
            .cancel_token(token)
            .build()
            .expect("valid config");
        let result = analyze(&prog.program, &config);
        assert!(
            matches!(
                result.verdict,
                Verdict::Top {
                    reason: TopReason::Deadline
                }
            ),
            "{:?}",
            result.verdict
        );
        assert!(
            result.steps <= CANCEL_CHECK_STEPS,
            "cancellation observed after {} steps (bound {CANCEL_CHECK_STEPS})",
            result.steps
        );
        // Sound ⊤: nothing is claimed about the program.
        assert!(result.matches.is_empty());
        assert!(result.leaks.is_empty());
    }

    #[test]
    fn uncancelled_token_does_not_perturb_the_analysis() {
        let prog = corpus::exchange_with_root();
        let plain = analyze(&prog.program, &AnalysisConfig::default());
        let config = AnalysisConfig::builder()
            .cancel_token(mpl_runtime::CancelToken::new())
            .build()
            .expect("valid config");
        let tokened = analyze(&prog.program, &config);
        assert_eq!(plain.verdict, tokened.verdict);
        assert_eq!(plain.matches, tokened.matches);
        assert_eq!(plain.steps, tokened.steps);
    }

    #[test]
    fn deadline_reason_has_stable_code_and_message() {
        assert_eq!(TopReason::Deadline.code(), "deadline");
        assert_eq!(
            TopReason::Deadline.to_string(),
            "analysis deadline exceeded"
        );
        let bare = AnalysisResult::top(TopReason::Deadline);
        assert!(!bare.is_exact());
        assert_eq!(bare.steps, 0);
    }

    #[test]
    fn step_budget_yields_top() {
        let prog = corpus::exchange_with_root();
        let config = AnalysisConfig {
            max_steps: 3,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        assert!(matches!(result.verdict, Verdict::Top { .. }));
    }
}

#[cfg(test)]
mod frontier_order_tests {
    use mpl_cfg::{Cfg, CfgNodeId, SccRanks};
    use mpl_lang::corpus;

    use super::Scheduler;
    use crate::config::{AnalysisConfig, ScheduleOrder};
    use crate::state::AnalysisState;

    /// A scheduler seeded with one single-pset state per CFG node of the
    /// fig. 2 program, in *descending* SCC-rank order — adversarial input
    /// for a worklist that should explore in reverse postorder. Returns
    /// the seeded node order alongside.
    fn seeded_desc(order: ScheduleOrder) -> (Scheduler, SccRanks, Vec<CfgNodeId>) {
        let prog = corpus::fig2_exchange();
        let cfg = Cfg::build(&prog.program);
        let ranks = SccRanks::compute(&cfg);
        let mut nodes: Vec<CfgNodeId> = cfg.node_ids().collect();
        nodes.sort_by_key(|n| std::cmp::Reverse(ranks.rank(*n)));
        let config = AnalysisConfig::builder()
            .schedule_order(order)
            .build()
            .expect("default-based config is valid");
        let mut sched = Scheduler::new(&config);
        if order == ScheduleOrder::Priority {
            sched.set_priority(ranks.clone());
        }
        for &n in &nodes {
            sched.seed(AnalysisState::initial(n, 4));
        }
        (sched, ranks, nodes)
    }

    fn drained_ranks(sched: &mut Scheduler, ranks: &SccRanks) -> Vec<u32> {
        sched
            .drain_frontier()
            .iter()
            .map(|(_, st)| ranks.rank(st.psets[0].node))
            .collect()
    }

    #[test]
    fn priority_drain_sorts_the_batch_by_scc_rank() {
        let (mut sched, ranks, nodes) = seeded_desc(ScheduleOrder::Priority);
        let seeded: Vec<u32> = nodes.iter().map(|n| ranks.rank(*n)).collect();
        let drained = drained_ranks(&mut sched, &ranks);
        let mut sorted = seeded.clone();
        sorted.sort_unstable();
        assert!(
            seeded.windows(2).any(|w| w[0] > w[1]),
            "the seed order must be adversarial for the test to bite"
        );
        assert_eq!(drained, sorted, "priority drain re-sorts by rank");
        assert_ne!(drained, seeded, "the sort actually reordered the batch");
    }

    #[test]
    fn fifo_drain_preserves_insertion_order() {
        let (mut sched, ranks, nodes) = seeded_desc(ScheduleOrder::Fifo);
        // FIFO must ignore the ranks even when they are installed.
        sched.set_priority(ranks.clone());
        let seeded: Vec<u32> = nodes.iter().map(|n| ranks.rank(*n)).collect();
        let drained = drained_ranks(&mut sched, &ranks);
        assert_eq!(drained, seeded, "FIFO drain is insertion-ordered");
    }
}
