//! The worklist scheduler: exploration order, budgets, cancellation and
//! widening-delay bookkeeping, extracted from the engine loop.
//!
//! States are keyed by their pCFG location (the `location_key`: the
//! ordered (CFG node, pending?) pairs of their process sets) and explored
//! FIFO — the deterministic order the golden corpus pins byte-for-byte.
//! The scheduler owns the three fixpoint policies of §VI:
//!
//! * **budgets** — the step budget and (via [`Scheduler::next`]'s polling)
//!   the cooperative deadline;
//! * **delayed widening** — a recurring location is explored exactly for
//!   the first `widen_delay` visits, then widened with thresholds until
//!   it converges;
//! * **admission** — a successor state is queued only if it brings new
//!   information at its location (`same_as` dedup / widening progress).

use std::collections::{HashMap, VecDeque};

use mpl_cfg::CfgNodeId;
use mpl_runtime::CancelToken;

use crate::client::ClientDomain;
use crate::config::AnalysisConfig;
use crate::observer::AnalysisObserver;
use crate::result::TopReason;
use crate::state::AnalysisState;

/// How many worklist steps may pass between two polls of the
/// cancellation token — the bound behind the "engine observes
/// cancellation within a bounded number of steps" guarantee.
pub const CANCEL_CHECK_STEPS: u64 = 8;

/// The engine's worklist with its budget and widening bookkeeping.
pub struct Scheduler {
    work: VecDeque<AnalysisState>,
    /// Best-known state and visit count per pCFG location.
    stored: HashMap<Vec<(CfgNodeId, bool)>, (AnalysisState, u32)>,
    steps: u64,
    max_steps: u64,
    widen_delay: u32,
    cancel: Option<CancelToken>,
}

impl Scheduler {
    /// A scheduler configured from the engine knobs (step budget,
    /// widening delay, cancellation token).
    #[must_use]
    pub fn new(config: &AnalysisConfig) -> Scheduler {
        Scheduler {
            work: VecDeque::new(),
            stored: HashMap::new(),
            steps: 0,
            max_steps: config.max_steps,
            widen_delay: config.widen_delay,
            cancel: config.cancel.clone(),
        }
    }

    /// Seeds the worklist with the initial state (counted as the first
    /// visit of its location).
    pub fn seed(&mut self, init: AnalysisState) {
        self.stored.insert(init.location_key(), (init.clone(), 1));
        self.work.push_back(init);
    }

    /// Worklist steps taken so far (1-based on the first [`Self::tick`]).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Pops the next state to explore.
    ///
    /// Returns `None` when the worklist is exhausted (fixpoint), and
    /// `Some(Err(reason))` when a budget ran out: the step budget, or —
    /// polled every [`CANCEL_CHECK_STEPS`] steps, starting at step 1 so a
    /// pre-cancelled token is observed before any real work — the
    /// cooperative deadline.
    pub fn tick(&mut self) -> Option<Result<AnalysisState, TopReason>> {
        let st = self.work.pop_front()?;
        self.steps += 1;
        if self.steps > self.max_steps {
            return Some(Err(TopReason::StepBudget));
        }
        if self.steps % CANCEL_CHECK_STEPS == 1 {
            if let Some(token) = &self.cancel {
                if token.is_cancelled() {
                    return Some(Err(TopReason::Deadline));
                }
            }
        }
        Some(Ok(st))
    }

    /// Offers a successor state for exploration.
    ///
    /// The first `widen_delay` visits of a location are explored exactly
    /// (dropped only if identical to the stored state); later visits are
    /// widened against the stored state via the client's
    /// [`ClientDomain::widen`] until convergence. Returns
    /// `Some(TopReason::AbstractionLoss)` when widening relaxed a
    /// process-set bound to ±∞.
    pub fn admit<O: AnalysisObserver>(
        &mut self,
        s: AnalysisState,
        domain: &dyn ClientDomain,
        thresholds: &[i64],
        observer: &mut O,
    ) -> Option<TopReason> {
        let key = s.location_key();
        match self.stored.get(&key) {
            None => {
                self.stored.insert(key, (s.clone(), 1));
                self.work.push_back(s);
            }
            Some((old, visits)) => {
                let visits = visits + 1;
                if visits <= self.widen_delay {
                    // Delayed widening: explore the state exactly
                    // (bounded concrete chains finish precisely),
                    // but stop if nothing changed.
                    if s.same_as(old) {
                        return None;
                    }
                    self.stored.insert(key, (s.clone(), visits));
                    self.work.push_back(s);
                    return None;
                }
                let widened = domain.widen(old, &s, thresholds);
                if widened.same_as(old) {
                    return None; // Converged at this location.
                }
                if widened.any_vacant_range() {
                    return Some(TopReason::AbstractionLoss);
                }
                observer.on_widen(visits, &widened);
                self.stored.insert(key, (widened.clone(), visits));
                self.work.push_back(widened);
            }
        }
        None
    }
}

#[cfg(test)]
mod widen_delay_tests {
    use crate::client::Client;
    use crate::config::AnalysisConfig;
    use crate::engine::analyze;
    use crate::result::Verdict;
    use mpl_lang::corpus;

    #[test]
    fn immediate_widening_loses_concrete_chains() {
        // The delayed-widening knob: with no delay, the 4-block stencil
        // chain on a 4x4 grid is destructively merged; with the default
        // delay it completes exactly.
        let prog = corpus::stencil_2d_vertical(corpus::GridDims::Concrete { nrows: 4, ncols: 4 });
        let eager = AnalysisConfig {
            client: Client::Simple,
            widen_delay: 0,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &eager);
        assert!(
            matches!(result.verdict, Verdict::Top { .. }),
            "eager widening should lose the chain: {:?}",
            result.verdict
        );
        let default = AnalysisConfig {
            client: Client::Simple,
            ..AnalysisConfig::default()
        };
        assert!(analyze(&prog.program, &default).is_exact());
    }

    #[test]
    fn symbolic_loops_converge_under_any_delay() {
        for delay in [0u32, 2, 6, 12] {
            let config = AnalysisConfig {
                client: Client::Simple,
                widen_delay: delay,
                ..AnalysisConfig::default()
            };
            let result = analyze(&corpus::exchange_with_root().program, &config);
            assert!(result.is_exact(), "delay {delay}: {:?}", result.verdict);
        }
    }
}

#[cfg(test)]
mod cancel_tests {
    use super::CANCEL_CHECK_STEPS;
    use crate::config::AnalysisConfig;
    use crate::engine::analyze;
    use crate::result::{AnalysisResult, TopReason, Verdict};
    use mpl_lang::corpus;

    #[test]
    fn pre_cancelled_token_yields_deadline_top_within_bounded_steps() {
        let prog = corpus::exchange_with_root();
        let token = mpl_runtime::CancelToken::new();
        token.cancel();
        let config = AnalysisConfig::builder()
            .cancel_token(token)
            .build()
            .expect("valid config");
        let result = analyze(&prog.program, &config);
        assert!(
            matches!(
                result.verdict,
                Verdict::Top {
                    reason: TopReason::Deadline
                }
            ),
            "{:?}",
            result.verdict
        );
        assert!(
            result.steps <= CANCEL_CHECK_STEPS,
            "cancellation observed after {} steps (bound {CANCEL_CHECK_STEPS})",
            result.steps
        );
        // Sound ⊤: nothing is claimed about the program.
        assert!(result.matches.is_empty());
        assert!(result.leaks.is_empty());
    }

    #[test]
    fn uncancelled_token_does_not_perturb_the_analysis() {
        let prog = corpus::exchange_with_root();
        let plain = analyze(&prog.program, &AnalysisConfig::default());
        let config = AnalysisConfig::builder()
            .cancel_token(mpl_runtime::CancelToken::new())
            .build()
            .expect("valid config");
        let tokened = analyze(&prog.program, &config);
        assert_eq!(plain.verdict, tokened.verdict);
        assert_eq!(plain.matches, tokened.matches);
        assert_eq!(plain.steps, tokened.steps);
    }

    #[test]
    fn deadline_reason_has_stable_code_and_message() {
        assert_eq!(TopReason::Deadline.code(), "deadline");
        assert_eq!(
            TopReason::Deadline.to_string(),
            "analysis deadline exceeded"
        );
        let bare = AnalysisResult::top(TopReason::Deadline);
        assert!(!bare.is_exact());
        assert_eq!(bare.steps, 0);
    }

    #[test]
    fn step_budget_yields_top() {
        let prog = corpus::exchange_with_root();
        let config = AnalysisConfig {
            max_steps: 3,
            ..AnalysisConfig::default()
        };
        let result = analyze(&prog.program, &config);
        assert!(matches!(result.verdict, Verdict::Top { .. }));
    }
}
