//! The MPI-CFG baseline (paper §II, Shires et al. \[22\]).
//!
//! MPI-CFGs take the *sequentially*-derived route to a communication
//! topology: first connect **every** send statement to **every** receive
//! statement, then prune edges that per-process information alone can
//! refute. This module implements that baseline so the pCFG framework's
//! precision gain is measurable (see the `tables` binary and
//! EXPERIMENTS.md): on loop-based patterns the pCFG analysis produces the
//! exact statement topology while MPI-CFG retains the all-pairs
//! over-approximation minus a few constant-rank refutations.
//!
//! Pruning implemented (all derivable without cross-process reasoning):
//!
//! * **guard intervals** — a forward interval analysis on `id` over each
//!   process's CFG (branches like `id = 0` or `id <= np - 2` refine the
//!   interval); a pair is pruned when the send's destination is a
//!   constant outside the receive's possible `id` interval, or the
//!   receive's source is a constant outside the send's `id` interval;
//! * **constant mismatch** — when both the destination and the source are
//!   constants, the pair survives only if mutually consistent with the
//!   guard intervals.

use std::collections::BTreeSet;
use std::fmt;

use mpl_cfg::dataflow::{solve_forward, ForwardAnalysis, JoinSemiLattice};
use mpl_cfg::{Cfg, CfgNode, CfgNodeId, EdgeKind};
use mpl_lang::ast::{BinOp, Expr};

/// An inclusive interval of possible `id` values; `None` ends are
/// unbounded (`np` is unknown to a sequential analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdInterval {
    /// True once the node is reachable.
    reachable: bool,
    /// Lower bound on `id`, if known.
    pub lo: Option<i64>,
    /// Upper bound on `id`, if known.
    pub hi: Option<i64>,
}

impl IdInterval {
    fn top() -> IdInterval {
        IdInterval {
            reachable: true,
            lo: None,
            hi: None,
        }
    }

    /// True if the constant `c` may be this process's `id`.
    #[must_use]
    pub fn may_contain(&self, c: i64) -> bool {
        if !self.reachable {
            return false;
        }
        self.lo.is_none_or(|lo| lo <= c) && self.hi.is_none_or(|hi| c <= hi)
    }
}

impl JoinSemiLattice for IdInterval {
    fn join(&mut self, other: &Self) -> bool {
        if !other.reachable {
            return false;
        }
        if !self.reachable {
            *self = *other;
            return true;
        }
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
        let changed = lo != self.lo || hi != self.hi;
        self.lo = lo;
        self.hi = hi;
        changed
    }
}

struct IdGuards;

/// Extracts `id REL constant` from a branch condition.
fn id_comparison(cond: &Expr) -> Option<(BinOp, i64)> {
    let Expr::Binary(op, l, r) = cond else {
        return None;
    };
    match (l.as_ref(), r.as_ref()) {
        (Expr::Id, Expr::Int(c)) => Some((*op, *c)),
        (Expr::Int(c), Expr::Id) => {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => *other,
            };
            Some((flipped, *c))
        }
        _ => None,
    }
}

impl ForwardAnalysis for IdGuards {
    type Fact = IdInterval;

    fn boundary(&self) -> IdInterval {
        IdInterval::top()
    }

    fn bottom(&self) -> IdInterval {
        IdInterval::default()
    }

    fn transfer(
        &self,
        cfg: &Cfg,
        node: CfgNodeId,
        kind: EdgeKind,
        fact: &IdInterval,
    ) -> IdInterval {
        let mut out = *fact;
        let CfgNode::Branch { cond } = cfg.node(node) else {
            return out;
        };
        let Some((op, c)) = id_comparison(cond) else {
            return out;
        };
        let taken = kind == EdgeKind::True;
        let narrow_lo = |out: &mut IdInterval, v: i64| {
            out.lo = Some(out.lo.map_or(v, |lo| lo.max(v)));
        };
        let narrow_hi = |out: &mut IdInterval, v: i64| {
            out.hi = Some(out.hi.map_or(v, |hi| hi.min(v)));
        };
        match (op, taken) {
            (BinOp::Eq, true) => {
                narrow_lo(&mut out, c);
                narrow_hi(&mut out, c);
            }
            (BinOp::Ne, false) => {
                narrow_lo(&mut out, c);
                narrow_hi(&mut out, c);
            }
            (BinOp::Le, true) | (BinOp::Lt, false) => narrow_hi(&mut out, c),
            (BinOp::Lt, true) | (BinOp::Le, false) => {
                if taken {
                    narrow_hi(&mut out, c - 1);
                } else {
                    narrow_lo(&mut out, c);
                }
            }
            (BinOp::Ge, true) | (BinOp::Gt, false) => narrow_lo(&mut out, c),
            (BinOp::Gt, true) | (BinOp::Ge, false) => {
                if taken {
                    narrow_lo(&mut out, c + 1);
                } else {
                    narrow_hi(&mut out, c - 1);
                }
            }
            _ => {}
        }
        out
    }
}

/// The MPI-CFG over-approximate topology: every send statement connected
/// to every receive statement it could not be sequentially refuted from.
#[derive(Debug, Clone)]
pub struct MpiCfgTopology {
    pairs: BTreeSet<(CfgNodeId, CfgNodeId)>,
    all_pairs: usize,
}

impl MpiCfgTopology {
    /// The surviving (send, recv) statement pairs.
    #[must_use]
    pub fn pairs(&self) -> &BTreeSet<(CfgNodeId, CfgNodeId)> {
        &self.pairs
    }

    /// The unpruned all-pairs count (sends × recvs).
    #[must_use]
    pub fn all_pairs(&self) -> usize {
        self.all_pairs
    }

    /// How many pairs sequential pruning removed.
    #[must_use]
    pub fn pruned(&self) -> usize {
        self.all_pairs - self.pairs.len()
    }
}

impl fmt::Display for MpiCfgTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "MPI-CFG topology: {} of {} send x recv pairs survive sequential pruning",
            self.pairs.len(),
            self.all_pairs
        )?;
        for (s, r) in &self.pairs {
            writeln!(f, "  {s} -> {r}")?;
        }
        Ok(())
    }
}

/// Builds the MPI-CFG baseline topology for `cfg`.
#[must_use]
pub fn mpi_cfg_topology(cfg: &Cfg) -> MpiCfgTopology {
    let guards = solve_forward(cfg, &IdGuards);
    let mut sends = Vec::new();
    let mut recvs = Vec::new();
    for id in cfg.node_ids() {
        match cfg.node(id) {
            CfgNode::Send { dest, .. } => sends.push((id, dest.clone())),
            CfgNode::Recv { src, .. } => recvs.push((id, src.clone())),
            _ => {}
        }
    }
    let all_pairs = sends.len() * recvs.len();
    let mut pairs = BTreeSet::new();
    for (s, dest) in &sends {
        for (r, src) in &recvs {
            let mut possible = true;
            // Destination constant must fit the receiver's id interval.
            if let Expr::Int(c) = dest {
                if !guards[r.0 as usize].may_contain(*c) {
                    possible = false;
                }
            }
            // Source constant must fit the sender's id interval.
            if let Expr::Int(m) = src {
                if !guards[s.0 as usize].may_contain(*m) {
                    possible = false;
                }
            }
            if possible {
                pairs.insert((*s, *r));
            }
        }
    }
    MpiCfgTopology { pairs, all_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{analyze_cfg, AnalysisConfig};
    use mpl_lang::{corpus, parse_program};
    use mpl_sim::Simulator;

    fn build(src: &str) -> Cfg {
        Cfg::build(&parse_program(src).unwrap())
    }

    #[test]
    fn guard_intervals_refine_on_id_branches() {
        let cfg = build("if id = 0 then send 1 -> 1; else recv x <- 0; end");
        let guards = solve_forward(&cfg, &IdGuards);
        let send = cfg.comm_nodes()[0];
        let recv = cfg.comm_nodes()[1];
        assert!(guards[send.0 as usize].may_contain(0));
        assert!(!guards[send.0 as usize].may_contain(1));
        // The else side excludes nothing except... id != 0 is not an
        // interval fact, so 0 may still be contained.
        assert!(guards[recv.0 as usize].may_contain(5));
    }

    #[test]
    fn fig2_mpicfg_equals_pcfg() {
        // Two sends, two recvs; constant pruning removes the crossed
        // pairs, so MPI-CFG happens to be exact on Fig 2.
        let prog = corpus::fig2_exchange();
        let cfg = Cfg::build(&prog.program);
        let mpicfg = mpi_cfg_topology(&cfg);
        let pcfg = analyze_cfg(&cfg, &AnalysisConfig::default());
        assert_eq!(mpicfg.all_pairs(), 4);
        assert_eq!(*mpicfg.pairs(), pcfg.matches);
    }

    #[test]
    fn mdcask_mpicfg_is_coarser_than_pcfg() {
        // The paper's positioning: pCFG strictly refines MPI-CFG on
        // loop-based patterns.
        let prog = corpus::mdcask_full();
        let cfg = Cfg::build(&prog.program);
        let mpicfg = mpi_cfg_topology(&cfg);
        let pcfg = analyze_cfg(&cfg, &AnalysisConfig::default());
        assert!(pcfg.is_exact());
        assert!(
            pcfg.matches.is_subset(mpicfg.pairs()),
            "baseline must over-approximate"
        );
        assert!(
            mpicfg.pairs().len() > pcfg.matches.len(),
            "MPI-CFG {} pairs vs pCFG {}",
            mpicfg.pairs().len(),
            pcfg.matches.len()
        );
    }

    #[test]
    fn mpicfg_always_covers_runtime() {
        // Soundness of the baseline itself.
        for prog in [
            corpus::exchange_with_root(),
            corpus::nearest_neighbor_shift(),
        ] {
            let cfg = Cfg::build(&prog.program);
            let mpicfg = mpi_cfg_topology(&cfg);
            let outcome = Simulator::from_cfg(cfg, 6).run().unwrap();
            assert!(
                outcome.topology.site_pairs().is_subset(mpicfg.pairs()),
                "{}",
                prog.name
            );
        }
    }

    #[test]
    fn display_reports_pruning() {
        let prog = corpus::fig2_exchange();
        let cfg = Cfg::build(&prog.program);
        let text = mpi_cfg_topology(&cfg).to_string();
        assert!(text.contains("2 of 4"));
    }
}
