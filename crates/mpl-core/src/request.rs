//! The unified request/response API: every way of asking this workspace
//! for an analysis — `mpl analyze`, `mpl analyze-corpus`, the `mpl
//! serve` daemon — builds an [`AnalysisRequest`] and renders an
//! [`AnalysisResponse`].
//!
//! The point of funneling all entry points through one pair of types is
//! **byte-identity**: a response must render to the same bytes whether
//! it was computed cold by `mpl analyze --json`, computed cold by the
//! daemon, or replayed from the daemon's result cache. That is what
//! makes the cache testable (diff the bytes) and what makes cached
//! answers trustworthy (there is no "cached rendering" that can drift
//! from the real one). Consequences:
//!
//! * response bodies carry no request ids, no cache status, and no
//!   timestamps; timing fields are opt-in (`timing`) and explicitly
//!   nondeterministic, so cacheable paths never request them;
//! * the `name` field is optional and omitted when absent, so an
//!   anonymous daemon request renders exactly like `mpl analyze --json`;
//! * every record starts with the protocol version field `"v"`
//!   ([`PROTOCOL_VERSION`]) and uses the stable kebab-case codes from
//!   [`Verdict::code`], [`TopReason::code`](crate::result::TopReason::code)
//!   and [`JobOutcome::code`].
//!
//! Requests are also the **cache identity**: [`AnalysisRequest::fingerprint`]
//! hashes [`AnalysisRequest::cache_check`] — the full configuration
//! signature plus the *normalized* program (rendered from its AST, so
//! formatting differences cannot cause spurious misses) — with
//! [`mpl_domains::splitmix64`]. The check string itself is stored next
//! to every cache entry; see [`crate::cache`] for why a 64-bit key alone
//! is never trusted.
//!
//! Construction is builder-only ([`AnalysisRequest::builder`]) and
//! validating: malformed inputs become typed [`RequestError`]s
//! (mirroring [`ConfigError`]) instead of panics or silently-defaulted
//! knobs.

use std::fmt;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use mpl_lang::ast::Program;
use mpl_lang::parse_program;

use crate::batch::{run_job, BatchAnalyzer, BatchJob, BatchSummary, Fault, JobOutcome, JobRecord};
use crate::client::Client;
use crate::config::{AnalysisConfig, AnalysisConfigBuilder, ConfigError};
use crate::json::json_escape;
use crate::result::{AnalysisResult, Verdict};

/// Version of the JSON wire format. Stamped as `"v"` on every record
/// (program lines, summaries, and all daemon responses) so clients can
/// detect incompatible servers instead of misparsing them.
pub const PROTOCOL_VERSION: i64 = 1;

/// A rejected [`AnalysisRequestBuilder`] input — the request-level
/// analogue of [`ConfigError`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RequestError {
    /// Neither a program AST nor source text was supplied.
    MissingProgram,
    /// The supplied source text failed to parse.
    Parse {
        /// The parser's error message.
        message: String,
    },
    /// The client tag named no known client analysis (see
    /// [`Client::from_tag`]).
    UnknownClient {
        /// The unrecognized tag.
        tag: String,
    },
    /// The configuration knobs failed validation.
    Config(ConfigError),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::MissingProgram => f.write_str("no program or source given"),
            RequestError::Parse { message } => write!(f, "{message}"),
            RequestError::UnknownClient { tag } => write!(f, "unknown client `{tag}`"),
            RequestError::Config(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<ConfigError> for RequestError {
    fn from(e: ConfigError) -> RequestError {
        RequestError::Config(e)
    }
}

impl RequestError {
    /// A stable kebab-case code for the wire protocol's `error` records.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            RequestError::MissingProgram => "missing-program",
            RequestError::Parse { .. } => "parse-error",
            RequestError::UnknownClient { .. } => "unknown-client",
            RequestError::Config(_) => "bad-config",
        }
    }
}

/// One validated analysis request: a program, the configuration to run
/// it under, and the execution policy (deadline, retry ladder, injected
/// fault). Construct via [`AnalysisRequest::builder`]; the struct is
/// `#[non_exhaustive]` so fields stay readable while construction is
/// reserved to the validating builder.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct AnalysisRequest {
    /// Optional display name. Part of the cache identity because it is
    /// rendered into the response (and into injected-fault panic
    /// messages).
    pub name: Option<String>,
    /// The program to analyze.
    pub program: Program,
    /// Validated engine configuration.
    pub config: AnalysisConfig,
    /// Cooperative deadline for each attempt.
    pub timeout: Option<Duration>,
    /// Degraded retries after a budget-⊤ or deadline (the batch layer's
    /// ladder; see [`crate::batch`]).
    pub retries: u32,
    /// Deterministic fault injection (tests and smoke runs only).
    pub fault: Option<Fault>,
}

impl AnalysisRequest {
    /// A builder with nothing set: defaults come from
    /// [`AnalysisConfig::default`] at [`AnalysisRequestBuilder::build`]
    /// time.
    #[must_use]
    pub fn builder() -> AnalysisRequestBuilder {
        AnalysisRequestBuilder::default()
    }

    /// The canonical program text: the AST rendered back to source, so
    /// two differently-formatted inputs of the same program normalize to
    /// the same string (and hence the same cache identity).
    #[must_use]
    pub fn normalized_program(&self) -> String {
        self.program.to_string()
    }

    /// The full cache identity as a string: every knob that can change
    /// the rendered response, followed by the normalized program. Two
    /// requests with equal check strings produce byte-identical
    /// responses; the cache stores this string next to each entry and
    /// verifies it on every hit (collision safety — see
    /// [`crate::cache::ResultCache::lookup`]).
    #[must_use]
    pub fn cache_check(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        let _ = write!(
            out,
            "name={};client={};min_np={};max_steps={};max_psets={};pending={};\
             widen_delay={};thresholds=",
            self.name.as_deref().unwrap_or(""),
            c.client.tag(),
            c.min_np,
            c.max_steps,
            c.max_psets,
            c.allow_pending_sends,
            c.widen_delay,
        );
        for (i, t) in c.widen_thresholds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{t}");
        }
        let _ = write!(
            out,
            ";trace={};timeout_nanos={};retries={};fault={}",
            c.trace,
            self.timeout.map_or(0, |t| t.as_nanos()),
            self.retries,
            match self.fault {
                None => "none",
                Some(Fault::Panic) => "panic",
                Some(Fault::Spin) => "spin",
                Some(Fault::TopOnce) => "top-once",
                // `Fault` is non_exhaustive-in-spirit; an unknown future
                // variant must not silently alias `none`.
                #[allow(unreachable_patterns)]
                Some(_) => "other",
            },
        );
        // Appended only when non-default, so historical cache entries
        // keep their check strings. `intra_jobs` is deliberately absent:
        // the worker count is an execution knob with byte-identical
        // output, so cached answers are shared across `--par` values.
        // Schedule order and the injected engine fault *do* change the
        // response and must split the identity.
        if c.order == crate::config::ScheduleOrder::Priority {
            out.push_str(";order=priority");
        }
        if let Some(step) = c.panic_at_step {
            let _ = write!(out, ";panic_at={step}");
        }
        let _ = write!(out, "\n{}", self.normalized_program());
        out
    }

    /// 64-bit content hash of [`Self::cache_check`], chained through
    /// [`mpl_domains::splitmix64`] — the same mixing function behind the
    /// engine's structural state fingerprints. Used as the cache key;
    /// never trusted without the check string.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let check = self.cache_check();
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for chunk in check.as_bytes().chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            h = mpl_domains::splitmix64(h ^ u64::from_le_bytes(buf));
        }
        mpl_domains::splitmix64(h ^ check.len() as u64)
    }

    /// Executes the request on the calling thread with the full batch
    /// discipline — fresh interner per attempt, cooperative deadline,
    /// retry ladder — and panic isolation: an unwinding analysis becomes
    /// a [`JobOutcome::Panicked`] response, exactly as it would in a
    /// [`BatchAnalyzer`] fleet.
    #[must_use]
    pub fn execute(&self) -> AnalysisResponse {
        let start = Instant::now();
        let job = BatchJob {
            name: self.name.clone().unwrap_or_default(),
            program: self.program.clone(),
            config: self.config.clone(),
            timeout: self.timeout,
            fault: self.fault,
        };
        let caught = catch_unwind(AssertUnwindSafe(|| run_job(&job, None, self.retries)));
        let wall_nanos = start.elapsed().as_nanos() as u64;
        let (outcome, result) = match caught {
            Ok((outcome, result)) => (outcome, result),
            Err(payload) => (
                JobOutcome::Panicked {
                    message: mpl_runtime::panic_message(payload.as_ref()),
                },
                None,
            ),
        };
        AnalysisResponse {
            name: self.name.clone(),
            client: self.config.client,
            outcome,
            result,
            wall_nanos,
            panic_worker: None,
        }
    }
}

/// Validating builder for [`AnalysisRequest`].
///
/// ```
/// use mpl_core::{AnalysisRequest, Client};
///
/// let request = AnalysisRequest::builder()
///     .source("x := 1;")
///     .client(Client::Simple)
///     .min_np(8)
///     .build()
///     .expect("valid request");
/// assert_eq!(request.config.min_np, 8);
/// assert!(AnalysisRequest::builder().build().is_err()); // no program
/// ```
#[derive(Debug, Clone, Default)]
pub struct AnalysisRequestBuilder {
    name: Option<String>,
    source: Option<String>,
    program: Option<Program>,
    base: Option<AnalysisConfig>,
    client: Option<Client>,
    client_tag: Option<String>,
    min_np: Option<i64>,
    max_steps: Option<u64>,
    max_psets: Option<usize>,
    widen_delay: Option<u32>,
    par: Option<usize>,
    order: Option<crate::config::ScheduleOrder>,
    timeout: Option<Duration>,
    retries: u32,
    fault: Option<Fault>,
    honor_fault_directive: bool,
}

impl AnalysisRequestBuilder {
    /// Sets the display name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the program as source text (parsed — and its fault
    /// directives scanned, when enabled — at build time).
    #[must_use]
    pub fn source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }

    /// Sets the program as an already-parsed AST (wins over
    /// [`Self::source`]).
    #[must_use]
    pub fn program(mut self, program: Program) -> Self {
        self.program = Some(program);
        self
    }

    /// Seeds the configuration from an existing [`AnalysisConfig`]
    /// instead of the defaults (the daemon's server-side defaults, for
    /// example). Per-knob setters below still override it.
    #[must_use]
    pub fn config(mut self, config: AnalysisConfig) -> Self {
        self.base = Some(config);
        self
    }

    /// Sets the client analysis.
    #[must_use]
    pub fn client(mut self, client: Client) -> Self {
        self.client = Some(client);
        self
    }

    /// Sets the client analysis by its wire tag (`simple` /
    /// `cartesian`), validated at build time.
    #[must_use]
    pub fn client_tag(mut self, tag: impl Into<String>) -> Self {
        self.client_tag = Some(tag.into());
        self
    }

    /// Sets the assumed lower bound on `np`.
    #[must_use]
    pub fn min_np(mut self, min_np: i64) -> Self {
        self.min_np = Some(min_np);
        self
    }

    /// Sets the engine step budget.
    #[must_use]
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Sets the pCFG node-width budget.
    #[must_use]
    pub fn max_psets(mut self, max_psets: usize) -> Self {
        self.max_psets = Some(max_psets);
        self
    }

    /// Sets the widening delay.
    #[must_use]
    pub fn widen_delay(mut self, widen_delay: u32) -> Self {
        self.widen_delay = Some(widen_delay);
        self
    }

    /// Sets the intra-analysis worker count (`--par`): how many round
    /// executor threads step each frontier. Purely an execution knob —
    /// the response is byte-identical for any value — so it is not part
    /// of the cache identity.
    #[must_use]
    pub fn par(mut self, par: usize) -> Self {
        self.par = Some(par);
        self
    }

    /// Sets the frontier schedule order (FIFO vs SCC/reverse-postorder
    /// priority). Unlike `par`, this changes exploration order and hence
    /// the response, so it splits the cache identity.
    #[must_use]
    pub fn order(mut self, order: crate::config::ScheduleOrder) -> Self {
        self.order = Some(order);
        self
    }

    /// Sets the cooperative per-attempt deadline.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Clears any previously-set deadline (the wire protocol's
    /// `timeout_ms: 0` — "no deadline", overriding a server default).
    #[must_use]
    pub fn no_timeout(mut self) -> Self {
        self.timeout = None;
        self
    }

    /// Sets the degraded-retry count.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Injects a deterministic fault.
    #[must_use]
    pub fn fault(mut self, fault: Fault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// When enabled, `// mpl:fault=<kind>` directives in the source text
    /// are honored (the corpus-directory and daemon behaviour; off by
    /// default so `mpl analyze` runs what it is given).
    #[must_use]
    pub fn honor_fault_directive(mut self, honor: bool) -> Self {
        self.honor_fault_directive = honor;
        self
    }

    /// Validates and produces the request.
    ///
    /// # Errors
    ///
    /// [`RequestError::MissingProgram`] when neither program nor source
    /// was given, [`RequestError::Parse`] on bad source,
    /// [`RequestError::UnknownClient`] on a bad client tag, and
    /// [`RequestError::Config`] when the knob combination fails
    /// [`AnalysisConfigBuilder::build`].
    pub fn build(self) -> Result<AnalysisRequest, RequestError> {
        let program = match (self.program, &self.source) {
            (Some(program), _) => program,
            (None, Some(source)) => parse_program(source).map_err(|e| RequestError::Parse {
                message: e.to_string(),
            })?,
            (None, None) => return Err(RequestError::MissingProgram),
        };
        let client = match (self.client, self.client_tag) {
            (Some(client), _) => Some(client),
            (None, Some(tag)) => {
                Some(Client::from_tag(&tag).ok_or(RequestError::UnknownClient { tag })?)
            }
            (None, None) => None,
        };
        let mut cb = AnalysisConfigBuilder::from_config(self.base.unwrap_or_default());
        if let Some(client) = client {
            cb = cb.client(client);
        }
        if let Some(min_np) = self.min_np {
            cb = cb.min_np(min_np);
        }
        if let Some(max_steps) = self.max_steps {
            cb = cb.max_steps(max_steps);
        }
        if let Some(max_psets) = self.max_psets {
            cb = cb.max_psets(max_psets);
        }
        if let Some(widen_delay) = self.widen_delay {
            cb = cb.widen_delay(widen_delay);
        }
        if let Some(par) = self.par {
            cb = cb.intra_jobs(par);
        }
        if let Some(order) = self.order {
            cb = cb.schedule_order(order);
        }
        let config = cb.build()?;
        let fault = self.fault.or_else(|| {
            if self.honor_fault_directive {
                self.source.as_deref().and_then(Fault::from_directive)
            } else {
                None
            }
        });
        Ok(AnalysisRequest {
            name: self.name,
            program,
            config,
            timeout: self.timeout,
            retries: self.retries,
            fault,
        })
    }
}

/// The answer to one [`AnalysisRequest`], renderable to the stable wire
/// format. `#[non_exhaustive]` for the same reason as the request.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct AnalysisResponse {
    /// The request's display name, echoed back (omitted from rendered
    /// output when absent).
    pub name: Option<String>,
    /// The client analysis that ran.
    pub client: Client,
    /// How the job ended.
    pub outcome: JobOutcome,
    /// The analysis result; `None` exactly when no analysis ran
    /// (panicked / error records).
    pub result: Option<AnalysisResult>,
    /// Wall-clock nanoseconds. **Not deterministic** — rendered only
    /// with `timing`.
    pub wall_nanos: u64,
    /// Pool worker id for fleet-panicked records. **Not deterministic.**
    pub panic_worker: Option<usize>,
}

/// Renders a verdict as its stable tag plus the optional ⊤-cause code.
fn verdict_tag(verdict: &Verdict) -> (&'static str, Option<&'static str>) {
    match verdict {
        Verdict::Top { reason } => (verdict.code(), Some(reason.code())),
        other => (other.code(), None),
    }
}

/// Compact `send->recv` topology listing (deterministic: the match set
/// is ordered).
fn topology_list(result: &AnalysisResult) -> Vec<String> {
    result
        .matches
        .iter()
        .map(|(s, r)| format!("{s}->{r}"))
        .collect()
}

impl AnalysisResponse {
    /// Wraps a batch [`JobRecord`] (which does not know its client) into
    /// a response. An empty record name maps to `None`.
    #[must_use]
    pub fn from_record(record: JobRecord, client: Client) -> AnalysisResponse {
        AnalysisResponse {
            name: (!record.name.is_empty()).then_some(record.name),
            client,
            outcome: record.outcome,
            result: record.result,
            wall_nanos: record.wall_nanos,
            panic_worker: record.panic_worker,
        }
    }

    /// The canonical JSON record for this response — one line, stable
    /// key order, versioned. This is *the* wire format: `mpl analyze
    /// --json`, the corpus NDJSON and the daemon all emit exactly these
    /// bytes, which is what lets the result cache store rendered bodies.
    /// `timing` appends the nondeterministic fields and must stay off on
    /// cacheable paths.
    #[must_use]
    pub fn json_line(&self, timing: bool) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"v\":{PROTOCOL_VERSION},\"type\":\"program\"");
        if let Some(name) = &self.name {
            let _ = write!(out, ",\"name\":\"{}\"", json_escape(name));
        }
        let _ = write!(out, ",\"client\":\"{}\"", self.client.tag());
        match &self.result {
            Some(result) => {
                let (tag, reason) = verdict_tag(&result.verdict);
                let _ = write!(out, ",\"verdict\":\"{tag}\",\"reason\":");
                match reason {
                    Some(code) => {
                        let _ = write!(out, "\"{code}\"");
                    }
                    None => out.push_str("null"),
                }
            }
            None => out.push_str(",\"verdict\":null,\"reason\":null"),
        }
        let _ = write!(out, ",\"outcome\":\"{}\"", self.outcome.code());
        if let JobOutcome::Degraded { attempts } = self.outcome {
            let _ = write!(out, ",\"attempts\":{attempts}");
        }
        if let Some(detail) = self.outcome.detail() {
            let _ = write!(out, ",\"detail\":\"{}\"", json_escape(detail));
        }
        let (matches, leaks, steps) = self
            .result
            .as_ref()
            .map_or((0, 0, 0), |r| (r.matches.len(), r.leaks.len(), r.steps));
        let topo = self.result.as_ref().map_or_else(String::new, |r| {
            topology_list(r)
                .iter()
                .map(|p| format!("\"{}\"", json_escape(p)))
                .collect::<Vec<_>>()
                .join(",")
        });
        let _ = write!(
            out,
            ",\"matches\":{matches},\"leaks\":{leaks},\"steps\":{steps},\"topology\":[{topo}]"
        );
        if timing {
            let _ = write!(out, ",\"wall_nanos\":{}", self.wall_nanos);
            if let Some(worker) = self.panic_worker {
                let _ = write!(out, ",\"worker\":{worker}");
            }
        }
        out.push('}');
        out
    }

    /// The human-readable corpus line for this response (the
    /// `analyze-corpus` text format; unnamed responses render as
    /// `(unnamed)`).
    #[must_use]
    pub fn text_line(&self, timing: bool) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}:", self.name.as_deref().unwrap_or("(unnamed)"));
        match &self.result {
            Some(result) => {
                let (tag, reason) = verdict_tag(&result.verdict);
                let _ = write!(out, " verdict={tag}");
                if let Some(code) = reason {
                    let _ = write!(out, " reason={code}");
                }
                if !matches!(self.outcome, JobOutcome::Completed) {
                    let _ = write!(out, " outcome={}", self.outcome.code());
                    if let JobOutcome::Degraded { attempts } = self.outcome {
                        let _ = write!(out, " attempts={attempts}");
                    }
                }
                let _ = write!(
                    out,
                    " matches={} leaks={} steps={}",
                    result.matches.len(),
                    result.leaks.len(),
                    result.steps
                );
                let topo = topology_list(result);
                if !topo.is_empty() {
                    let _ = write!(out, " topology={}", topo.join(","));
                }
            }
            None => {
                let _ = write!(out, " outcome={}", self.outcome.code());
                if let Some(detail) = self.outcome.detail() {
                    let _ = write!(out, " detail=\"{detail}\"");
                }
            }
        }
        if timing {
            let _ = write!(out, " wall_ms={:.3}", self.wall_nanos as f64 / 1e6);
            if let Some(worker) = self.panic_worker {
                let _ = write!(out, " worker={worker}");
            }
        }
        out
    }
}

/// The versioned JSON summary record for a batch (the last line of the
/// corpus NDJSON output).
#[must_use]
pub fn summary_json_line(summary: &BatchSummary, workers: usize, timing: bool) -> String {
    let s = summary;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"v\":{PROTOCOL_VERSION},\"type\":\"summary\",\"programs\":{},\"exact\":{},\
         \"deadlock\":{},\"top\":{},\"completed\":{},\"degraded\":{},\"timed_out\":{},\
         \"panicked\":{},\"errors\":{},\"matches\":{},\"leaks\":{},\"steps\":{},\
         \"full_closures\":{},\"incremental_closures\":{}",
        s.programs,
        s.exact,
        s.deadlock,
        s.top,
        s.completed,
        s.degraded,
        s.timed_out,
        s.panicked,
        s.errors,
        s.matches,
        s.leaks,
        s.steps,
        s.closure.full_closures,
        s.closure.incremental_closures
    );
    if timing {
        let _ = write!(
            out,
            ",\"cpu_nanos\":{},\"workers\":{}",
            s.wall_nanos, workers
        );
    }
    out.push('}');
    out
}

/// A batch of requests run through the [`BatchAnalyzer`] fleet —
/// submission order preserved, one [`AnalysisResponse`] per request.
/// Deadlines and retries are fleet-level here
/// ([`Self::timeout`] / [`Self::retries`]); a request's own `timeout`
/// still overrides the fleet deadline per job, but per-request `retries`
/// are ignored in batch mode (the fleet ladder applies uniformly so the
/// report stays deterministic).
#[derive(Debug)]
pub struct RequestBatch {
    analyzer: BatchAnalyzer,
    clients: Vec<Client>,
}

impl Default for RequestBatch {
    fn default() -> RequestBatch {
        RequestBatch::new()
    }
}

impl RequestBatch {
    /// An empty batch (one worker, no deadline, no retries).
    #[must_use]
    pub fn new() -> RequestBatch {
        RequestBatch {
            analyzer: BatchAnalyzer::new(),
            clients: Vec::new(),
        }
    }

    /// Sets the worker count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> RequestBatch {
        self.analyzer = self.analyzer.workers(workers);
        self
    }

    /// Sets the fleet-wide per-job deadline.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> RequestBatch {
        self.analyzer = self.analyzer.timeout(timeout);
        self
    }

    /// Sets the fleet-wide degraded-retry count.
    #[must_use]
    pub fn retries(mut self, retries: u32) -> RequestBatch {
        self.analyzer = self.analyzer.retries(retries);
        self
    }

    /// Appends a request.
    pub fn push(&mut self, request: AnalysisRequest) {
        self.clients.push(request.config.client);
        let mut job = BatchJob::new(
            request.name.unwrap_or_default(),
            request.program,
            request.config,
        );
        if let Some(timeout) = request.timeout {
            job = job.with_timeout(timeout);
        }
        if let Some(fault) = request.fault {
            job = job.with_fault(fault);
        }
        self.analyzer.push(job);
    }

    /// Appends a pre-failed record (a request that could not even be
    /// built — unparseable source, bad knobs); it flows through in its
    /// submission slot as a [`JobOutcome::Error`] response rendered
    /// under `client`.
    pub fn push_error(
        &mut self,
        name: impl Into<String>,
        message: impl Into<String>,
        client: Client,
    ) {
        self.clients.push(client);
        self.analyzer.push_error(name, message);
    }

    /// Number of queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.analyzer.len()
    }

    /// True if no requests are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.analyzer.is_empty()
    }

    /// Runs the batch. Deterministic apart from the timing fields, for
    /// any worker count (see [`BatchAnalyzer::run`]).
    #[must_use]
    pub fn run(self) -> BatchResponse {
        let report = self.analyzer.run();
        let responses = report
            .records
            .into_iter()
            .zip(self.clients)
            .map(|(record, client)| AnalysisResponse::from_record(record, client))
            .collect();
        BatchResponse {
            responses,
            summary: report.summary,
            workers: report.workers,
        }
    }
}

/// A completed [`RequestBatch`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BatchResponse {
    /// One response per request, in submission order.
    pub responses: Vec<AnalysisResponse>,
    /// Aggregated statistics.
    pub summary: BatchSummary,
    /// Number of workers the batch ran with.
    pub workers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::corpus;

    fn fig2_request() -> AnalysisRequest {
        AnalysisRequest::builder()
            .source(corpus::fig2_exchange().source)
            .client(Client::Simple)
            .build()
            .expect("valid request")
    }

    #[test]
    fn builder_validates_inputs() {
        assert_eq!(
            AnalysisRequest::builder().build().unwrap_err(),
            RequestError::MissingProgram
        );
        assert!(matches!(
            AnalysisRequest::builder().source("x := ;").build(),
            Err(RequestError::Parse { .. })
        ));
        assert!(matches!(
            AnalysisRequest::builder()
                .source("x := 1;")
                .client_tag("quantum")
                .build(),
            Err(RequestError::UnknownClient { tag }) if tag == "quantum"
        ));
        assert!(matches!(
            AnalysisRequest::builder()
                .source("x := 1;")
                .max_steps(0)
                .build(),
            Err(RequestError::Config(ConfigError::ZeroStepBudget))
        ));
    }

    #[test]
    fn fingerprint_ignores_formatting_but_not_config() {
        let a = AnalysisRequest::builder()
            .source("x := 1;\nsend x -> 0;")
            .build()
            .unwrap();
        let b = AnalysisRequest::builder()
            .source("x := 1;   send x -> 0;")
            .build()
            .unwrap();
        assert_eq!(a.normalized_program(), b.normalized_program());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.cache_check(), b.cache_check());

        let c = AnalysisRequest::builder()
            .source("x := 1;\nsend x -> 0;")
            .min_np(9)
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let named = AnalysisRequest::builder()
            .source("x := 1;\nsend x -> 0;")
            .name("n")
            .build()
            .unwrap();
        assert_ne!(a.fingerprint(), named.fingerprint());
    }

    #[test]
    fn execute_matches_batch_rendering() {
        // One request through the single-shot path and through a fleet
        // must render byte-identical JSON (the cache/daemon invariant).
        let solo = fig2_request().execute().json_line(false);
        let mut batch = RequestBatch::new().workers(4);
        batch.push(fig2_request());
        let fleet = batch.run();
        assert_eq!(solo, fleet.responses[0].json_line(false));
        assert!(solo.starts_with("{\"v\":1,\"type\":\"program\","), "{solo}");
        assert!(solo.contains("\"verdict\":\"exact\""), "{solo}");
        assert!(!solo.contains("\"name\""), "anonymous request: {solo}");
    }

    #[test]
    fn named_request_renders_name_field() {
        let request = AnalysisRequest::builder()
            .source(corpus::fig2_exchange().source)
            .client(Client::Simple)
            .name("fig2")
            .build()
            .unwrap();
        let line = request.execute().json_line(false);
        assert!(line.contains("\"name\":\"fig2\""), "{line}");
    }

    #[test]
    fn execute_isolates_panics() {
        let request = AnalysisRequest::builder()
            .source("// mpl:fault=panic\nx := 1;")
            .honor_fault_directive(true)
            .build()
            .unwrap();
        assert_eq!(request.fault, Some(Fault::Panic));
        let response = request.execute();
        assert!(matches!(response.outcome, JobOutcome::Panicked { .. }));
        let line = response.json_line(false);
        assert!(line.contains("\"outcome\":\"panicked\""), "{line}");
        assert!(line.contains("\"verdict\":null"), "{line}");
        assert!(line.contains("\"detail\":\"injected fault"), "{line}");
    }

    #[test]
    fn fault_directive_requires_opt_in() {
        let request = AnalysisRequest::builder()
            .source("// mpl:fault=panic\nx := 1;")
            .build()
            .unwrap();
        assert_eq!(request.fault, None);
    }

    #[test]
    fn timeout_is_honored() {
        let request = AnalysisRequest::builder()
            .source("// mpl:fault=spin\nx := 1;")
            .honor_fault_directive(true)
            .timeout(Duration::from_millis(50))
            .build()
            .unwrap();
        let response = request.execute();
        assert_eq!(response.outcome, JobOutcome::TimedOut);
        let line = response.json_line(false);
        assert!(
            line.contains("\"verdict\":\"top\",\"reason\":\"deadline\""),
            "{line}"
        );
    }

    #[test]
    fn summary_line_is_versioned() {
        let mut batch = RequestBatch::new();
        batch.push(fig2_request());
        let done = batch.run();
        let line = summary_json_line(&done.summary, done.workers, false);
        assert!(line.starts_with("{\"v\":1,\"type\":\"summary\","), "{line}");
        assert!(!line.contains("cpu_nanos"), "{line}");
        let timed = summary_json_line(&done.summary, done.workers, true);
        assert!(timed.contains("\"workers\":1"), "{timed}");
    }
}
