//! Analysis outcomes: verdicts, ⊤ causes, match events, print facts.
//!
//! These are the data the engine reports and the only types most
//! consumers need; they are independent of the worklist loop so that
//! observers ([`crate::observer`]), the batch runtime and the CLI can
//! share them without pulling in engine internals.

use std::collections::BTreeSet;
use std::fmt;

use mpl_cfg::CfgNodeId;

/// Why the analysis returned ⊤, as a typed cause. `Display` renders the
/// exact human-readable strings the engine has always reported, so logs
/// and golden files are unchanged while callers (the `--json` corpus
/// output, tests) can match on the cause structurally instead of by
/// substring.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopReason {
    /// The engine step budget ([`crate::config::AnalysisConfig::max_steps`])
    /// ran out.
    StepBudget,
    /// More process sets coexisted than
    /// [`crate::config::AnalysisConfig::max_psets`].
    PsetBudget {
        /// The configured bound that was exceeded.
        max: usize,
    },
    /// Widening relaxed a process-set bound all the way to ±∞ — the
    /// range abstraction lost the set.
    AbstractionLoss,
    /// All sets blocked on communication and no exact send–receive
    /// match exists (matching must be exact — §VI).
    MatchFailure {
        /// Display form of the blocked state.
        state: String,
    },
    /// An `id`-dependent branch condition did not split the process
    /// range into provable sub-ranges.
    SplitFailure {
        /// The condition that could not be split.
        cond: String,
    },
    /// A branch condition was not provably uniform across the set, so
    /// steering the whole set down one edge would be unsound.
    NonUniformCondition {
        /// The offending condition.
        cond: String,
    },
    /// The match-ambiguity case split recursed past its depth bound.
    SplitDepthExceeded,
    /// The run's cooperative deadline
    /// ([`crate::config::AnalysisConfig::cancel`]) fired before a
    /// fixpoint was reached. Sound by construction: the engine stops
    /// with ⊤ and claims nothing about unexplored behaviour.
    Deadline,
}

impl TopReason {
    /// A stable, machine-readable cause code (used by the corpus JSON
    /// output; kebab-case, never localized).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            TopReason::StepBudget => "step-budget",
            TopReason::PsetBudget { .. } => "pset-budget",
            TopReason::AbstractionLoss => "abstraction-loss",
            TopReason::MatchFailure { .. } => "match-failure",
            TopReason::SplitFailure { .. } => "split-failure",
            TopReason::NonUniformCondition { .. } => "non-uniform-condition",
            TopReason::SplitDepthExceeded => "split-depth-exceeded",
            TopReason::Deadline => "deadline",
        }
    }
}

impl fmt::Display for TopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopReason::StepBudget => f.write_str("step budget exceeded"),
            TopReason::PsetBudget { max } => write!(f, "more than {max} process sets"),
            TopReason::AbstractionLoss => f.write_str("widening lost a process-set bound"),
            TopReason::MatchFailure { state } => {
                write!(f, "cannot match blocked communication in {state}")
            }
            TopReason::SplitFailure { cond } => {
                write!(f, "cannot split process set on condition `{cond}`")
            }
            TopReason::NonUniformCondition { cond } => write!(
                f,
                "condition `{cond}` is not provably uniform across the process set"
            ),
            TopReason::SplitDepthExceeded => f.write_str("ambiguity-split depth exceeded"),
            TopReason::Deadline => f.write_str("analysis deadline exceeded"),
        }
    }
}

/// How the analysis ended.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Verdict {
    /// Fixpoint reached with every send–receive interaction matched
    /// exactly: the reported topology is the application's communication
    /// topology.
    Exact,
    /// The analysis proved that blocked receives can never be satisfied —
    /// a guaranteed deadlock (§I error detection).
    Deadlock {
        /// The blocked (CFG node, process range) pairs.
        blocked: Vec<(CfgNodeId, String)>,
    },
    /// The analysis gave up (⊤): the pattern exceeds the client
    /// abstraction or the framework's exact-matching requirement.
    Top {
        /// Why, as a typed cause.
        reason: TopReason,
    },
}

impl Verdict {
    /// A stable, machine-readable verdict code (kebab-case, mirroring
    /// [`TopReason::code`]; used by every JSON record the workspace
    /// emits — the corpus NDJSON and the `mpl serve` wire protocol).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            Verdict::Exact => "exact",
            Verdict::Deadlock { .. } => "deadlock",
            Verdict::Top { .. } => "top",
        }
    }
}

/// One recorded send–receive match with its process subsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchEvent {
    /// The send statement.
    pub send_node: CfgNodeId,
    /// The receive statement.
    pub recv_node: CfgNodeId,
    /// Matched sender ranks (display form).
    pub s_procs: String,
    /// Matched receiver ranks (display form).
    pub r_procs: String,
    /// The shape of the match.
    pub kind: crate::matcher::MatchKind,
    /// The sender rank, when the matched senders are one known constant.
    pub s_const: Option<i64>,
    /// The receiver rank, when the matched receivers are one known
    /// constant.
    pub r_const: Option<i64>,
}

impl fmt::Display for MatchEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} -> {}@{}",
            self.send_node, self.s_procs, self.recv_node, self.r_procs
        )
    }
}

/// A constant-propagation fact at a `print` statement (the Fig 2 client's
/// observable output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrintFact {
    /// The print statement.
    pub node: CfgNodeId,
    /// The process range executing it (display form).
    pub range: String,
    /// The printed value, if proven constant.
    pub value: Option<i64>,
}

/// The result of a pCFG analysis.
///
/// Equality compares everything, including `closure_stats` (which holds
/// wall-clock nanos) — normalize that field first when comparing results
/// of separate runs for semantic equivalence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisResult {
    /// Terminal verdict.
    pub verdict: Verdict,
    /// All established (send node, recv node) matches — the static
    /// communication topology at statement granularity.
    pub matches: BTreeSet<(CfgNodeId, CfgNodeId)>,
    /// Matches with their process subsets.
    pub events: Vec<MatchEvent>,
    /// Constant-propagation facts at prints.
    pub prints: Vec<PrintFact>,
    /// Send statements whose messages are provably never received
    /// (message leaks, §I error detection).
    pub leaks: Vec<CfgNodeId>,
    /// Engine steps taken.
    pub steps: u64,
    /// Closure operations performed during this run (full and incremental
    /// counts with average variable sizes — the §IX profile quantities).
    pub closure_stats: mpl_domains::ClosureStats,
    /// Optional trace (when `AnalysisConfig::trace`).
    pub trace: Vec<String>,
}

impl AnalysisResult {
    /// A bare ⊤ result that claims nothing: no matches, no leaks, no
    /// prints, zero steps. This is the sound degenerate answer the batch
    /// layer reports for jobs that never produced (or whose fault mode
    /// suppressed) a real engine run — deadline expiries in particular,
    /// where any partial progress would be wall-clock-dependent and
    /// therefore nondeterministic.
    #[must_use]
    pub fn top(reason: TopReason) -> AnalysisResult {
        AnalysisResult {
            verdict: Verdict::Top { reason },
            matches: BTreeSet::new(),
            events: Vec::new(),
            prints: Vec::new(),
            leaks: Vec::new(),
            steps: 0,
            closure_stats: mpl_domains::ClosureStats::default(),
            trace: Vec::new(),
        }
    }

    /// True if the analysis converged with exact matching.
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.verdict == Verdict::Exact
    }

    /// The constant printed at `node`, if every reaching process set
    /// prints the same proven constant.
    #[must_use]
    pub fn printed_constant(&self, node: CfgNodeId) -> Option<i64> {
        let mut vals = self
            .prints
            .iter()
            .filter(|p| p.node == node)
            .map(|p| p.value);
        let first = vals.next()??;
        for v in vals {
            if v != Some(first) {
                return None;
            }
        }
        Some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Every `TopReason` variant, with representative payloads. Extend
    /// this list when adding a variant — the tests below catch code
    /// collisions and Display drift for whatever is listed here.
    fn all_reasons() -> Vec<TopReason> {
        vec![
            TopReason::StepBudget,
            TopReason::PsetBudget { max: 12 },
            TopReason::AbstractionLoss,
            TopReason::MatchFailure {
                state: "{0:[0..np-1]@n3}".to_owned(),
            },
            TopReason::SplitFailure {
                cond: "id < k".to_owned(),
            },
            TopReason::NonUniformCondition {
                cond: "parity = 0".to_owned(),
            },
            TopReason::SplitDepthExceeded,
            TopReason::Deadline,
        ]
    }

    #[test]
    fn top_reason_codes_are_unique_and_kebab_case() {
        let mut seen: BTreeMap<&'static str, TopReason> = BTreeMap::new();
        for reason in all_reasons() {
            let code = reason.code();
            assert!(
                code.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "code `{code}` is not kebab-case"
            );
            assert!(!code.starts_with('-') && !code.ends_with('-'), "{code}");
            if let Some(prev) = seen.insert(code, reason.clone()) {
                panic!("code `{code}` collides: {prev:?} vs {reason:?}");
            }
        }
        assert_eq!(seen.len(), 8, "keep all_reasons() exhaustive");
    }

    #[test]
    fn top_reason_display_round_trips_through_code() {
        // Display strings must be stable, distinct per variant, and
        // consistent with code(): two reasons with different codes must
        // never render the same message (machine and human outputs stay
        // in one-to-one correspondence).
        let mut by_display: BTreeMap<String, &'static str> = BTreeMap::new();
        for reason in all_reasons() {
            let rendered = reason.to_string();
            assert!(!rendered.is_empty());
            if let Some(prev_code) = by_display.insert(rendered.clone(), reason.code()) {
                panic!(
                    "display `{rendered}` is shared by codes `{prev_code}` and `{}`",
                    reason.code()
                );
            }
        }
        // Spot-check the exact legacy strings golden files rely on.
        assert_eq!(TopReason::StepBudget.to_string(), "step budget exceeded");
        assert_eq!(
            TopReason::PsetBudget { max: 7 }.to_string(),
            "more than 7 process sets"
        );
        assert_eq!(
            TopReason::Deadline.to_string(),
            "analysis deadline exceeded"
        );
    }
}
