//! Normalization of MPL expressions into analysis-level forms:
//! linear expressions over namespaced variables, branch-condition
//! refinements, and symbolic (polynomial) values for the HSM client.

use std::collections::{BTreeSet, HashSet};

use mpl_cfg::{Cfg, CfgNode};
use mpl_domains::{intern_name, ConstEnv, ConstraintGraph, LinExpr, PsetId, VarId, VarKind};
use mpl_hsm::SymPoly;
use mpl_lang::ast::{BinOp, Expr, UnOp};

/// Static context shared by all transfer functions: which variable names
/// are ever assigned (assigned → per-process-set variable; never assigned
/// → uniform global input parameter, shared by all processes). Assigned
/// names are pre-interned so [`NormCtx::var`] — the hottest name lookup
/// in the engine — is one interner probe plus bit packing, with no
/// string allocation.
#[derive(Debug, Clone, Default)]
pub struct NormCtx {
    assigned: BTreeSet<String>,
    assigned_idx: HashSet<u32>,
}

impl NormCtx {
    /// Scans the CFG for assignment and receive targets.
    #[must_use]
    pub fn from_cfg(cfg: &Cfg) -> NormCtx {
        let mut assigned = BTreeSet::new();
        let mut mentioned = BTreeSet::new();
        let mut collect = |e: &Expr| collect_var_names(e, &mut mentioned);
        for id in cfg.node_ids() {
            match cfg.node(id) {
                CfgNode::Assign { name, value } => {
                    assigned.insert(name.clone());
                    collect(value);
                }
                CfgNode::Recv { var: name, src } => {
                    assigned.insert(name.clone());
                    collect(src);
                }
                CfgNode::Send { value, dest } => {
                    collect(value);
                    collect(dest);
                }
                CfgNode::Branch { cond } => collect(cond),
                CfgNode::Print(e) | CfgNode::Assume(e) => collect(e),
                CfgNode::Entry | CfgNode::Exit | CfgNode::Skip => {}
            }
        }
        // Pre-intern every name the program can mention: assigned names
        // first (keeping their historical indices), then the remaining
        // input parameters in sorted order. With the whole vocabulary
        // interned up front, no transfer function ever grows the table —
        // which is what lets the parallel round executor hand worker
        // threads a per-round snapshot and still produce `VarId`s that
        // mean the same thing on every thread.
        let assigned_idx: HashSet<u32> = assigned.iter().map(|n| intern_name(n)).collect();
        for name in mentioned.difference(&assigned) {
            let _ = intern_name(name);
        }
        NormCtx {
            assigned,
            assigned_idx,
        }
    }

    /// True if `name` is a never-assigned input parameter.
    #[must_use]
    pub fn is_input(&self, name: &str) -> bool {
        !self.assigned.contains(name)
    }

    /// The interned variable for `name` as seen by process set `pset`.
    #[must_use]
    pub fn var(&self, pset: PsetId, name: &str) -> VarId {
        let idx = intern_name(name);
        if self.assigned_idx.contains(&idx) {
            VarId::pset_var(pset, idx)
        } else {
            VarId::global(idx)
        }
    }

    /// Linearizes `expr` (as evaluated by process set `pset`) into
    /// `var + c` form, folding constant subtrees. Returns `None` for
    /// expressions outside the linear fragment.
    #[must_use]
    pub fn linearize(&self, expr: &Expr, pset: PsetId) -> Option<LinExpr> {
        match expr {
            Expr::Int(c) => Some(LinExpr::constant(*c)),
            Expr::Bool(b) => Some(LinExpr::constant(i64::from(*b))),
            Expr::Id => Some(LinExpr::of_var(VarId::id_of(pset))),
            Expr::Np => Some(LinExpr::of_var(VarId::NP)),
            Expr::Var(name) => Some(LinExpr::of_var(self.var(pset, name))),
            Expr::Unary(UnOp::Neg, e) => {
                let le = self.linearize(e, pset)?;
                le.as_constant().map(|c| LinExpr::constant(-c))
            }
            Expr::Unary(UnOp::Not, _) => None,
            Expr::Binary(op, l, r) => {
                let (l, r) = (self.linearize(l, pset)?, self.linearize(r, pset)?);
                match op {
                    BinOp::Add => match (l.as_constant(), r.as_constant()) {
                        (_, Some(c)) => Some(l.plus(c)),
                        (Some(c), _) => Some(r.plus(c)),
                        _ => None,
                    },
                    BinOp::Sub => match (l.as_constant(), r.as_constant()) {
                        // c - (v + d) is not var+c form; only a constant
                        // subtrahend keeps the expression linear.
                        (_, Some(c)) => Some(l.plus(-c)),
                        _ => None,
                    },
                    BinOp::Mul => match (l.as_constant(), r.as_constant()) {
                        (Some(a), Some(b)) => Some(LinExpr::constant(a * b)),
                        (Some(1), _) => Some(r),
                        (_, Some(1)) => Some(l),
                        (Some(0), _) | (_, Some(0)) => Some(LinExpr::constant(0)),
                        _ => None,
                    },
                    BinOp::Div => match (l.as_constant(), r.as_constant()) {
                        (Some(a), Some(b)) if b != 0 => Some(LinExpr::constant(a.div_euclid(b))),
                        (_, Some(1)) => Some(l),
                        _ => None,
                    },
                    BinOp::Mod => match (l.as_constant(), r.as_constant()) {
                        (Some(a), Some(b)) if b != 0 => Some(LinExpr::constant(a.rem_euclid(b))),
                        _ => None,
                    },
                    _ => None,
                }
            }
        }
    }

    /// Replaces every variable (and `np`) whose value the state pins to a
    /// constant by that constant, so syntactically non-linear expressions
    /// like `id + ncols` or `np - ncols` become linear once the grid
    /// dimensions are concrete.
    #[must_use]
    pub fn resolve_consts(
        &self,
        expr: &Expr,
        pset: PsetId,
        consts: &ConstEnv,
        cg: &mut ConstraintGraph,
    ) -> Expr {
        match expr {
            Expr::Var(name) => {
                let v = self.var(pset, name);
                match consts.const_of(v).or_else(|| cg.const_of(v)) {
                    Some(c) => Expr::Int(c),
                    None => expr.clone(),
                }
            }
            Expr::Np => match cg.const_of(VarId::NP) {
                Some(c) => Expr::Int(c),
                None => Expr::Np,
            },
            Expr::Binary(op, l, r) => Expr::binary(
                *op,
                self.resolve_consts(l, pset, consts, cg),
                self.resolve_consts(r, pset, consts, cg),
            ),
            Expr::Unary(op, e) => {
                Expr::Unary(*op, Box::new(self.resolve_consts(e, pset, consts, cg)))
            }
            _ => expr.clone(),
        }
    }

    /// [`NormCtx::linearize`] after [`NormCtx::resolve_consts`].
    #[must_use]
    pub fn linearize_resolved(
        &self,
        expr: &Expr,
        pset: PsetId,
        consts: &ConstEnv,
        cg: &mut ConstraintGraph,
    ) -> Option<LinExpr> {
        let resolved = self.resolve_consts(expr, pset, consts, cg);
        self.linearize(&resolved, pset)
    }

    /// Evaluates `expr` to a constant using the flat constant
    /// environment (the cheap evaluator used by the constant-propagation
    /// client).
    #[must_use]
    pub fn eval_const(&self, expr: &Expr, pset: PsetId, consts: &ConstEnv) -> Option<i64> {
        match expr {
            Expr::Int(c) => Some(*c),
            Expr::Bool(b) => Some(i64::from(*b)),
            Expr::Id | Expr::Np => None,
            Expr::Var(name) => consts.const_of(self.var(pset, name)),
            Expr::Unary(UnOp::Neg, e) => self.eval_const(e, pset, consts).map(|v| -v),
            Expr::Unary(UnOp::Not, e) => {
                self.eval_const(e, pset, consts).map(|v| i64::from(v == 0))
            }
            Expr::Binary(op, l, r) => {
                let (l, r) = (
                    self.eval_const(l, pset, consts)?,
                    self.eval_const(r, pset, consts)?,
                );
                match op {
                    BinOp::Add => Some(l + r),
                    BinOp::Sub => Some(l - r),
                    BinOp::Mul => Some(l * r),
                    BinOp::Div => (r != 0).then(|| l.div_euclid(r)),
                    BinOp::Mod => (r != 0).then(|| l.rem_euclid(r)),
                    BinOp::Eq => Some(i64::from(l == r)),
                    BinOp::Ne => Some(i64::from(l != r)),
                    BinOp::Lt => Some(i64::from(l < r)),
                    BinOp::Le => Some(i64::from(l <= r)),
                    BinOp::Gt => Some(i64::from(l > r)),
                    BinOp::Ge => Some(i64::from(l >= r)),
                    BinOp::And => Some(i64::from(l != 0 && r != 0)),
                    BinOp::Or => Some(i64::from(l != 0 || r != 0)),
                }
            }
        }
    }

    /// Extracts the atomic linear comparisons implied by `cond` holding
    /// (`negate = false`) or failing (`negate = true`), for constraint
    /// refinement. Conjunctions refine only positively; anything outside
    /// the fragment contributes nothing (sound: refinement is optional).
    pub fn refinements(
        &self,
        cond: &Expr,
        pset: PsetId,
        negate: bool,
    ) -> Vec<(LinExpr, LinExpr, RelOp)> {
        let mut out = Vec::new();
        self.collect_refinements(cond, pset, negate, &mut out);
        out
    }

    fn collect_refinements(
        &self,
        cond: &Expr,
        pset: PsetId,
        negate: bool,
        out: &mut Vec<(LinExpr, LinExpr, RelOp)>,
    ) {
        match cond {
            Expr::Binary(BinOp::And, l, r) if !negate => {
                self.collect_refinements(l, pset, false, out);
                self.collect_refinements(r, pset, false, out);
            }
            Expr::Binary(BinOp::Or, l, r) if negate => {
                // ¬(a ∨ b) = ¬a ∧ ¬b
                self.collect_refinements(l, pset, true, out);
                self.collect_refinements(r, pset, true, out);
            }
            Expr::Unary(UnOp::Not, e) => self.collect_refinements(e, pset, !negate, out),
            Expr::Binary(op, l, r) => {
                let Some(rel) = RelOp::from_binop(*op) else {
                    return;
                };
                let (Some(le), Some(re)) = (self.linearize(l, pset), self.linearize(r, pset))
                else {
                    return;
                };
                let rel = if negate { rel.negated() } else { Some(rel) };
                if let Some(rel) = rel {
                    out.push((le, re, rel));
                }
            }
            _ => {}
        }
    }

    /// Applies comparison refinements to the constraint graph.
    pub fn apply_refinements(
        &self,
        cg: &mut ConstraintGraph,
        refinements: &[(LinExpr, LinExpr, RelOp)],
    ) {
        for (l, r, rel) in refinements {
            let lv = l.var.unwrap_or(VarId::ZERO);
            let rv = r.var.unwrap_or(VarId::ZERO);
            // l.var + l.off REL r.var + r.off
            let delta = r.offset - l.offset;
            match rel {
                RelOp::Eq => cg.assert_eq_offset(lv, rv, delta),
                RelOp::Le => cg.assert_le(lv, rv, delta),
                RelOp::Lt => cg.assert_le(lv, rv, delta - 1),
                RelOp::Ge => cg.assert_le(rv, lv, -delta),
                RelOp::Gt => cg.assert_le(rv, lv, -delta - 1),
            }
        }
    }

    /// Converts a linear expression to a symbolic polynomial for the HSM
    /// client. Only globals, `np` and constants survive; per-set
    /// variables must first be proven equal to one of those.
    #[must_use]
    pub fn linexpr_to_poly(e: &LinExpr) -> Option<SymPoly> {
        let base = match e.var.map(VarId::kind) {
            None | Some(VarKind::Zero) => SymPoly::zero(),
            Some(VarKind::Np) => SymPoly::sym("np"),
            Some(VarKind::Global(g)) => {
                SymPoly::sym(mpl_domains::with_table(|t| t.name(g).to_owned()))
            }
            Some(VarKind::Pset(..)) => return None,
        };
        Some(base + SymPoly::constant(e.offset))
    }
}

/// Collects every `Var` name mentioned in `e` (for vocabulary
/// pre-interning in [`NormCtx::from_cfg`]).
fn collect_var_names(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Var(name) => {
            out.insert(name.clone());
        }
        Expr::Binary(_, l, r) => {
            collect_var_names(l, out);
            collect_var_names(r, out);
        }
        Expr::Unary(_, inner) => collect_var_names(inner, out),
        Expr::Int(_) | Expr::Bool(_) | Expr::Id | Expr::Np => {}
    }
}

/// A comparison operator in a refinement (strictness made explicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelOp {
    Eq,
    Le,
    Lt,
    Ge,
    Gt,
}

impl RelOp {
    fn from_binop(op: BinOp) -> Option<RelOp> {
        match op {
            BinOp::Eq => Some(RelOp::Eq),
            BinOp::Le => Some(RelOp::Le),
            BinOp::Lt => Some(RelOp::Lt),
            BinOp::Ge => Some(RelOp::Ge),
            BinOp::Gt => Some(RelOp::Gt),
            _ => None,
        }
    }

    /// The relation implied by this one failing; `None` for `=` (whose
    /// negation `≠` carries no difference-bound information).
    fn negated(self) -> Option<RelOp> {
        match self {
            RelOp::Eq => None,
            RelOp::Le => Some(RelOp::Gt),
            RelOp::Lt => Some(RelOp::Ge),
            RelOp::Ge => Some(RelOp::Lt),
            RelOp::Gt => Some(RelOp::Le),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_cfg::Cfg;
    use mpl_domains::NsVar;
    use mpl_lang::parse_program;

    fn ctx_of(src: &str) -> NormCtx {
        NormCtx::from_cfg(&Cfg::build(&parse_program(src).unwrap()))
    }

    fn expr(src: &str) -> Expr {
        use mpl_lang::ast::StmtKind;
        let p = parse_program(&format!("send 0 -> {src};")).unwrap();
        let StmtKind::Send { dest, .. } = &p.stmts[0].kind else {
            panic!()
        };
        dest.clone()
    }

    const P: PsetId = PsetId(0);

    #[test]
    fn assigned_vs_input_classification() {
        let ctx = ctx_of("x := 1; recv y <- 0; send nrows -> 0;");
        assert!(!ctx.is_input("x"));
        assert!(!ctx.is_input("y"));
        assert!(ctx.is_input("nrows"));
        assert_eq!(ctx.var(P, "x"), VarId::from(NsVar::pset(P, "x")));
        assert_eq!(
            ctx.var(P, "nrows"),
            VarId::from(NsVar::Global("nrows".into()))
        );
    }

    #[test]
    fn linearize_basic_forms() {
        let ctx = ctx_of("x := 1;");
        assert_eq!(ctx.linearize(&expr("7"), P), Some(LinExpr::constant(7)));
        assert_eq!(
            ctx.linearize(&expr("id + 1"), P),
            Some(LinExpr::var_plus(NsVar::id_of(P), 1))
        );
        assert_eq!(
            ctx.linearize(&expr("np - 1"), P),
            Some(LinExpr::var_plus(NsVar::Np, -1))
        );
        assert_eq!(
            ctx.linearize(&expr("x + 2"), P),
            Some(LinExpr::var_plus(NsVar::pset(P, "x"), 2))
        );
        assert_eq!(
            ctx.linearize(&expr("2 * 3 + 1"), P),
            Some(LinExpr::constant(7))
        );
    }

    #[test]
    fn linearize_rejects_nonlinear() {
        let ctx = ctx_of("x := 1;");
        assert_eq!(ctx.linearize(&expr("id * 2"), P), None);
        assert_eq!(ctx.linearize(&expr("id % np"), P), None);
        assert_eq!(ctx.linearize(&expr("x + id"), P), None);
        assert_eq!(ctx.linearize(&expr("3 - id"), P), None);
    }

    #[test]
    fn linearize_identity_multiplications() {
        let ctx = ctx_of("x := 1;");
        assert_eq!(
            ctx.linearize(&expr("1 * id"), P),
            Some(LinExpr::of_var(NsVar::id_of(P)))
        );
        assert_eq!(
            ctx.linearize(&expr("id * 0"), P),
            Some(LinExpr::constant(0))
        );
        assert_eq!(
            ctx.linearize(&expr("x / 1"), P),
            Some(LinExpr::of_var(NsVar::pset(P, "x")))
        );
    }

    #[test]
    fn refinements_of_conjunction() {
        let ctx = ctx_of("x := 1;");
        let cond = expr("(id >= 1) and (id <= np - 1)");
        let refs = ctx.refinements(&cond, P, false);
        assert_eq!(refs.len(), 2);
        let mut cg = ConstraintGraph::new();
        ctx.apply_refinements(&mut cg, &refs);
        assert!(cg.implies_le(NsVar::id_of(P), &NsVar::Np, -1));
        assert!(cg.implies_le(&NsVar::Zero, NsVar::id_of(P), -1));
    }

    #[test]
    fn negated_refinements() {
        let ctx = ctx_of("x := 1;");
        // ¬(id <= 5) → id >= 6
        let refs = ctx.refinements(&expr("id <= 5"), P, true);
        let mut cg = ConstraintGraph::new();
        ctx.apply_refinements(&mut cg, &refs);
        assert!(cg.implies_le(&NsVar::Zero, NsVar::id_of(P), -6));
        // ¬(id = 5) carries nothing for a DBM.
        assert!(ctx.refinements(&expr("id = 5"), P, true).is_empty());
    }

    #[test]
    fn eval_const_uses_environment() {
        let ctx = ctx_of("x := 1; y := 2;");
        let mut consts = ConstEnv::new();
        consts.set_const(NsVar::pset(P, "x"), 6);
        assert_eq!(ctx.eval_const(&expr("x * x + 1"), P, &consts), Some(37));
        assert_eq!(ctx.eval_const(&expr("x / 0"), P, &consts), None);
        assert_eq!(ctx.eval_const(&expr("y"), P, &consts), None);
        assert_eq!(ctx.eval_const(&expr("id"), P, &consts), None);
    }

    #[test]
    fn linexpr_to_poly_forms() {
        assert_eq!(
            NormCtx::linexpr_to_poly(&LinExpr::var_plus(NsVar::Np, -1)),
            Some(SymPoly::sym("np") - SymPoly::constant(1))
        );
        assert_eq!(
            NormCtx::linexpr_to_poly(&LinExpr::constant(4)),
            Some(SymPoly::constant(4))
        );
        assert_eq!(
            NormCtx::linexpr_to_poly(&LinExpr::of_var(NsVar::Global("nrows".into()))),
            Some(SymPoly::sym("nrows"))
        );
        assert_eq!(
            NormCtx::linexpr_to_poly(&LinExpr::of_var(NsVar::pset(P, "i"))),
            None
        );
    }
}
