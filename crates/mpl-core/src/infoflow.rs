//! Information-flow client (paper §I): "reason about information flows in
//! concurrent programs, identifying privacy- or security-related data
//! leak vulnerabilities."
//!
//! The client builds a variable-level flow graph whose *inter-process*
//! edges come from the pCFG analysis' exact send–receive matches: the
//! variables feeding a matched send's value flow into the matched
//! receive's target variable. Intra-process edges come from assignments.
//! Taint is then reachability from a set of source variables; the
//! reportable sinks are `print` statements (the model's only output
//! channel).
//!
//! Communication sensitivity is what makes this precise: with only a
//! sequential view one must assume *any* send reaches *any* receive
//! (the MPI-CFG baseline, available via
//! [`info_flow_with_pairs`]), tainting far more than can actually flow.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mpl_cfg::{Cfg, CfgNode, CfgNodeId};
use mpl_lang::ast::Expr;

use crate::engine::AnalysisResult;

/// A node in the flow graph: a program variable (by name — the analysis
/// is flow-insensitive), or the `id`/`np` pseudo-sources.
pub type FlowVar = String;

/// The variable-level information-flow graph.
#[derive(Debug, Clone, Default)]
pub struct InfoFlow {
    /// `from → {to}` edges.
    edges: BTreeMap<FlowVar, BTreeSet<FlowVar>>,
    /// Each print statement with the variables its expression reads.
    prints: Vec<(CfgNodeId, BTreeSet<FlowVar>)>,
}

fn expr_vars(e: &Expr) -> BTreeSet<FlowVar> {
    let mut out: BTreeSet<FlowVar> = e.variables().into_iter().map(str::to_owned).collect();
    if e.mentions_id() {
        out.insert("id".to_owned());
    }
    out
}

impl InfoFlow {
    /// All variables reachable from `sources` (inclusive).
    #[must_use]
    pub fn tainted_from(&self, sources: &[&str]) -> BTreeSet<FlowVar> {
        let mut tainted: BTreeSet<FlowVar> = sources.iter().map(|s| (*s).to_owned()).collect();
        let mut queue: VecDeque<FlowVar> = tainted.iter().cloned().collect();
        while let Some(v) = queue.pop_front() {
            if let Some(succs) = self.edges.get(&v) {
                for s in succs {
                    if tainted.insert(s.clone()) {
                        queue.push_back(s.clone());
                    }
                }
            }
        }
        tainted
    }

    /// The print statements that may output data derived from `sources`.
    #[must_use]
    pub fn leaking_prints(&self, sources: &[&str]) -> Vec<CfgNodeId> {
        let tainted = self.tainted_from(sources);
        self.prints
            .iter()
            .filter(|(_, reads)| reads.iter().any(|v| tainted.contains(v)))
            .map(|(node, _)| *node)
            .collect()
    }

    /// The raw edge map (for inspection/testing).
    #[must_use]
    pub fn edges(&self) -> &BTreeMap<FlowVar, BTreeSet<FlowVar>> {
        &self.edges
    }

    fn add_edges(&mut self, froms: &BTreeSet<FlowVar>, to: &str) {
        for f in froms {
            self.edges
                .entry(f.clone())
                .or_default()
                .insert(to.to_owned());
        }
    }
}

/// Builds the flow graph using the pCFG analysis' exact matches for the
/// inter-process edges. Requires an exact verdict for the communication
/// edges to be complete; on ⊤ verdicts fall back to
/// [`info_flow_with_pairs`] with the MPI-CFG topology.
#[must_use]
pub fn info_flow(cfg: &Cfg, result: &AnalysisResult) -> InfoFlow {
    info_flow_with_pairs(cfg, &result.matches)
}

/// Builds the flow graph with an explicit set of (send, recv) statement
/// pairs as the communication edges — use the pCFG matches for the
/// precise client, or [`crate::mpicfg::mpi_cfg_topology`]'s pairs for the
/// baseline.
#[must_use]
pub fn info_flow_with_pairs(cfg: &Cfg, comm_pairs: &BTreeSet<(CfgNodeId, CfgNodeId)>) -> InfoFlow {
    let mut flow = InfoFlow::default();
    for id in cfg.node_ids() {
        match cfg.node(id) {
            CfgNode::Assign { name, value } => {
                flow.add_edges(&expr_vars(value), name);
            }
            CfgNode::Print(e) => {
                flow.prints.push((id, expr_vars(e)));
            }
            _ => {}
        }
    }
    for &(send, recv) in comm_pairs {
        let CfgNode::Send { value, .. } = cfg.node(send) else {
            continue;
        };
        let CfgNode::Recv { var, .. } = cfg.node(recv) else {
            continue;
        };
        flow.add_edges(&expr_vars(value), var);
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{analyze_cfg, AnalysisConfig};
    use crate::mpicfg::mpi_cfg_topology;
    use mpl_lang::{corpus, parse_program};

    fn analyzed(src: &str) -> (Cfg, AnalysisResult) {
        let cfg = Cfg::build(&parse_program(src).unwrap());
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        (cfg, result)
    }

    #[test]
    fn fig2_secret_reaches_both_prints() {
        let prog = corpus::fig2_exchange();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let flow = info_flow(&cfg, &result);
        // x (rank 0's secret) flows via the exchange into y on both sides.
        let tainted = flow.tainted_from(&["x"]);
        assert!(tainted.contains("y"));
        assert_eq!(flow.leaking_prints(&["x"]).len(), 2);
    }

    #[test]
    fn unmatched_send_does_not_propagate() {
        // The message is never received, so the secret stays put.
        let prog = corpus::message_leak();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let flow = info_flow(&cfg, &result);
        let tainted = flow.tainted_from(&["x"]);
        assert!(!tainted.contains("y"));
        assert!(flow.leaking_prints(&["x"]).is_empty());
    }

    #[test]
    fn pcfg_matches_are_more_precise_than_mpicfg_pairs() {
        // secret goes only to rank 1; rank 2 receives something else.
        // Destinations are held in variables, so the sequential MPI-CFG
        // pruning cannot separate the two sends — the pCFG analysis can,
        // by resolving the constants through its dataflow state.
        let src = "\
            secret := 41;\n\
            pub := 1;\n\
            p1 := 1;\n\
            p2 := 2;\n\
            if id = 0 then\n  send secret -> p1;\n  send pub -> p2;\n\
            else\n  if id = 1 then\n    recv a <- 0;\n    print a;\n\
            else\n  if id = 2 then\n    recv b <- 0;\n    print b;\n\
            end\n  end\nend\n";
        let (cfg, result) = analyzed(src);
        assert!(result.is_exact(), "{:?}", result.verdict);

        let precise = info_flow(&cfg, &result);
        let precise_leaks = precise.leaking_prints(&["secret"]);
        assert_eq!(precise_leaks.len(), 1, "only rank 1's print leaks");

        let baseline = info_flow_with_pairs(&cfg, mpi_cfg_topology(&cfg).pairs());
        let baseline_leaks = baseline.leaking_prints(&["secret"]);
        assert!(
            baseline_leaks.len() > precise_leaks.len(),
            "MPI-CFG taints both receives ({} vs {})",
            baseline_leaks.len(),
            precise_leaks.len()
        );
    }

    #[test]
    fn relay_chain_taints_transitively() {
        let prog = corpus::const_relay();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        assert!(result.is_exact());
        let flow = info_flow(&cfg, &result);
        // x flows 0 -> 1 -> 2, reaching all three prints.
        assert_eq!(flow.leaking_prints(&["x"]).len(), 3);
    }

    #[test]
    fn id_pseudo_source() {
        let (cfg, result) = analyzed("x := id * 2; print x; print 7;");
        let flow = info_flow(&cfg, &result);
        let leaks = flow.leaking_prints(&["id"]);
        assert_eq!(leaks.len(), 1);
    }

    #[test]
    fn taint_is_monotone_in_sources() {
        let prog = corpus::exchange_with_root();
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let flow = info_flow(&cfg, &result);
        let a = flow.tainted_from(&["x"]);
        let b = flow.tainted_from(&["x", "y"]);
        assert!(a.is_subset(&b));
    }
}
