//! Minimal zero-dependency JSON support for the wire protocol.
//!
//! The serving layer ([`crate::service`]) speaks newline-framed JSON;
//! this module provides the two halves it needs with no external crate:
//!
//! * [`json_escape`] — escaping for emitted string literals (shared with
//!   the CLI's NDJSON renderers, so all records escape identically);
//! * [`parse`] — a small recursive-descent parser for incoming request
//!   lines, producing a [`JsonValue`] tree.
//!
//! The parser accepts standard JSON with one deliberate restriction:
//! numbers must be integers in `i64` range. No request field is
//! fractional, and silently rounding a malformed knob would violate the
//! protocol's strict-validation discipline, so floats are a parse error.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the only number form accepted — see module docs).
    Int(i64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as key/value pairs in source order (duplicate keys are
    /// kept; [`JsonValue::get`] returns the first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` for missing keys and
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A JSON syntax error with a byte offset into the input line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] describing the first syntax problem.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", char::from(b))))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("fractional numbers are not part of the protocol"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse()
            .map(JsonValue::Int)
            .map_err(|_| self.err("integer out of i64 range"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not expected on this wire
                            // (emitters escape only control characters);
                            // reject rather than decode pairs.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_objects() {
        let v = parse(r#"{"v":1,"type":"analyze","source":"x := 1;\n","min-np":4}"#).unwrap();
        assert_eq!(v.get("v").and_then(JsonValue::as_i64), Some(1));
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("analyze"));
        assert_eq!(
            v.get("source").and_then(JsonValue::as_str),
            Some("x := 1;\n")
        );
        assert_eq!(v.get("min-np").and_then(JsonValue::as_i64), Some(4));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_values() {
        let v = parse(r#"{"a":[1,-2,true,null],"b":{"c":"d"}}"#).unwrap();
        let JsonValue::Array(items) = v.get("a").unwrap() else {
            panic!("array expected");
        };
        assert_eq!(
            items,
            &[
                JsonValue::Int(1),
                JsonValue::Int(-2),
                JsonValue::Bool(true),
                JsonValue::Null
            ]
        );
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(JsonValue::as_str),
            Some("d")
        );
    }

    #[test]
    fn escape_and_parse_round_trip() {
        let nasty = "line\nwith \"quotes\", back\\slash, tab\t and \u{1} ctrl";
        let line = format!("{{\"s\":\"{}\"}}", json_escape(nasty));
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{\"a\":1.5}",
            "{\"a\":1e3}",
            "nul",
            "{\"a\":\u{1}\"x\"}",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn rejects_out_of_range_integers() {
        assert!(parse("9223372036854775807").is_ok());
        assert!(parse("9223372036854775808").is_err());
    }

    #[test]
    fn unicode_passes_through() {
        let v = parse("{\"s\":\"héllo ☃\"}").unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("héllo ☃"));
        let v = parse("{\"s\":\"\\u2603\"}").unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("☃"));
    }

    #[test]
    fn duplicate_keys_first_wins() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_i64), Some(1));
    }
}
